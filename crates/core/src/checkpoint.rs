//! Model checkpointing.
//!
//! The fine-tuning monitor (§III-D) relaunches training when the
//! environment drifts; deployments also restart, and the edge may want to
//! roll a decoder back after a bad adaptation. This module saves and
//! restores the asymmetric autoencoder's parameters in the workspace's
//! plain-text `MAT` format (diff-able, no format crate): one file per
//! tensor plus a small manifest.

use std::path::{Path, PathBuf};

use orco_tensor::serialize::{read_matrix, write_matrix};
use orco_tensor::Matrix;

use crate::autoencoder::AsymmetricAutoencoder;
use crate::config::OrcoConfig;
use crate::error::OrcoError;

/// Files inside a checkpoint directory.
const MANIFEST: &str = "manifest.txt";
const ENCODER_WEIGHT: &str = "encoder_weight.mat";
const ENCODER_BIAS: &str = "encoder_bias.mat";

/// A saved encoder checkpoint (the distributable half of the model — the
/// decoder lives on the mains-powered edge and can always retrain, but the
/// encoder's columns are what the field devices hold).
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderCheckpoint {
    /// Encoder weight, `(M, N)`.
    pub weight: Matrix,
    /// Encoder bias, `(1, M)`.
    pub bias: Matrix,
    /// Label recorded in the manifest (e.g. experiment id).
    pub label: String,
}

impl EncoderCheckpoint {
    /// Captures the current encoder of an autoencoder.
    #[must_use]
    pub fn capture(ae: &AsymmetricAutoencoder, label: impl Into<String>) -> Self {
        Self {
            weight: ae.encoder_weight().clone(),
            bias: ae.encoder_bias().clone(),
            label: label.into(),
        }
    }

    /// Restores this checkpoint into an autoencoder.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] if the shapes do not match the target
    /// model.
    pub fn restore(&self, ae: &mut AsymmetricAutoencoder) -> Result<(), OrcoError> {
        if self.weight.shape() != (ae.latent_dim(), ae.input_dim()) {
            return Err(OrcoError::Config {
                detail: format!(
                    "checkpoint encoder is {}x{}, model expects {}x{}",
                    self.weight.rows(),
                    self.weight.cols(),
                    ae.latent_dim(),
                    ae.input_dim()
                ),
            });
        }
        ae.set_encoder_parts(self.weight.clone(), self.bias.clone());
        Ok(())
    }

    /// Writes the checkpoint to `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] wrapping any I/O failure.
    pub fn save(&self, dir: &Path) -> Result<(), OrcoError> {
        let io = |e: std::io::Error| OrcoError::Config { detail: format!("checkpoint io: {e}") };
        std::fs::create_dir_all(dir).map_err(io)?;
        write_matrix(&dir.join(ENCODER_WEIGHT), &self.weight).map_err(io)?;
        write_matrix(&dir.join(ENCODER_BIAS), &self.bias).map_err(io)?;
        let manifest = format!(
            "orcodcs-encoder-checkpoint v1\nlabel: {}\nlatent_dim: {}\ninput_dim: {}\n",
            self.label,
            self.weight.rows(),
            self.weight.cols()
        );
        std::fs::write(dir.join(MANIFEST), manifest).map_err(io)?;
        Ok(())
    }

    /// Loads a checkpoint from `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on missing/malformed files and
    /// [`OrcoError::Tensor`] on matrix parse failures.
    pub fn load(dir: &Path) -> Result<Self, OrcoError> {
        let manifest = std::fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| OrcoError::Config { detail: format!("missing manifest: {e}") })?;
        let mut label = String::new();
        let mut version_ok = false;
        for line in manifest.lines() {
            if line.trim() == "orcodcs-encoder-checkpoint v1" {
                version_ok = true;
            }
            if let Some(rest) = line.strip_prefix("label: ") {
                label = rest.to_string();
            }
        }
        if !version_ok {
            return Err(OrcoError::Config { detail: "unrecognized checkpoint version".into() });
        }
        let weight = read_matrix(&dir.join(ENCODER_WEIGHT))?;
        let bias = read_matrix(&dir.join(ENCODER_BIAS))?;
        if bias.rows() != 1 || bias.cols() != weight.rows() {
            return Err(OrcoError::Config {
                detail: format!(
                    "inconsistent checkpoint: weight {}x{}, bias {}x{}",
                    weight.rows(),
                    weight.cols(),
                    bias.rows(),
                    bias.cols()
                ),
            });
        }
        Ok(Self { weight, bias, label })
    }
}

/// A rolling checkpoint store: keeps the `capacity` most recent encoder
/// snapshots under one root directory (`ckpt-0`, `ckpt-1`, …) so the
/// monitor can roll back after an adaptation that made things worse.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    capacity: usize,
    saved: Vec<PathBuf>,
    counter: usize,
}

impl CheckpointStore {
    /// Creates a store rooted at `root` keeping at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>, capacity: usize) -> Self {
        assert!(capacity > 0, "CheckpointStore: capacity must be non-zero");
        Self { root: root.into(), capacity, saved: Vec::new(), counter: 0 }
    }

    /// Saves a new snapshot, evicting the oldest when over capacity.
    ///
    /// # Errors
    ///
    /// Propagates save failures.
    pub fn push(&mut self, checkpoint: &EncoderCheckpoint) -> Result<&Path, OrcoError> {
        let dir = self.root.join(format!("ckpt-{}", self.counter));
        self.counter += 1;
        checkpoint.save(&dir)?;
        self.saved.push(dir);
        if self.saved.len() > self.capacity {
            let evicted = self.saved.remove(0);
            let _ = std::fs::remove_dir_all(&evicted);
        }
        Ok(self.saved.last().expect("just pushed").as_path())
    }

    /// Loads the most recent snapshot, if any.
    ///
    /// # Errors
    ///
    /// Propagates load failures.
    pub fn latest(&self) -> Result<Option<EncoderCheckpoint>, OrcoError> {
        match self.saved.last() {
            None => Ok(None),
            Some(dir) => EncoderCheckpoint::load(dir).map(Some),
        }
    }

    /// Number of snapshots currently kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.saved.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.saved.is_empty()
    }
}

/// Convenience: builds an autoencoder from `config` and restores the
/// checkpointed encoder into it.
///
/// # Errors
///
/// Propagates construction and restore failures.
pub fn autoencoder_from_checkpoint(
    config: &OrcoConfig,
    checkpoint: &EncoderCheckpoint,
) -> Result<AsymmetricAutoencoder, OrcoError> {
    let mut ae = AsymmetricAutoencoder::new(config)?;
    checkpoint.restore(&mut ae)?;
    Ok(ae)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::DatasetKind;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orcodcs-ckpt-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trained_ae() -> AsymmetricAutoencoder {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let mut ae = AsymmetricAutoencoder::new(&cfg).unwrap();
        let ds = orco_datasets::mnist_like::generate(8, 0);
        let loss = cfg.loss();
        let _ = ae.train_batch_local(ds.x(), &loss);
        ae
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "test-roundtrip");
        let dir = tmpdir("roundtrip");
        ckpt.save(&dir).unwrap();
        let loaded = EncoderCheckpoint::load(&dir).unwrap();
        assert_eq!(ckpt, loaded);
        assert_eq!(loaded.label, "test-roundtrip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_recovers_encodings() {
        let mut ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "restore");
        let ds = orco_datasets::mnist_like::generate(4, 1);
        let before = ae.encode(ds.x());
        // Keep training → encoder changes.
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let loss = cfg.loss();
        for _ in 0..5 {
            let _ = ae.train_batch_local(ds.x(), &loss);
        }
        assert_ne!(ae.encode(ds.x()), before);
        // Roll back.
        ckpt.restore(&mut ae).unwrap();
        assert_eq!(ae.encode(ds.x()), before);
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let ae = trained_ae(); // latent 8
        let ckpt = EncoderCheckpoint::capture(&ae, "mismatch");
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
        let mut other = AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(matches!(ckpt.restore(&mut other), Err(OrcoError::Config { .. })));
    }

    #[test]
    fn store_evicts_oldest() {
        let ae = trained_ae();
        let dir = tmpdir("store");
        let mut store = CheckpointStore::new(&dir, 2);
        for i in 0..3 {
            let ckpt = EncoderCheckpoint::capture(&ae, format!("v{i}"));
            store.push(&ckpt).unwrap();
        }
        assert_eq!(store.len(), 2);
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.label, "v2");
        // The evicted directory is gone.
        assert!(!dir.join("ckpt-0").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(EncoderCheckpoint::load(Path::new("/nonexistent/ckpt")).is_err());
    }

    #[test]
    fn autoencoder_from_checkpoint_matches_source() {
        let mut ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "rebuild");
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let mut rebuilt = autoencoder_from_checkpoint(&cfg, &ckpt).unwrap();
        let ds = orco_datasets::mnist_like::generate(4, 2);
        assert_eq!(rebuilt.encode(ds.x()), ae.encode(ds.x()));
    }
}
