//! Model checkpointing.
//!
//! The fine-tuning monitor (§III-D) relaunches training when the
//! environment drifts; deployments also restart, and the edge may want to
//! roll a decoder back after a bad adaptation. This module saves and
//! restores the asymmetric autoencoder's parameters in the workspace's
//! plain-text `MAT` format (diff-able, no format crate): one file per
//! tensor plus a small manifest.

use std::path::{Path, PathBuf};

use orco_tensor::serialize::{matrix_from_text, matrix_to_text};
use orco_tensor::{fnv1a64, Matrix};

use crate::autoencoder::AsymmetricAutoencoder;
use crate::config::OrcoConfig;
use crate::error::OrcoError;

/// Files inside a checkpoint directory.
const MANIFEST: &str = "manifest.txt";
const ENCODER_WEIGHT: &str = "encoder_weight.mat";
const ENCODER_BIAS: &str = "encoder_bias.mat";

/// A saved encoder checkpoint (the distributable half of the model — the
/// decoder lives on the mains-powered edge and can always retrain, but the
/// encoder's columns are what the field devices hold).
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderCheckpoint {
    /// Encoder weight, `(M, N)`.
    pub weight: Matrix,
    /// Encoder bias, `(1, M)`.
    pub bias: Matrix,
    /// Label recorded in the manifest (e.g. experiment id).
    pub label: String,
}

impl EncoderCheckpoint {
    /// Captures the current encoder of an autoencoder.
    #[must_use]
    pub fn capture(ae: &AsymmetricAutoencoder, label: impl Into<String>) -> Self {
        Self {
            weight: ae.encoder_weight().clone(),
            bias: ae.encoder_bias().clone(),
            label: label.into(),
        }
    }

    /// Restores this checkpoint into an autoencoder.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] if the shapes do not match the target
    /// model.
    pub fn restore(&self, ae: &mut AsymmetricAutoencoder) -> Result<(), OrcoError> {
        if self.weight.shape() != (ae.latent_dim(), ae.input_dim()) {
            return Err(OrcoError::Config {
                detail: format!(
                    "checkpoint encoder is {}x{}, model expects {}x{}",
                    self.weight.rows(),
                    self.weight.cols(),
                    ae.latent_dim(),
                    ae.input_dim()
                ),
            });
        }
        ae.set_encoder_parts(self.weight.clone(), self.bias.clone());
        Ok(())
    }

    /// The FNV-1a digest of a checkpoint payload: the weight's `MAT` text
    /// followed by the bias's, hashed as one byte stream. Recorded in the
    /// manifest by [`EncoderCheckpoint::save`] and re-verified by
    /// [`EncoderCheckpoint::load`].
    fn payload_checksum(weight_text: &str, bias_text: &str) -> u64 {
        let mut payload = String::with_capacity(weight_text.len() + bias_text.len());
        payload.push_str(weight_text);
        payload.push_str(bias_text);
        fnv1a64(payload.as_bytes())
    }

    /// Writes the checkpoint to `dir` (created if missing).
    ///
    /// Torn-write hardened: every file lands via write-then-rename, and
    /// the manifest — carrying an FNV-1a checksum over the tensor payload
    /// — is written last, so a crash mid-save leaves either the previous
    /// checkpoint intact or no verifiable manifest at all, never a
    /// half-written one that loads.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] wrapping any I/O failure.
    pub fn save(&self, dir: &Path) -> Result<(), OrcoError> {
        let io = |e: std::io::Error| OrcoError::Config { detail: format!("checkpoint io: {e}") };
        std::fs::create_dir_all(dir).map_err(io)?;
        let weight_text = matrix_to_text(&self.weight);
        let bias_text = matrix_to_text(&self.bias);
        let checksum = Self::payload_checksum(&weight_text, &bias_text);
        write_atomic(&dir.join(ENCODER_WEIGHT), &weight_text).map_err(io)?;
        write_atomic(&dir.join(ENCODER_BIAS), &bias_text).map_err(io)?;
        let manifest = format!(
            "orcodcs-encoder-checkpoint v2\nlabel: {}\nlatent_dim: {}\ninput_dim: {}\nchecksum: {checksum:016x}\n",
            self.label,
            self.weight.rows(),
            self.weight.cols()
        );
        write_atomic(&dir.join(MANIFEST), &manifest).map_err(io)?;
        Ok(())
    }

    /// Loads a checkpoint from `dir`, verifying the manifest's checksum
    /// against the tensor payload before parsing a single value.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on missing/malformed files,
    /// [`OrcoError::Corrupt`] when the payload does not match the
    /// manifest's checksum (torn write, truncation, bit rot), and
    /// [`OrcoError::Tensor`] on matrix parse failures.
    pub fn load(dir: &Path) -> Result<Self, OrcoError> {
        let manifest = std::fs::read_to_string(dir.join(MANIFEST))
            .map_err(|e| OrcoError::Config { detail: format!("missing manifest: {e}") })?;
        let mut label = String::new();
        let mut version_ok = false;
        let mut checksum: Option<u64> = None;
        for line in manifest.lines() {
            if line.trim() == "orcodcs-encoder-checkpoint v2" {
                version_ok = true;
            }
            if let Some(rest) = line.strip_prefix("label: ") {
                label = rest.to_string();
            }
            if let Some(rest) = line.strip_prefix("checksum: ") {
                checksum = u64::from_str_radix(rest.trim(), 16).ok();
            }
        }
        if !version_ok {
            return Err(OrcoError::Config { detail: "unrecognized checkpoint version".into() });
        }
        let Some(expected) = checksum else {
            return Err(OrcoError::Corrupt {
                detail: format!(
                    "checkpoint manifest in {} carries no parseable checksum",
                    dir.display()
                ),
            });
        };
        let io = |e: std::io::Error| OrcoError::Config { detail: format!("checkpoint io: {e}") };
        let weight_text = std::fs::read_to_string(dir.join(ENCODER_WEIGHT)).map_err(io)?;
        let bias_text = std::fs::read_to_string(dir.join(ENCODER_BIAS)).map_err(io)?;
        let actual = Self::payload_checksum(&weight_text, &bias_text);
        if actual != expected {
            return Err(OrcoError::Corrupt {
                detail: format!(
                    "checkpoint payload in {} hashes to {actual:016x}, manifest says {expected:016x}",
                    dir.display()
                ),
            });
        }
        let weight = matrix_from_text(&weight_text)?;
        let bias = matrix_from_text(&bias_text)?;
        if bias.rows() != 1 || bias.cols() != weight.rows() {
            return Err(OrcoError::Config {
                detail: format!(
                    "inconsistent checkpoint: weight {}x{}, bias {}x{}",
                    weight.rows(),
                    weight.cols(),
                    bias.rows(),
                    bias.cols()
                ),
            });
        }
        Ok(Self { weight, bias, label })
    }
}

/// Writes `contents` to a sibling temp file and renames it over `path`,
/// so readers never observe a half-written file (rename within one
/// directory is atomic on POSIX filesystems).
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// A rolling checkpoint store: keeps the `capacity` most recent encoder
/// snapshots under one root directory (`ckpt-0`, `ckpt-1`, …) so the
/// monitor can roll back after an adaptation that made things worse.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    capacity: usize,
    saved: Vec<PathBuf>,
    counter: usize,
}

impl CheckpointStore {
    /// Creates a store rooted at `root` keeping at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>, capacity: usize) -> Self {
        assert!(capacity > 0, "CheckpointStore: capacity must be non-zero");
        Self { root: root.into(), capacity, saved: Vec::new(), counter: 0 }
    }

    /// Saves a new snapshot, evicting the oldest when over capacity.
    ///
    /// # Errors
    ///
    /// Propagates save failures.
    pub fn push(&mut self, checkpoint: &EncoderCheckpoint) -> Result<&Path, OrcoError> {
        let dir = self.root.join(format!("ckpt-{}", self.counter));
        self.counter += 1;
        checkpoint.save(&dir)?;
        self.saved.push(dir);
        if self.saved.len() > self.capacity {
            let evicted = self.saved.remove(0);
            let _ = std::fs::remove_dir_all(&evicted);
        }
        Ok(self.saved.last().expect("just pushed").as_path())
    }

    /// Loads the most recent snapshot, if any.
    ///
    /// # Errors
    ///
    /// Propagates load failures.
    pub fn latest(&self) -> Result<Option<EncoderCheckpoint>, OrcoError> {
        match self.saved.last() {
            None => Ok(None),
            Some(dir) => EncoderCheckpoint::load(dir).map(Some),
        }
    }

    /// Number of snapshots currently kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.saved.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.saved.is_empty()
    }
}

/// Convenience: builds an autoencoder from `config` and restores the
/// checkpointed encoder into it.
///
/// # Errors
///
/// Propagates construction and restore failures.
pub fn autoencoder_from_checkpoint(
    config: &OrcoConfig,
    checkpoint: &EncoderCheckpoint,
) -> Result<AsymmetricAutoencoder, OrcoError> {
    let mut ae = AsymmetricAutoencoder::new(config)?;
    checkpoint.restore(&mut ae)?;
    Ok(ae)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_datasets::DatasetKind;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("orcodcs-ckpt-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn trained_ae() -> AsymmetricAutoencoder {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let mut ae = AsymmetricAutoencoder::new(&cfg).unwrap();
        let ds = orco_datasets::mnist_like::generate(8, 0);
        let loss = cfg.loss();
        let _ = ae.train_batch_local(ds.x(), &loss);
        ae
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "test-roundtrip");
        let dir = tmpdir("roundtrip");
        ckpt.save(&dir).unwrap();
        let loaded = EncoderCheckpoint::load(&dir).unwrap();
        assert_eq!(ckpt, loaded);
        assert_eq!(loaded.label, "test-roundtrip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_recovers_encodings() {
        let mut ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "restore");
        let ds = orco_datasets::mnist_like::generate(4, 1);
        let before = ae.encode(ds.x());
        // Keep training → encoder changes.
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let loss = cfg.loss();
        for _ in 0..5 {
            let _ = ae.train_batch_local(ds.x(), &loss);
        }
        assert_ne!(ae.encode(ds.x()), before);
        // Roll back.
        ckpt.restore(&mut ae).unwrap();
        assert_eq!(ae.encode(ds.x()), before);
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let ae = trained_ae(); // latent 8
        let ckpt = EncoderCheckpoint::capture(&ae, "mismatch");
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
        let mut other = AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(matches!(ckpt.restore(&mut other), Err(OrcoError::Config { .. })));
    }

    #[test]
    fn store_evicts_oldest() {
        let ae = trained_ae();
        let dir = tmpdir("store");
        let mut store = CheckpointStore::new(&dir, 2);
        for i in 0..3 {
            let ckpt = EncoderCheckpoint::capture(&ae, format!("v{i}"));
            store.push(&ckpt).unwrap();
        }
        assert_eq!(store.len(), 2);
        let latest = store.latest().unwrap().unwrap();
        assert_eq!(latest.label, "v2");
        // The evicted directory is gone.
        assert!(!dir.join("ckpt-0").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(EncoderCheckpoint::load(Path::new("/nonexistent/ckpt")).is_err());
    }

    #[test]
    fn truncated_weight_file_is_rejected_as_corrupt() {
        // The torn-write regression: a checkpoint whose weight file lost
        // its tail (power cut mid-write, partial copy) must surface as
        // `OrcoError::Corrupt`, never as weights.
        let ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "torn");
        let dir = tmpdir("torn-write");
        ckpt.save(&dir).unwrap();
        let weight_path = dir.join(ENCODER_WEIGHT);
        let full = std::fs::read_to_string(&weight_path).unwrap();
        std::fs::write(&weight_path, &full[..full.len() / 2]).unwrap();
        let err = EncoderCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, OrcoError::Corrupt { .. }), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_is_rejected_as_corrupt() {
        let ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "bitrot");
        let dir = tmpdir("bitrot");
        ckpt.save(&dir).unwrap();
        let bias_path = dir.join(ENCODER_BIAS);
        let mut bytes = std::fs::read(&bias_path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = if bytes[last] == b'1' { b'2' } else { b'1' };
        std::fs::write(&bias_path, bytes).unwrap();
        let err = EncoderCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, OrcoError::Corrupt { .. }), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "atomic");
        let dir = tmpdir("atomic");
        ckpt.save(&dir).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "stray temp file {name:?} after save"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_latest_never_hands_back_garbage() {
        // `CheckpointStore::latest` propagates the corruption error
        // instead of returning a checkpoint parsed from a torn file.
        let ae = trained_ae();
        let dir = tmpdir("store-corrupt");
        let mut store = CheckpointStore::new(&dir, 2);
        let ckpt = EncoderCheckpoint::capture(&ae, "good");
        let saved = store.push(&ckpt).unwrap().to_path_buf();
        std::fs::write(saved.join(ENCODER_WEIGHT), "MAT 1 1\n0.0\n").unwrap();
        let err = store.latest().unwrap_err();
        assert!(matches!(err, OrcoError::Corrupt { .. }), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autoencoder_from_checkpoint_matches_source() {
        let mut ae = trained_ae();
        let ckpt = EncoderCheckpoint::capture(&ae, "rebuild");
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let mut rebuilt = autoencoder_from_checkpoint(&cfg, &ckpt).unwrap();
        let ds = orco_datasets::mnist_like::generate(4, 2);
        assert_eq!(rebuilt.encode(ds.x()), ae.encode(ds.x()));
    }
}
