//! The one experiment driver every figure, example, and test runs through.
//!
//! [`ExperimentBuilder`] assembles a [`Codec`], a dataset, and a simulated
//! deployment into an [`Experiment`]; [`Experiment::run`] executes the full
//! OrcoDCS lifecycle — intra-cluster raw aggregation, training (over the
//! orchestrated IoT-Edge protocol when the codec supports it, natively
//! otherwise), encoder/operator distribution, and steady-state data-plane
//! measurement — and returns a [`Report`] of structured records. Figures
//! are thin projections of that one data model instead of bespoke loops.
//!
//! ```
//! use orcodcs::{AsymmetricAutoencoder, ExperimentBuilder, OrcoConfig};
//! use orco_datasets::{mnist_like, DatasetKind};
//!
//! let dataset = mnist_like::generate(32, 0);
//! let config = OrcoConfig::for_dataset(DatasetKind::MnistLike)
//!     .with_latent_dim(16)
//!     .with_batch_size(8);
//! let codec = AsymmetricAutoencoder::new(&config).unwrap();
//! let mut experiment = ExperimentBuilder::new()
//!     .dataset(&dataset)
//!     .codec(codec)
//!     .epochs(2)
//!     .batch_size(8)
//!     .build()
//!     .unwrap();
//! let report = experiment.run().unwrap();
//! assert_eq!(report.codec, "OrcoDCS");
//! assert!(report.final_loss.is_finite());
//! assert!(report.sim_time_s > 0.0);
//! ```

use std::path::PathBuf;

use orco_datasets::Dataset;
use orco_nn::Loss;
use orco_sim::{DesNetwork, SimSpec};
use orco_tensor::{stats, Matrix, OrcoRng};
use orco_wsn::{DeploymentBackend, LinkStats, Network, NetworkConfig, PacketKind};

use crate::aggregation::{self, TransmissionReport};
use crate::checkpoint::CheckpointStore;
use crate::codec::{fraction_rows, Codec, TrainSpec};
use crate::compression::GradCompression;
use crate::config::OrcoConfig;
use crate::error::OrcoError;
use crate::experiment::ClusterScale;
use crate::monitor::FineTuneMonitor;
use crate::online_trainer::{RoundStats, TrainingHistory};
use crate::orchestrator::Orchestrator;

/// Which simulator executes the deployment of an orchestrated experiment.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum DeploymentSpec {
    /// The analytic model (`orco_wsn::Network`): one global clock,
    /// sequential transmissions, inline loss draws. Fast, and the default.
    #[default]
    Analytic,
    /// The `orco-sim` discrete-event simulator: per-node clocks, a
    /// TDMA/CSMA MAC, ARQ + fragmentation events, duty cycles, and a
    /// scripted fault [`orco_sim::Scenario`]. With [`SimSpec::ideal`] it
    /// reproduces the analytic totals exactly (regression-tested).
    EventDriven(SimSpec),
}

/// How the codec is trained by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMode {
    /// Through the IoT-Edge orchestrated protocol (§III-B), paying compute
    /// and every protocol byte on the simulated deployment. Requires
    /// [`Codec::split_model`].
    Orchestrated,
    /// Natively (locally / offline), off the simulated clock — the
    /// cloud-style scheme of the DCSNet baseline and the setting of the
    /// quality-only figures.
    Local,
}

/// Reconstruction error on the probe set at one epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epochs completed when the record was taken (0 = before training).
    pub epoch: usize,
    /// Simulated seconds at the record.
    pub sim_time_s: f64,
    /// L2 reconstruction error on the probe set — one **common** metric
    /// across all codecs, whatever loss they train with natively.
    pub probe_l2: f32,
}

/// Total radio traffic and energy of the training phase, from the
/// `orco_wsn` accounting ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RadioSummary {
    /// All bytes on air (every hop, headers included).
    pub total_tx_bytes: u64,
    /// Latent/code uplink bytes (aggregator → edge).
    pub uplink_bytes: u64,
    /// Gradient-feedback bytes (the uplink the paper's compression policy
    /// shrinks).
    pub feedback_bytes: u64,
    /// Radio energy spent (tx + rx), joules.
    pub energy_j: f64,
    /// Delivery statistics: packet outcomes (delivered / dropped /
    /// retransmitted), radio airtime, and delivery-latency percentiles.
    pub link: LinkStats,
}

/// Everything one pipeline run produces. Figures project from these
/// records; nothing in here requires the experiment to stay alive.
///
/// `PartialEq` compares every record bit for bit — replaying the same
/// experiment (same codec, seeds, deployment backend, and scenario) must
/// produce an equal `Report`, which the determinism regressions assert.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The codec's [`Codec::name`].
    pub codec: &'static str,
    /// The deployment backend that executed the run (`"analytic"`,
    /// `"event-driven"`, or `"local"` for un-simulated training).
    pub backend: &'static str,
    /// How training ran.
    pub mode: TrainingMode,
    /// Per-round training records (loss, simulated clock, cumulative
    /// uplink bytes and radio energy), in execution order.
    pub rounds: Vec<RoundStats>,
    /// Probe reconstruction error at every epoch boundary, including one
    /// record before training.
    pub probe: Vec<EpochRecord>,
    /// Codec-native loss over the full dataset after training.
    pub final_loss: f32,
    /// Mean PSNR (dB) of reconstructions over the dataset.
    pub mean_psnr_db: f32,
    /// Simulated seconds from first raw frame to end of training (zero for
    /// [`TrainingMode::Local`]).
    pub sim_time_s: f64,
    /// Radio accounting of the training phase.
    pub training_radio: RadioSummary,
    /// Steady-state data-plane cost, measured post-distribution (`None`
    /// for local runs and when disabled).
    pub data_plane: Option<TransmissionReport>,
    /// Checkpoints pushed to the configured store during this run.
    pub checkpoints_saved: usize,
}

impl Report {
    /// Final probe-set L2 (NaN if no probe records).
    #[must_use]
    pub fn final_probe_l2(&self) -> f32 {
        self.probe.last().map_or(f32::NAN, |r| r.probe_l2)
    }

    /// Probe L2 of the last epoch boundary at or before simulated time `t`
    /// (`None` if the first record is after `t`).
    #[must_use]
    pub fn probe_l2_at(&self, t: f64) -> Option<f32> {
        self.probe.iter().rev().find(|r| r.sim_time_s <= t).map(|r| r.probe_l2)
    }

    /// Simulated time of the last probe record.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.probe.last().map_or(0.0, |r| r.sim_time_s)
    }

    /// Per-epoch probe curve excluding the pre-training point — the y-axis
    /// of the paper's Figures 6–8.
    #[must_use]
    pub fn probe_curve(&self) -> &[EpochRecord] {
        if self.probe.len() > 1 {
            &self.probe[1..]
        } else {
            &self.probe
        }
    }

    /// The last training round's loss, if any rounds ran.
    #[must_use]
    pub fn final_round_loss(&self) -> Option<f32> {
        self.rounds.last().map(|r| r.loss)
    }
}

/// Outcome of streaming one batch of fresh sensing data through
/// [`Experiment::observe`].
#[derive(Debug)]
pub struct ObserveOutcome {
    /// Codec-native reconstruction error on the fresh batch.
    pub reconstruction_error: f32,
    /// Training history of the relaunched run, if the monitor triggered.
    pub retraining: Option<TrainingHistory>,
}

/// Builds an [`Experiment`]. `dataset` and `codec` are required; every
/// other knob has the defaults of the paper's standard single-cluster
/// setting (32 devices, batch 32, 10 epochs, full data stream, seed 0).
#[derive(Debug, Default)]
pub struct ExperimentBuilder {
    dataset: Option<Dataset>,
    codec: Option<Box<dyn Codec>>,
    net_config: Option<NetworkConfig>,
    deployment: Option<DeploymentSpec>,
    scale: Option<ClusterScale>,
    seed: Option<u64>,
    epochs: Option<usize>,
    batch_size: Option<usize>,
    data_fraction: Option<f32>,
    grad_compression: Option<GradCompression>,
    mode: Option<TrainingMode>,
    probe_n: Option<usize>,
    raw_frames: Option<usize>,
    data_plane_frames: Option<usize>,
    monitor: Option<FineTuneMonitor>,
    checkpoints: Option<(PathBuf, usize)>,
}

impl ExperimentBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The sensing workload (required).
    #[must_use]
    pub fn dataset(mut self, dataset: &Dataset) -> Self {
        self.dataset = Some(dataset.clone());
        self
    }

    /// The compression backend (required).
    #[must_use]
    pub fn codec(mut self, codec: impl Codec + 'static) -> Self {
        self.codec = Some(Box::new(codec));
        self
    }

    /// A boxed backend (for callers iterating over heterogeneous codecs).
    #[must_use]
    pub fn codec_boxed(mut self, codec: Box<dyn Codec>) -> Self {
        self.codec = Some(codec);
        self
    }

    /// Base deployment parameters (radio rates, failure model, …).
    /// `num_devices` and `seed` are overridden by [`Self::scale`] and
    /// [`Self::seed`].
    #[must_use]
    pub fn network(mut self, net_config: NetworkConfig) -> Self {
        self.net_config = Some(net_config);
        self
    }

    /// Which simulator executes the deployment (default:
    /// [`DeploymentSpec::Analytic`]). Select
    /// [`DeploymentSpec::EventDriven`] to run the same protocol over the
    /// `orco-sim` discrete-event backend — with MAC contention, ARQ,
    /// duty cycles, and scripted fault scenarios.
    #[must_use]
    pub fn deployment(mut self, deployment: DeploymentSpec) -> Self {
        self.deployment = Some(deployment);
        self
    }

    /// Cluster size policy (default: a fixed 32-device cluster).
    #[must_use]
    pub fn scale(mut self, scale: ClusterScale) -> Self {
        self.scale = Some(scale);
        self
    }

    /// Seed for deployment, batching, and data subsetting (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Training epochs (default 10). Zero skips training — used by
    /// pure data-plane measurements like Figure 3.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = Some(epochs);
        self
    }

    /// Mini-batch size per training round (default 32).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Fraction of the stream the codec may see, in `(0, 1]` (default 1) —
    /// the paper's DCSNet-30/50/70% data-access settings.
    #[must_use]
    pub fn data_fraction(mut self, fraction: f32) -> Self {
        self.data_fraction = Some(fraction);
        self
    }

    /// Gradient-feedback compression policy for orchestrated training.
    #[must_use]
    pub fn grad_compression(mut self, policy: GradCompression) -> Self {
        self.grad_compression = Some(policy);
        self
    }

    /// Forces a training mode. Default: [`TrainingMode::Orchestrated`]
    /// when the codec exposes a split model, [`TrainingMode::Local`]
    /// otherwise.
    #[must_use]
    pub fn training(mut self, mode: TrainingMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Probe-set size for the per-epoch reconstruction-error records
    /// (default: first 64 samples).
    #[must_use]
    pub fn probe(mut self, samples: usize) -> Self {
        self.probe_n = Some(samples);
        self
    }

    /// Frames of §III-A raw aggregation before orchestrated training
    /// (default: one per accessible training sample; zero skips the
    /// collection phase, putting every backend's curve on a common t = 0
    /// training axis — the setting of the paper's sweep figures).
    #[must_use]
    pub fn raw_frames(mut self, frames: usize) -> Self {
        self.raw_frames = Some(frames);
        self
    }

    /// Frames to measure on the steady-state data plane after
    /// distribution (default `dataset.len().clamp(1, 8)`; zero disables
    /// the measurement).
    #[must_use]
    pub fn data_plane_frames(mut self, frames: usize) -> Self {
        self.data_plane_frames = Some(frames);
        self
    }

    /// Installs a fine-tuning monitor (§III-D): after [`Experiment::run`],
    /// fresh batches streamed through [`Experiment::observe`] are watched
    /// and training is relaunched when the windowed error breaches the
    /// monitor's threshold.
    #[must_use]
    pub fn monitor(mut self, monitor: FineTuneMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Persists the codec's distributable parameters to a rolling
    /// [`CheckpointStore`] rooted at `dir` after initial training and after
    /// every monitor-triggered retrain.
    #[must_use]
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>, capacity: usize) -> Self {
        self.checkpoints = Some((dir.into(), capacity));
        self
    }

    /// Validates the configuration and assembles the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] when `dataset`/`codec` are missing or
    /// any knob is inconsistent (dimension mismatch, empty dataset,
    /// orchestrated mode on a codec without a split model, …).
    pub fn build(self) -> Result<Experiment, OrcoError> {
        let config_err = |detail: String| OrcoError::Config { detail };
        let dataset = self
            .dataset
            .ok_or_else(|| config_err("ExperimentBuilder: dataset is required".into()))?;
        let mut codec =
            self.codec.ok_or_else(|| config_err("ExperimentBuilder: codec is required".into()))?;
        if dataset.is_empty() {
            return Err(config_err("ExperimentBuilder: dataset is empty".into()));
        }
        if codec.input_dim() != dataset.x().cols() {
            return Err(config_err(format!(
                "codec expects {}-dim frames, dataset has {}-dim samples",
                codec.input_dim(),
                dataset.x().cols()
            )));
        }
        if codec.code_len() == 0 {
            return Err(config_err("codec reports a zero-length code".into()));
        }
        let batch_size = self.batch_size.unwrap_or(32);
        if batch_size == 0 {
            return Err(config_err("batch_size must be non-zero".into()));
        }
        let data_fraction = self.data_fraction.unwrap_or(1.0);
        if !(data_fraction > 0.0 && data_fraction <= 1.0) {
            return Err(config_err("data_fraction must be in (0, 1]".into()));
        }
        let mode = match self.mode {
            Some(TrainingMode::Orchestrated) if codec.split_model().is_none() => {
                return Err(config_err(format!(
                    "codec '{}' cannot train through the orchestrated protocol (no split model)",
                    codec.name()
                )));
            }
            Some(mode) => mode,
            None => {
                if codec.split_model().is_some() {
                    TrainingMode::Orchestrated
                } else {
                    TrainingMode::Local
                }
            }
        };
        let probe_n = self.probe_n.unwrap_or(64).max(1);
        let store = self.checkpoints.map(|(dir, capacity)| CheckpointStore::new(dir, capacity));
        Ok(Experiment {
            dataset,
            codec,
            net_config: self.net_config.unwrap_or_default(),
            deployment: self.deployment.unwrap_or_default(),
            scale: self.scale.unwrap_or(ClusterScale::Devices(32)),
            seed: self.seed.unwrap_or(0),
            epochs: self.epochs.unwrap_or(10),
            batch_size,
            data_fraction,
            grad_compression: self.grad_compression.unwrap_or_default(),
            mode,
            probe_n,
            raw_frames: self.raw_frames,
            data_plane_frames: self.data_plane_frames,
            monitor: self.monitor,
            store,
            checkpoints_saved: 0,
            retrains: 0,
            network: None,
            ran: false,
        })
    }
}

/// A fully-assembled experiment: run it once, then optionally keep
/// streaming fresh batches through [`Experiment::observe`] for the §III-D
/// continual-operation loop.
#[derive(Debug)]
pub struct Experiment {
    dataset: Dataset,
    codec: Box<dyn Codec>,
    net_config: NetworkConfig,
    deployment: DeploymentSpec,
    scale: ClusterScale,
    seed: u64,
    epochs: usize,
    batch_size: usize,
    data_fraction: f32,
    grad_compression: GradCompression,
    mode: TrainingMode,
    probe_n: usize,
    raw_frames: Option<usize>,
    data_plane_frames: Option<usize>,
    monitor: Option<FineTuneMonitor>,
    store: Option<CheckpointStore>,
    checkpoints_saved: usize,
    retrains: usize,
    network: Option<Box<dyn DeploymentBackend>>,
    ran: bool,
}

impl Experiment {
    /// The codec, for follow-up measurements (reconstructions feeding a
    /// classifier, quality probes, …).
    #[must_use]
    pub fn codec(&self) -> &dyn Codec {
        self.codec.as_ref()
    }

    /// Mutable codec access.
    #[must_use]
    pub fn codec_mut(&mut self) -> &mut dyn Codec {
        self.codec.as_mut()
    }

    /// The dataset the experiment runs on.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The resolved training mode.
    #[must_use]
    pub fn mode(&self) -> TrainingMode {
        self.mode
    }

    /// The deployment backend after an orchestrated run (`None` before
    /// [`Experiment::run`] and for local runs).
    #[must_use]
    pub fn network(&self) -> Option<&dyn DeploymentBackend> {
        self.network.as_deref()
    }

    /// The fine-tuning monitor, if configured.
    #[must_use]
    pub fn monitor(&self) -> Option<&FineTuneMonitor> {
        self.monitor.as_ref()
    }

    /// The checkpoint store, if configured.
    #[must_use]
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Monitor-triggered retrains so far.
    #[must_use]
    pub fn retrain_count(&self) -> usize {
        self.retrains
    }

    fn protocol_config(&self, seed: u64) -> OrcoConfig {
        OrcoConfig {
            input_dim: self.codec.input_dim(),
            latent_dim: self.codec.code_len(),
            // Fields below parameterize model construction, which the
            // pipeline never does (the codec arrives pre-built); only the
            // protocol-facing fields matter to the orchestrator.
            decoder_layers: 1,
            noise_variance: 0.0,
            huber_delta: 1.0,
            vector_huber: false,
            learning_rate: 1e-3,
            batch_size: self.batch_size,
            epochs: self.epochs.max(1),
            finetune_threshold: self.monitor.as_ref().map_or(0.05, FineTuneMonitor::threshold),
            grad_compression: self.grad_compression,
            seed,
        }
    }

    fn training_stream(&self) -> Matrix {
        if self.data_fraction < 1.0 {
            let mut rng = OrcoRng::from_label("experiment-data-fraction", self.seed);
            fraction_rows(self.dataset.x(), self.data_fraction, &mut rng)
        } else {
            self.dataset.x().clone()
        }
    }

    fn probe_set(&self) -> Matrix {
        let idx: Vec<usize> = (0..self.dataset.len().min(self.probe_n)).collect();
        self.dataset.x().select_rows(&idx)
    }

    fn push_checkpoint(&mut self) -> Result<(), OrcoError> {
        if let Some(store) = self.store.as_mut() {
            if let Some(ckpt) = self.codec.checkpoint() {
                store.push(&ckpt)?;
                self.checkpoints_saved += 1;
            }
        }
        Ok(())
    }

    /// Executes the pipeline once. Calling it a second time is an error —
    /// stream additional data through [`Experiment::observe`] instead.
    ///
    /// # Errors
    ///
    /// Propagates configuration, divergence, and simulation errors.
    pub fn run(&mut self) -> Result<Report, OrcoError> {
        if self.ran {
            return Err(OrcoError::Config {
                detail: "Experiment::run called twice; use observe() for fresh data".into(),
            });
        }
        let probe = self.probe_set();
        let (rounds, probe_records, sim_time_s, training_radio, data_plane) = match self.mode {
            TrainingMode::Orchestrated => self.run_orchestrated(&probe)?,
            TrainingMode::Local => self.run_local(&probe)?,
        };

        // Reconstruction quality on the full dataset, codec-native loss —
        // one batched encode/decode round trip.
        let recon = self.codec.reconstruct(self.dataset.x())?;
        let final_loss = self.codec.loss().value(&recon, self.dataset.x());
        let psnrs = stats::psnr_rows(self.dataset.x(), &recon, 1.0);
        let finite: Vec<f32> = psnrs.into_iter().filter(|p| p.is_finite()).collect();
        let mean_psnr_db = stats::mean(&finite);

        self.push_checkpoint()?;
        self.ran = true;
        // The backend names itself; only un-simulated training needs a
        // label of its own.
        let backend = match self.mode {
            TrainingMode::Local => "local",
            TrainingMode::Orchestrated => {
                self.network.as_deref().map_or("analytic", DeploymentBackend::backend_name)
            }
        };
        Ok(Report {
            codec: self.codec.name(),
            backend,
            mode: self.mode,
            rounds,
            probe: probe_records,
            final_loss,
            mean_psnr_db,
            sim_time_s,
            training_radio,
            data_plane,
            checkpoints_saved: self.checkpoints_saved,
        })
    }

    #[allow(clippy::type_complexity)]
    fn run_orchestrated(
        &mut self,
        probe: &Matrix,
    ) -> Result<
        (Vec<RoundStats>, Vec<EpochRecord>, f64, RadioSummary, Option<TransmissionReport>),
        OrcoError,
    > {
        let train_x = self.training_stream();
        let column_bytes = self.codec.bytes_per_frame();
        let loss = self.codec.loss();
        let config = self.protocol_config(self.seed);
        let net_config = NetworkConfig {
            num_devices: self.scale.device_count(self.codec.input_dim()),
            seed: self.seed,
            ..self.net_config.clone()
        };
        let epochs = self.epochs;
        let data_plane_frames =
            self.data_plane_frames.unwrap_or_else(|| self.dataset.len().clamp(1, 8));

        let split = self.codec.split_model().ok_or_else(|| OrcoError::Config {
            detail: "orchestrated training requires a split model".into(),
        })?;
        let backend: Box<dyn DeploymentBackend> = match &self.deployment {
            DeploymentSpec::Analytic => Box::new(Network::new(net_config)),
            DeploymentSpec::EventDriven(spec) => {
                Box::new(DesNetwork::new(net_config, spec.clone()))
            }
        };
        let mut orch = Orchestrator::with_parts(split, config, loss, backend);

        // §III-A: one raw frame per accessible training sample reaches the
        // aggregator (unless the caller opted out of the collection phase).
        let raw_frames = self.raw_frames.unwrap_or_else(|| train_x.rows());
        if epochs > 0 && raw_frames > 0 {
            orch.aggregate_raw_frames(raw_frames)?;
        }

        // §III-B: orchestrated online training in one continuous run, with
        // a probe-error record at every epoch boundary. `train_with`'s
        // epoch hook evaluates out-of-band, so rounds, shuffles, and the
        // simulated clock are exactly those of an uninstrumented `train`.
        type PipelineOrch<'a> =
            Orchestrator<&'a mut dyn crate::SplitModel, Box<dyn DeploymentBackend>>;
        let probe_l2 = |orch: &mut PipelineOrch<'_>| -> f32 {
            let recon = orch.model_mut().reconstruct_inference(probe);
            Loss::L2.value(&recon, probe)
        };
        let mut records = vec![EpochRecord {
            epoch: 0,
            sim_time_s: orch.network().now_s(),
            probe_l2: probe_l2(&mut orch),
        }];
        let rounds = if epochs > 0 {
            orch.train_with(&train_x, |orch, epoch| {
                records.push(EpochRecord {
                    epoch: epoch + 1,
                    sim_time_s: orch.network().now_s(),
                    probe_l2: probe_l2(orch),
                });
            })?
            .rounds
        } else {
            Vec::new()
        };
        let sim_time_s = orch.network().now_s();
        let acct = orch.network().accounting();
        let training_radio = RadioSummary {
            total_tx_bytes: acct.total_tx_bytes(),
            uplink_bytes: acct.bytes_by_kind(PacketKind::LatentVector),
            feedback_bytes: acct.bytes_by_kind(PacketKind::ModelUpdate),
            energy_j: acct.total_tx_energy_j() + acct.total_rx_energy_j(),
            link: acct.link_stats(),
        };

        // §III-C: distribute the per-device column shares, then measure the
        // steady-state compressed data plane on real sensing frames: one
        // batched encode of the probe rows feeds every DES/analytic payload
        // (byte-identical to the old count-only measurement — regression-
        // pinned — but the codec actually runs, batched, on the hot path).
        let mut network = orch.into_network();
        let data_plane = if data_plane_frames > 0 {
            network.broadcast_encoder_columns(column_bytes)?;
            let encode_rows = self.dataset.len().min(data_plane_frames).max(1);
            let mut codes = Matrix::zeros(0, 0);
            Some(aggregation::measure_encoded_frames(
                &mut network,
                self.codec.as_mut(),
                self.dataset.x().view_rows(0..encode_rows),
                &mut codes,
                data_plane_frames,
            )?)
        } else {
            None
        };
        self.network = Some(network);
        Ok((rounds, records, sim_time_s, training_radio, data_plane))
    }

    #[allow(clippy::type_complexity)]
    fn run_local(
        &mut self,
        probe: &Matrix,
    ) -> Result<
        (Vec<RoundStats>, Vec<EpochRecord>, f64, RadioSummary, Option<TransmissionReport>),
        OrcoError,
    > {
        let spec = TrainSpec {
            epochs: self.epochs,
            batch_size: self.batch_size,
            seed: self.seed,
            data_fraction: self.data_fraction,
        };
        let mut records = vec![EpochRecord {
            epoch: 0,
            sim_time_s: 0.0,
            probe_l2: {
                let recon = self.codec.reconstruct(probe)?;
                Loss::L2.value(&recon, probe)
            },
        }];
        let rounds = if self.epochs > 0 {
            self.codec.train(self.dataset.x(), &spec)?.rounds
        } else {
            Vec::new()
        };
        records.push(EpochRecord {
            epoch: self.epochs,
            sim_time_s: 0.0,
            probe_l2: {
                let recon = self.codec.reconstruct(probe)?;
                Loss::L2.value(&recon, probe)
            },
        });
        Ok((rounds, records, 0.0, RadioSummary::default(), None))
    }

    /// Streams one batch of fresh sensing data through the continual
    /// §III-D loop: measure the reconstruction error on the edge, record
    /// it with the monitor, and relaunch training (through the same mode
    /// as the initial run) when the windowed error breaches the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] when no monitor is configured or the
    /// experiment has not [`run`](Experiment::run) yet; propagates
    /// retraining errors.
    pub fn observe(&mut self, x: &Matrix) -> Result<ObserveOutcome, OrcoError> {
        if !self.ran {
            return Err(OrcoError::Config {
                detail: "Experiment::observe called before run()".into(),
            });
        }
        if self.monitor.is_none() {
            return Err(OrcoError::Config {
                detail: "no monitor configured; add .monitor(..) to the builder".into(),
            });
        }
        let err = {
            let recon = self.codec.reconstruct(x)?;
            self.codec.loss().value(&recon, x)
        };
        let monitor = self.monitor.as_mut().expect("checked above");
        monitor.record(err);
        if !monitor.should_retrain() {
            return Ok(ObserveOutcome { reconstruction_error: err, retraining: None });
        }
        monitor.acknowledge();
        self.retrains += 1;
        // Vary the batching seed per relaunch so repeated retrains do not
        // replay identical shuffles.
        let seed = self.seed.wrapping_add(self.retrains as u64);
        let history = match self.mode {
            TrainingMode::Orchestrated => {
                let network = self.network.take().ok_or_else(|| OrcoError::Config {
                    detail: "orchestrated retrain requires the deployment from run()".into(),
                })?;
                // `protocol_config` already carries the full epoch count.
                let config = self.protocol_config(seed);
                let loss = self.codec.loss();
                let split = self.codec.split_model().ok_or_else(|| OrcoError::Config {
                    detail: "orchestrated retrain requires a split model".into(),
                })?;
                let mut orch = Orchestrator::with_parts(split, config, loss, network);
                let history = orch.train(x)?;
                self.network = Some(orch.into_network());
                history
            }
            TrainingMode::Local => {
                let spec = TrainSpec {
                    epochs: self.epochs.max(1),
                    batch_size: self.batch_size,
                    seed,
                    data_fraction: 1.0,
                };
                self.codec.train(x, &spec)?
            }
        };
        self.push_checkpoint()?;
        Ok(ObserveOutcome { reconstruction_error: err, retraining: Some(history) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoencoder::AsymmetricAutoencoder;
    use orco_datasets::{mnist_like, DatasetKind};

    fn tiny_builder(n: usize, seed: u64) -> (Dataset, ExperimentBuilder) {
        let ds = mnist_like::generate(n, seed);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_batch_size(8)
            .with_learning_rate(0.1);
        let codec = AsymmetricAutoencoder::new(&cfg).unwrap();
        let builder = ExperimentBuilder::new().dataset(&ds).codec(codec).epochs(2).batch_size(8);
        (ds, builder)
    }

    #[test]
    fn orchestrated_run_produces_full_report() {
        let (_ds, builder) = tiny_builder(16, 0);
        let mut exp = builder.build().unwrap();
        assert_eq!(exp.mode(), TrainingMode::Orchestrated);
        let report = exp.run().unwrap();
        assert_eq!(report.codec, "OrcoDCS");
        assert_eq!(report.rounds.len(), 4, "2 epochs x 2 batches");
        assert_eq!(report.probe.len(), 3, "pre-training + 2 epochs");
        assert!(report.sim_time_s > 0.0);
        assert!(report.final_loss.is_finite());
        assert!(report.training_radio.total_tx_bytes > 0);
        assert!(report.training_radio.energy_j > 0.0);
        assert!(report.data_plane.expect("measured").total_bytes > 0);
        // Probe error drops over training.
        assert!(report.final_probe_l2() < report.probe[0].probe_l2);
        // Rounds carry monotone clock and energy.
        for w in report.rounds.windows(2) {
            assert!(w[1].sim_time_s > w[0].sim_time_s);
            assert!(w[1].energy_j >= w[0].energy_j);
        }
    }

    #[test]
    fn local_run_skips_the_simulated_deployment() {
        let (_ds, builder) = tiny_builder(16, 1);
        let mut exp = builder.training(TrainingMode::Local).build().unwrap();
        let report = exp.run().unwrap();
        assert_eq!(report.mode, TrainingMode::Local);
        assert!((report.sim_time_s - 0.0).abs() < f64::EPSILON);
        assert!(report.data_plane.is_none());
        assert_eq!(report.training_radio, RadioSummary::default());
        assert!(!report.rounds.is_empty());
        assert!(report.final_probe_l2() < report.probe[0].probe_l2);
    }

    #[test]
    fn zero_epochs_measures_data_plane_only() {
        let (_ds, builder) = tiny_builder(8, 2);
        let mut exp = builder.epochs(0).data_plane_frames(3).build().unwrap();
        let report = exp.run().unwrap();
        assert!(report.rounds.is_empty());
        let plane = report.data_plane.expect("measured");
        assert_eq!(plane.frames, 3);
        assert!(plane.total_bytes > 0);
        // No training traffic at all.
        assert_eq!(report.training_radio.total_tx_bytes, 0);
    }

    #[test]
    fn run_twice_is_rejected() {
        let (_ds, builder) = tiny_builder(8, 3);
        let mut exp = builder.build().unwrap();
        exp.run().unwrap();
        assert!(matches!(exp.run(), Err(OrcoError::Config { .. })));
    }

    #[test]
    fn builder_validates_inputs() {
        let ds = mnist_like::generate(4, 4);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        // Missing codec.
        assert!(ExperimentBuilder::new().dataset(&ds).build().is_err());
        // Missing dataset.
        let codec = AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(ExperimentBuilder::new().codec(codec).build().is_err());
        // Dimension mismatch.
        let gtsrb_cfg = OrcoConfig::for_dataset(DatasetKind::GtsrbLike);
        let codec = AsymmetricAutoencoder::new(&gtsrb_cfg).unwrap();
        assert!(ExperimentBuilder::new().dataset(&ds).codec(codec).build().is_err());
        // Bad fraction.
        let codec = AsymmetricAutoencoder::new(&cfg).unwrap();
        assert!(ExperimentBuilder::new()
            .dataset(&ds)
            .codec(codec)
            .data_fraction(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn data_fraction_shrinks_the_orchestrated_stream() {
        let (_ds, full_builder) = tiny_builder(32, 5);
        let full = full_builder.epochs(1).build().unwrap().run().unwrap();
        let (_ds, half_builder) = tiny_builder(32, 5);
        let half = half_builder.epochs(1).data_fraction(0.5).build().unwrap().run().unwrap();
        assert_eq!(full.rounds.len(), 4, "32 samples in 8-batches");
        assert_eq!(half.rounds.len(), 2, "16 samples in 8-batches");
    }

    #[test]
    fn faithful_scale_sizes_the_cluster_to_the_frame() {
        let (_ds, builder) = tiny_builder(8, 6);
        let mut exp = builder.epochs(1).scale(ClusterScale::Faithful).build().unwrap();
        let _ = exp.run().unwrap();
        assert_eq!(exp.network().expect("orchestrated").devices().len(), 784);
    }

    #[test]
    fn observe_requires_monitor_and_run() {
        let ds = mnist_like::generate(8, 7);
        let (_d, builder) = tiny_builder(8, 7);
        let mut exp = builder.build().unwrap();
        assert!(exp.observe(ds.x()).is_err(), "observe before run is rejected");
        let _ = exp.run().unwrap();
        assert!(exp.observe(ds.x()).is_err(), "observe without monitor is rejected");
    }
}
