//! Decoder construction (paper eq. 3 and the Fig. 8 depth sweep).
//!
//! The paper's decoder is "a one-layer fully-connected decoder … however,
//! for different reconstruction tasks, the number of layers and the
//! structure of the decoder can be increased". This module builds dense
//! decoder stacks of any depth, interpolating hidden widths geometrically
//! between the latent dimension `M` and the output dimension `N`.

use orco_nn::{Activation, Dense, Sequential};
use orco_tensor::OrcoRng;

/// Hidden-layer widths for a decoder of `layers` dense layers mapping
/// `latent_dim → … → output_dim`.
///
/// Widths are geometrically interpolated, e.g. 128→784 with 3 layers gives
/// approximately `[128, 233, 425, 784]` boundaries.
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn layer_widths(latent_dim: usize, output_dim: usize, layers: usize) -> Vec<usize> {
    assert!(latent_dim > 0 && output_dim > 0 && layers > 0, "layer_widths: zero argument");
    let mut widths = Vec::with_capacity(layers + 1);
    let lm = (latent_dim as f64).ln();
    let ln = (output_dim as f64).ln();
    for i in 0..=layers {
        let t = i as f64 / layers as f64;
        let w = (lm + t * (ln - lm)).exp().round() as usize;
        widths.push(w.max(1));
    }
    // Endpoints must be exact.
    widths[0] = latent_dim;
    widths[layers] = output_dim;
    widths
}

/// Builds a decoder: `layers` dense layers with sigmoid activations
/// (hidden layers) and a sigmoid output (pixels live in `[0, 1]`).
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn build_decoder(
    latent_dim: usize,
    output_dim: usize,
    layers: usize,
    rng: &mut OrcoRng,
) -> Sequential {
    let widths = layer_widths(latent_dim, output_dim, layers);
    let mut model = Sequential::new();
    for w in widths.windows(2) {
        model.push(Dense::new(w[0], w[1], Activation::Sigmoid, rng));
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_is_direct() {
        assert_eq!(layer_widths(128, 784, 1), vec![128, 784]);
    }

    #[test]
    fn widths_are_monotone_when_expanding() {
        let w = layer_widths(128, 784, 3);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 128);
        assert_eq!(w[3], 784);
        assert!(w.windows(2).all(|p| p[0] <= p[1]), "{w:?}");
    }

    #[test]
    fn deep_decoder_has_requested_layers() {
        let mut rng = OrcoRng::from_label("dec", 0);
        for layers in [1usize, 3, 5] {
            let d = build_decoder(64, 784, layers, &mut rng);
            assert_eq!(d.len(), layers);
            assert_eq!(d.input_dim(), Some(64));
            assert_eq!(d.output_dim(), Some(784));
        }
    }

    #[test]
    fn deeper_decoders_have_more_params() {
        let mut rng = OrcoRng::from_label("dec-params", 0);
        let shallow = build_decoder(128, 784, 1, &mut rng).param_count();
        let deep = build_decoder(128, 784, 3, &mut rng).param_count();
        assert!(deep > shallow);
    }

    #[test]
    fn contracting_widths_also_work() {
        let w = layer_widths(512, 64, 2);
        assert!(w[0] > w[1] && w[1] > w[2], "{w:?}");
    }
}
