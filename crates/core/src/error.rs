use std::fmt;

/// Errors produced by the OrcoDCS framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum OrcoError {
    /// A configuration value was invalid.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// The underlying network simulation failed.
    Network(orco_wsn::WsnError),
    /// A tensor operation failed.
    Tensor(orco_tensor::TensorError),
    /// Data with the wrong per-frame width reached a codec boundary —
    /// raised by the batch-level validation of
    /// [`Codec::encode_batch`](crate::Codec::encode_batch) /
    /// [`decode_batch`](crate::Codec::decode_batch) and by the per-frame
    /// compatibility methods.
    Shape {
        /// The codec that rejected the data (its `Codec::name`).
        codec: &'static str,
        /// What was being validated (`"frame"` or `"code"` width).
        what: &'static str,
        /// Expected width in f32 elements.
        expected: usize,
        /// Width actually provided.
        actual: usize,
    },
    /// Training diverged (non-finite loss or parameters).
    Diverged {
        /// The round at which divergence was detected.
        round: usize,
    },
    /// An I/O operation failed — raised by the serving layer
    /// (`orco-serve`) where sockets and codecs share one `?` chain.
    Io(std::io::Error),
    /// Persisted state failed an integrity check — raised by
    /// [`EncoderCheckpoint::load`](crate::EncoderCheckpoint::load) when a
    /// checkpoint's checksum does not match its payload (torn write,
    /// truncation, bit rot). Callers must treat the artifact as garbage,
    /// never as weights.
    Corrupt {
        /// What failed to verify.
        detail: String,
    },
}

impl fmt::Display for OrcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrcoError::Config { detail } => write!(f, "invalid configuration: {detail}"),
            OrcoError::Network(e) => write!(f, "network error: {e}"),
            OrcoError::Tensor(e) => write!(f, "tensor error: {e}"),
            OrcoError::Shape { codec, what, expected, actual } => write!(
                f,
                "{codec}: {what} width mismatch: expected {expected} f32 elements, got {actual}"
            ),
            OrcoError::Diverged { round } => {
                write!(f, "training diverged at round {round} (non-finite loss)")
            }
            OrcoError::Io(e) => write!(f, "i/o error: {e}"),
            OrcoError::Corrupt { detail } => write!(f, "corrupt artifact: {detail}"),
        }
    }
}

impl std::error::Error for OrcoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrcoError::Network(e) => Some(e),
            OrcoError::Tensor(e) => Some(e),
            OrcoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<orco_wsn::WsnError> for OrcoError {
    fn from(e: orco_wsn::WsnError) -> Self {
        OrcoError::Network(e)
    }
}

impl From<orco_tensor::TensorError> for OrcoError {
    fn from(e: orco_tensor::TensorError) -> Self {
        OrcoError::Tensor(e)
    }
}

impl From<std::io::Error> for OrcoError {
    fn from(e: std::io::Error) -> Self {
        OrcoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OrcoError::Config { detail: "latent_dim is zero".into() };
        assert!(e.to_string().contains("latent_dim"));
        let net = OrcoError::from(orco_wsn::WsnError::UnknownNode { id: orco_wsn::NodeId(1) });
        assert!(std::error::Error::source(&net).is_some());
        assert!(net.to_string().contains("unknown node"));
        let shape = OrcoError::Shape { codec: "OrcoDCS", what: "frame", expected: 784, actual: 3 };
        assert!(shape.to_string().contains("OrcoDCS"));
        assert!(shape.to_string().contains("784"));
        let io = OrcoError::from(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"));
        assert!(matches!(io, OrcoError::Io(_)));
        assert!(std::error::Error::source(&io).is_some());
        assert!(io.to_string().contains("pipe"));
        let corrupt = OrcoError::Corrupt { detail: "checksum mismatch".into() };
        assert!(corrupt.to_string().contains("checksum mismatch"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
