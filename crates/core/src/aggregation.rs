//! Data-plane cost measurement (feeds the paper's Figure 3).
//!
//! After training and encoder distribution, the steady-state cost of
//! OrcoDCS is the per-frame compressed pipeline: chain aggregation of the
//! `M`-element partial sum inside the cluster, then one `M`-element uplink
//! from aggregator to edge. This module measures that pipeline on a live
//! simulation and extrapolates to arbitrary frame counts (byte costs are
//! exactly linear in the frame count, so measuring a handful of frames and
//! scaling is exact, not an approximation).

use orco_tensor::{MatView, Matrix};
use orco_wsn::{DeploymentBackend, PacketKind};

use crate::codec::Codec;
use crate::error::OrcoError;
use crate::orchestrator::Orchestrator;
use crate::split::SplitModel;

/// Measured cost of a number of compressed-aggregation frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionReport {
    /// Frames measured.
    pub frames: usize,
    /// Total bytes on air (all hops, headers included).
    pub total_bytes: u64,
    /// Bytes of intra-cluster chain traffic.
    pub chain_bytes: u64,
    /// Bytes of aggregator→edge uplink traffic.
    pub uplink_bytes: u64,
    /// Elapsed simulated seconds.
    pub sim_time_s: f64,
    /// Radio energy spent, joules.
    pub energy_j: f64,
}

impl TransmissionReport {
    /// Exact linear extrapolation to `target_frames`.
    ///
    /// # Panics
    ///
    /// Panics if the report measured zero frames.
    #[must_use]
    pub fn extrapolate(&self, target_frames: usize) -> TransmissionReport {
        assert!(self.frames > 0, "cannot extrapolate from zero frames");
        let scale = target_frames as f64 / self.frames as f64;
        TransmissionReport {
            frames: target_frames,
            total_bytes: (self.total_bytes as f64 * scale).round() as u64,
            chain_bytes: (self.chain_bytes as f64 * scale).round() as u64,
            uplink_bytes: (self.uplink_bytes as f64 * scale).round() as u64,
            sim_time_s: self.sim_time_s * scale,
            energy_j: self.energy_j * scale,
        }
    }

    /// Kilobytes on air (the unit of the paper's Figure 3).
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bytes as f64 / 1024.0
    }
}

/// One frame of compressed aggregation on a deployment whose encoder (or
/// measurement-operator columns) was already distributed: the chain folds
/// the `code_len`-element partial sum into the aggregator, which uplinks
/// the finished code to the edge. This is codec-agnostic — any
/// [`crate::Codec`] whose per-frame code is `code_len` f32 values pays
/// exactly this traffic.
///
/// Returns elapsed simulated seconds.
///
/// # Errors
///
/// Propagates transmission failures.
pub fn compressed_frame_on<D: DeploymentBackend + ?Sized>(
    network: &mut D,
    code_len: usize,
) -> Result<f64, OrcoError> {
    let code_bytes = (code_len * 4) as u64;
    // Per-device cost: `code_len` multiply-adds into the partial sum.
    let device_flops = (2 * code_len) as u64;
    let t0 = network.now_s();
    network.compressed_aggregation_round(code_bytes, device_flops)?;
    // Aggregator finishes the encoding (bias + σ) and uplinks.
    let agg = network.aggregator();
    let edge = network.edge();
    network.compute(agg, (6 * code_len) as u64)?;
    network.transmit(agg, edge, code_bytes, PacketKind::LatentVector)?;
    Ok(network.now_s() - t0)
}

/// Runs `frames` frames of the compressed pipeline on a deployment,
/// measuring all traffic in isolation (the ledger is reset before and not
/// after). The network-level twin of [`measure_compressed_pipeline`], used
/// by the experiment pipeline where no orchestrator is alive any more.
///
/// # Errors
///
/// Propagates transmission failures.
pub fn measure_compressed_frames<D: DeploymentBackend + ?Sized>(
    network: &mut D,
    code_len: usize,
    frames: usize,
) -> Result<TransmissionReport, OrcoError> {
    network.reset_accounting();
    let t0 = network.now_s();
    for _ in 0..frames {
        compressed_frame_on(network, code_len)?;
    }
    let acct = network.accounting();
    Ok(TransmissionReport {
        frames,
        total_bytes: acct.total_tx_bytes(),
        chain_bytes: acct.bytes_by_kind(PacketKind::CompressedElement),
        uplink_bytes: acct.bytes_by_kind(PacketKind::LatentVector),
        sim_time_s: network.now_s() - t0,
        energy_j: acct.total_tx_energy_j() + acct.total_rx_energy_j(),
    })
}

/// Runs the compressed data plane over **real sensing data**: the whole
/// round of `frames` is encoded in one [`Codec::encode_batch`] call into
/// the caller-owned `codes` buffer (reused across rounds, zero per-frame
/// allocation), then `frames_to_send` frames of chain aggregation +
/// uplink are measured on the deployment (byte costs are per-frame
/// constant, so extrapolating past the encoded batch is exact). Payload
/// sizes are derived from the encoded batch itself (`codes.cols()` f32
/// values per frame), so the
/// traffic is byte-identical to [`measure_compressed_frames`] with
/// `code_len = codec.code_len()` — that twin survives for callers with no
/// data in hand.
///
/// # Errors
///
/// Propagates batch-boundary shape errors and transmission failures.
pub fn measure_encoded_frames<D: DeploymentBackend + ?Sized>(
    network: &mut D,
    codec: &mut dyn Codec,
    frames: MatView<'_>,
    codes: &mut Matrix,
    frames_to_send: usize,
) -> Result<TransmissionReport, OrcoError> {
    if frames.rows() == 0 {
        return Err(OrcoError::Config {
            detail: "measure_encoded_frames: need at least one frame to encode".into(),
        });
    }
    codec.encode_batch(frames, codes)?;
    network.reset_accounting();
    let t0 = network.now_s();
    for _ in 0..frames_to_send {
        compressed_frame_on(network, codes.cols())?;
    }
    let acct = network.accounting();
    Ok(TransmissionReport {
        frames: frames_to_send,
        total_bytes: acct.total_tx_bytes(),
        chain_bytes: acct.bytes_by_kind(PacketKind::CompressedElement),
        uplink_bytes: acct.bytes_by_kind(PacketKind::LatentVector),
        sim_time_s: network.now_s() - t0,
        energy_j: acct.total_tx_energy_j() + acct.total_rx_energy_j(),
    })
}

/// Runs `frames` frames of the compressed pipeline on an orchestrator whose
/// encoder was already distributed, measuring all traffic in isolation
/// (the ledger is reset before and not after).
///
/// # Errors
///
/// Propagates transmission failures.
pub fn measure_compressed_pipeline<M: SplitModel, D: DeploymentBackend>(
    orch: &mut Orchestrator<M, D>,
    frames: usize,
) -> Result<TransmissionReport, OrcoError> {
    let code_len = orch.config().latent_dim;
    measure_compressed_frames(orch.network_mut(), code_len, frames)
}

/// Runs `frames` frames of **raw** aggregation (the no-compression
/// baseline's data plane) and measures the traffic, including the raw
/// uplink of every frame to the edge.
///
/// `reading_bytes` is the per-device payload per frame (4 for one f32).
///
/// # Errors
///
/// Propagates transmission failures.
pub fn measure_raw_pipeline<M: SplitModel, D: DeploymentBackend>(
    orch: &mut Orchestrator<M, D>,
    frames: usize,
    reading_bytes: u64,
) -> Result<TransmissionReport, OrcoError> {
    orch.network_mut().reset_accounting();
    let t0 = orch.network().now_s();
    let frame_bytes = orch.config().sample_bytes();
    for _ in 0..frames {
        orch.network_mut().raw_aggregation_round(reading_bytes)?;
        let agg = orch.network().aggregator();
        let edge = orch.network().edge();
        orch.network_mut().transmit(agg, edge, frame_bytes, PacketKind::RawData)?;
    }
    let acct = orch.network().accounting();
    Ok(TransmissionReport {
        frames,
        total_bytes: acct.total_tx_bytes(),
        chain_bytes: 0,
        uplink_bytes: acct.bytes_by_kind(PacketKind::RawData),
        sim_time_s: orch.network().now_s() - t0,
        energy_j: acct.total_tx_energy_j() + acct.total_rx_energy_j(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrcoConfig;
    use orco_datasets::DatasetKind;
    use orco_wsn::NetworkConfig;

    fn orch_with(latent: usize) -> Orchestrator {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(latent);
        Orchestrator::new(cfg, NetworkConfig { num_devices: 32, seed: 0, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn compressed_cost_scales_with_latent_dim() {
        let mut small = orch_with(16);
        let mut large = orch_with(128);
        let rs = measure_compressed_pipeline(&mut small, 4).unwrap();
        let rl = measure_compressed_pipeline(&mut large, 4).unwrap();
        assert!(rl.total_bytes > rs.total_bytes * 4, "128-dim should cost ≫ 16-dim");
        assert!(rs.uplink_bytes >= 4 * 16 * 4);
    }

    #[test]
    fn extrapolation_is_linear() {
        let mut orch = orch_with(32);
        let r = measure_compressed_pipeline(&mut orch, 5).unwrap();
        let big = r.extrapolate(50);
        assert_eq!(big.frames, 50);
        assert_eq!(big.total_bytes, r.total_bytes * 10);
        assert!((big.sim_time_s - r.sim_time_s * 10.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_matches_actual_measurement() {
        // Measure 2 frames, extrapolate to 6, compare against measuring 6.
        let mut a = orch_with(32);
        let r2 = measure_compressed_pipeline(&mut a, 2).unwrap();
        let mut b = orch_with(32);
        let r6 = measure_compressed_pipeline(&mut b, 6).unwrap();
        let ex = r2.extrapolate(6);
        assert_eq!(ex.total_bytes, r6.total_bytes);
        assert_eq!(ex.uplink_bytes, r6.uplink_bytes);
    }

    #[test]
    fn raw_pipeline_costs_more_than_compressed() {
        // Latent must be small relative to the frame (784 readings) for the
        // compressed pipeline to win — that is the whole point of CS.
        let mut orch = orch_with(16);
        let compressed = measure_compressed_pipeline(&mut orch, 3).unwrap();
        let raw = measure_raw_pipeline(&mut orch, 3, 4).unwrap();
        assert!(
            raw.total_bytes > compressed.total_bytes,
            "raw {} vs compressed {}",
            raw.total_bytes,
            compressed.total_bytes
        );
        assert!(raw.energy_j > 0.0 && compressed.energy_j > 0.0);
    }

    #[test]
    fn encoded_frames_match_count_only_measurement_bitwise() {
        use crate::autoencoder::AsymmetricAutoencoder;
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
        let mut codec = AsymmetricAutoencoder::new(&cfg).unwrap();
        let ds = orco_datasets::mnist_like::generate(4, 0);
        let make_net = || {
            orco_wsn::Network::new(NetworkConfig { num_devices: 16, seed: 0, ..Default::default() })
        };
        let mut codes = Matrix::zeros(0, 0);
        let mut net = make_net();
        let with_data =
            measure_encoded_frames(&mut net, &mut codec, ds.x().as_view(), &mut codes, 6).unwrap();
        assert_eq!(codes.shape(), (4, 16), "codes land in the caller-owned buffer");
        let mut net = make_net();
        let count_only = measure_compressed_frames(&mut net, 16, 6).unwrap();
        assert_eq!(with_data, count_only, "real payloads must cost exactly the modeled bytes");
    }

    #[test]
    fn kb_conversion() {
        let r = TransmissionReport {
            frames: 1,
            total_bytes: 2048,
            chain_bytes: 0,
            uplink_bytes: 0,
            sim_time_s: 0.0,
            energy_j: 0.0,
        };
        assert!((r.total_kb() - 2.0).abs() < 1e-9);
    }
}
