//! # orcodcs
//!
//! The paper's core contribution: an **IoT-Edge orchestrated online deep
//! compressed sensing framework** (OrcoDCS, ICDCS 2023).
//!
//! OrcoDCS replaces both the random measurement matrices of classical
//! compressed data aggregation and the offline-trained models of deep CDA
//! with an **asymmetric autoencoder trained online, in place, by the data
//! aggregator and the edge server together**:
//!
//! * a one-dense-layer encoder lives on the **data aggregator** (eq. 1) —
//!   cheap enough for a gateway-class device;
//! * Gaussian noise is injected into the latent vectors (eq. 2) to widen
//!   the decoder's learning space and robustify reconstructions;
//! * a configurable-depth decoder lives on the **edge server** (eq. 3);
//! * training minimizes a Huber reconstruction loss (eq. 4–5) with the
//!   gradient split across the two machines — latent vectors flow up,
//!   reconstructions and latent gradients flow back down;
//! * after training, the encoder is **distributed column-wise to the IoT
//!   devices** (§III-C) so compressed aggregation happens in-network along
//!   a chain, and a **fine-tuning monitor** (§III-D) relaunches training
//!   when environmental drift degrades reconstructions.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |-------|--------|
//! | §III-B encoder/decoder/noise/loss | [`autoencoder`], [`decoder`], [`noise`] |
//! | §III-B training procedure | [`orchestrator`], [`online_trainer`] |
//! | §III-C encoder distribution | [`distribution`] |
//! | §III-C compressed aggregation | [`aggregation`] |
//! | §III-D model fine-tuning | [`monitor`] |
//! | §IV experiment pipeline | [`codec`], [`pipeline`] (legacy drivers: [`experiment`]) |
//!
//! ## Quick start
//!
//! Every experiment — OrcoDCS or a baseline — runs through one pipeline:
//! implement (or pick) a [`Codec`], assemble an [`ExperimentBuilder`], and
//! project what you need from the returned [`pipeline::Report`].
//!
//! ```
//! use orcodcs::{AsymmetricAutoencoder, ExperimentBuilder, OrcoConfig};
//! use orco_datasets::mnist_like;
//!
//! // A miniature end-to-end run: aggregate, train online over the
//! // simulated deployment, distribute the encoder, measure the data plane.
//! let dataset = mnist_like::generate(40, 0);
//! let config = OrcoConfig::for_dataset(dataset.kind())
//!     .with_latent_dim(32)
//!     .with_batch_size(8);
//! let codec = AsymmetricAutoencoder::new(&config).expect("valid config");
//! let mut experiment = ExperimentBuilder::new()
//!     .dataset(&dataset)
//!     .codec(codec)
//!     .epochs(2)
//!     .batch_size(8)
//!     .build()
//!     .expect("consistent experiment");
//! let report = experiment.run().expect("simulation runs");
//! assert!(report.final_loss > 0.0);
//! assert!(report.rounds.len() >= 2);
//! assert!(report.data_plane.expect("measured").total_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;

pub mod aggregation;
pub mod autoencoder;
pub mod checkpoint;
pub mod codec;
pub mod compression;
pub mod decoder;
pub mod distribution;
pub mod experiment;
pub mod monitor;
pub mod multi_cluster;
pub mod noise;
pub mod online_trainer;
pub mod orchestrator;
pub mod pipeline;
pub mod split;

pub use autoencoder::AsymmetricAutoencoder;
pub use checkpoint::{CheckpointStore, EncoderCheckpoint};
pub use codec::{Codec, FrameDims, TrainSpec};
pub use compression::GradCompression;
pub use config::OrcoConfig;
pub use distribution::EncoderColumns;
pub use error::OrcoError;
pub use experiment::ClusterScale;
pub use monitor::FineTuneMonitor;
pub use online_trainer::{OnlineTrainer, RoundStats, TrainingHistory};
pub use orchestrator::Orchestrator;
pub use pipeline::{DeploymentSpec, Experiment, ExperimentBuilder, Report, TrainingMode};
pub use split::SplitModel;
