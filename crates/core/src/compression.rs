//! Gradient compression for the error-feedback uplink.
//!
//! The per-round reconstruction-gradient uplink (`batch × N` floats) is the
//! heaviest message of the orchestrated protocol. Because Huber gradients
//! are bounded (the linear regime is exactly `±δ`), they quantize extremely
//! well: this module provides symmetric per-tensor **8-bit linear
//! quantization**, cutting that uplink 4× with a worst-case element error
//! of `max|g| / 127`.
//!
//! Compression is applied *honestly* in the simulation: the decoder update
//! uses the dequantized gradient, so any accuracy cost of the 4× byte
//! saving shows up in the training curves rather than being assumed away.

use orco_tensor::Matrix;

/// Gradient-compression policy for the feedback uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GradCompression {
    /// Full-precision f32 gradients (4 bytes/element).
    #[default]
    None,
    /// Symmetric 8-bit linear quantization (1 byte/element + 4-byte scale).
    Byte,
}

impl GradCompression {
    /// Wire bytes for a gradient matrix under this policy.
    #[must_use]
    pub fn wire_bytes(self, elements: usize) -> u64 {
        match self {
            GradCompression::None => (elements * 4) as u64,
            GradCompression::Byte => elements as u64 + 4,
        }
    }

    /// Applies the policy: returns the gradient the receiver will see and
    /// the bytes it costs on the wire.
    #[must_use]
    pub fn apply(self, grad: &Matrix) -> (Matrix, u64) {
        match self {
            GradCompression::None => (grad.clone(), self.wire_bytes(grad.len())),
            GradCompression::Byte => {
                let q = QuantizedMatrix::quantize(grad);
                (q.dequantize(), self.wire_bytes(grad.len()))
            }
        }
    }
}

/// A matrix quantized to `i8` with one per-tensor scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    scale: f32,
    data: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes symmetrically: `q = round(v / scale)` with
    /// `scale = max|v| / 127` (an all-zero matrix gets scale 0 and all-zero
    /// codes).
    #[must_use]
    pub fn quantize(m: &Matrix) -> Self {
        let max_abs = m.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        if max_abs == 0.0 {
            return Self { rows: m.rows(), cols: m.cols(), scale: 0.0, data: vec![0; m.len()] };
        }
        let scale = max_abs / 127.0;
        let data =
            m.as_slice().iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8).collect();
        Self { rows: m.rows(), cols: m.cols(), scale, data }
    }

    /// Reconstructs the f32 matrix.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let data: Vec<f32> = self.data.iter().map(|&q| f32::from(q) * self.scale).collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("dimensions preserved")
    }

    /// The per-tensor scale factor.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Worst-case absolute error of any element after a round trip.
    #[must_use]
    pub fn max_error_bound(&self) -> f32 {
        self.scale * 0.5
    }

    /// Bytes this tensor occupies on the wire (codes + scale).
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.data.len() as u64 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orco_tensor::OrcoRng;

    #[test]
    fn roundtrip_error_within_half_step() {
        let mut rng = OrcoRng::from_label("quant", 0);
        let m = Matrix::from_fn(16, 24, |_, _| rng.uniform(-0.3, 0.3));
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        let bound = q.max_error_bound() + 1e-7;
        assert!(
            m.max_abs_diff(&back) <= bound,
            "error {} exceeds bound {bound}",
            m.max_abs_diff(&back)
        );
    }

    #[test]
    fn zero_matrix_roundtrips_exactly() {
        let m = Matrix::zeros(3, 5);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.scale(), 0.0);
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn extreme_values_map_to_full_range() {
        let m = Matrix::from_vec(1, 3, vec![-2.0, 0.0, 2.0]).unwrap();
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        assert!((back[(0, 0)] + 2.0).abs() < 1e-6);
        assert!((back[(0, 2)] - 2.0).abs() < 1e-6);
        assert_eq!(back[(0, 1)], 0.0);
    }

    #[test]
    fn byte_policy_is_4x_smaller() {
        assert_eq!(GradCompression::None.wire_bytes(1000), 4000);
        assert_eq!(GradCompression::Byte.wire_bytes(1000), 1004);
    }

    #[test]
    fn apply_none_is_identity() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let (out, bytes) = GradCompression::None.apply(&m);
        assert_eq!(out, m);
        assert_eq!(bytes, 24);
    }

    #[test]
    fn apply_byte_returns_dequantized_and_fewer_bytes() {
        let mut rng = OrcoRng::from_label("quant-apply", 0);
        let m = Matrix::from_fn(8, 8, |_, _| rng.normal(0.0, 0.1));
        let (out, bytes) = GradCompression::Byte.apply(&m);
        assert_eq!(bytes, 68);
        assert_ne!(out, m); // lossy
        assert!(m.max_abs_diff(&out) < 0.01);
    }

    #[test]
    fn sign_structure_is_preserved() {
        // Huber linear-regime gradients are ±δ; quantization must keep signs.
        let m = Matrix::from_vec(1, 4, vec![0.5, -0.5, 0.5, -0.5]).unwrap();
        let back = QuantizedMatrix::quantize(&m).dequantize();
        for (orig, deq) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(orig.signum(), deq.signum());
            assert!((orig - deq).abs() < 1e-6, "±δ values are exactly representable");
        }
    }
}
