//! High-level experiment drivers used by the examples and the figure
//! harnesses: one call runs the full OrcoDCS lifecycle on a dataset —
//! aggregate raw data, train online, distribute the encoder, measure the
//! compressed data plane, and score reconstructions.

use orco_datasets::Dataset;
use orco_tensor::stats;
use orco_wsn::NetworkConfig;

use crate::aggregation::{measure_compressed_pipeline, TransmissionReport};
use crate::config::OrcoConfig;
use crate::error::OrcoError;
use crate::online_trainer::TrainingHistory;
use crate::orchestrator::Orchestrator;

/// Everything a figure needs from one end-to-end OrcoDCS run.
#[derive(Debug)]
pub struct OrcoOutcome {
    /// Loss/time trajectory of online training.
    pub history: TrainingHistory,
    /// Final reconstruction loss on the training data (inference mode).
    pub final_loss: f32,
    /// Mean PSNR of reconstructions over the dataset, dB.
    pub mean_psnr_db: f32,
    /// Simulated seconds from first raw frame to end of training.
    pub sim_time_s: f64,
    /// Steady-state data-plane cost, measured post-distribution.
    pub data_plane: TransmissionReport,
    /// The orchestrator, still live, for follow-up measurements.
    pub orchestrator: Orchestrator,
}

/// How many devices to simulate for a run. Faithful deployments set this to
/// `N` (one device per reading, as the paper's formulation assumes);
/// figure sweeps that only need training curves can use a smaller cluster
/// to keep wall-clock time down without changing any training math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterScale {
    /// One IoT device per input dimension (the paper's model).
    Faithful,
    /// A fixed number of devices (data-plane bytes still scale with `M`).
    Devices(usize),
}

impl ClusterScale {
    /// Resolves the device count for a frame of `input_dim` readings.
    #[must_use]
    pub fn device_count(self, input_dim: usize) -> usize {
        match self {
            ClusterScale::Faithful => input_dim,
            ClusterScale::Devices(n) => n.max(1),
        }
    }
}

/// Runs the full OrcoDCS lifecycle on a dataset with a faithful-size
/// cluster. See [`run_orcodcs_scaled`] for control over the cluster size.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentBuilder` — it runs the same pipeline for any codec"
)]
pub fn run_orcodcs(dataset: &Dataset, config: &OrcoConfig) -> Result<OrcoOutcome, OrcoError> {
    #[allow(deprecated)]
    run_orcodcs_scaled(dataset, config, ClusterScale::Devices(32))
}

/// Runs the full OrcoDCS lifecycle with an explicit cluster scale.
///
/// This is the legacy single-backend driver; the
/// [`crate::pipeline::ExperimentBuilder`] chain produces bit-identical
/// metrics at the same seed (regression-tested) and also drives the
/// baseline codecs.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
#[deprecated(
    since = "0.2.0",
    note = "use `ExperimentBuilder` — it runs the same pipeline for any codec"
)]
pub fn run_orcodcs_scaled(
    dataset: &Dataset,
    config: &OrcoConfig,
    scale: ClusterScale,
) -> Result<OrcoOutcome, OrcoError> {
    config.validate()?;
    if dataset.is_empty() {
        return Err(OrcoError::Config { detail: "dataset is empty".into() });
    }
    let net_config = NetworkConfig {
        num_devices: scale.device_count(config.input_dim),
        seed: config.seed,
        ..Default::default()
    };
    let mut orch = Orchestrator::new(config.clone(), net_config)?;

    // §III-A: one raw frame per training sample reaches the aggregator.
    orch.aggregate_raw_frames(dataset.len())?;

    // §III-B: online orchestrated training.
    let history = orch.train(dataset.x())?;
    let sim_time_s = orch.network().now_s();

    // §III-C: distribute the encoder, then measure the steady-state
    // compressed data plane on a handful of frames.
    let (_columns, _t) = orch.distribute_encoder()?;
    let probe = dataset.len().clamp(1, 8);
    let data_plane = measure_compressed_pipeline(&mut orch, probe)?;

    // Reconstruction quality.
    let recon = orch.model_mut().reconstruct(dataset.x());
    let final_loss = {
        let loss = config.loss();
        loss.value(&recon, dataset.x())
    };
    let psnrs = stats::psnr_rows(dataset.x(), &recon, 1.0);
    let finite: Vec<f32> = psnrs.into_iter().filter(|p| p.is_finite()).collect();
    let mean_psnr_db = stats::mean(&finite);

    Ok(OrcoOutcome {
        history,
        final_loss,
        mean_psnr_db,
        sim_time_s,
        data_plane,
        orchestrator: orch,
    })
}

#[cfg(test)]
#[allow(deprecated)] // the legacy wrappers stay covered until removal
mod tests {
    use super::*;
    use orco_datasets::{mnist_like, DatasetKind};

    #[test]
    fn end_to_end_lifecycle_runs() {
        let ds = mnist_like::generate(24, 0);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(24)
            .with_epochs(3)
            .with_batch_size(8)
            .with_learning_rate(0.1);
        let outcome = run_orcodcs(&ds, &cfg).unwrap();
        assert!(outcome.final_loss.is_finite());
        assert!(outcome.mean_psnr_db.is_finite());
        assert!(outcome.sim_time_s > 0.0);
        assert_eq!(outcome.history.epoch_losses().len(), 3);
        assert!(outcome.data_plane.total_bytes > 0);
    }

    #[test]
    fn faithful_scale_uses_input_dim_devices() {
        let ds = mnist_like::generate(8, 1);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_epochs(1)
            .with_batch_size(8);
        let outcome = run_orcodcs_scaled(&ds, &cfg, ClusterScale::Faithful).unwrap();
        assert_eq!(outcome.orchestrator.network().devices().len(), 784);
    }

    #[test]
    fn longer_training_reaches_lower_loss() {
        let ds = mnist_like::generate(32, 2);
        let base = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(24)
            .with_batch_size(16)
            .with_learning_rate(0.1);
        let short = run_orcodcs(&ds, &base.clone().with_epochs(1)).unwrap();
        let long = run_orcodcs(&ds, &base.with_epochs(8)).unwrap();
        assert!(
            long.final_loss < short.final_loss,
            "8 epochs ({}) should beat 1 epoch ({})",
            long.final_loss,
            short.final_loss
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = mnist_like::generate(1, 0).subset(&[]);
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
        assert!(matches!(run_orcodcs(&ds, &cfg), Err(OrcoError::Config { .. })));
    }
}
