//! The backend-neutral compression interface every experiment runs
//! against.
//!
//! The paper's evaluation is comparative: OrcoDCS versus DCSNet versus
//! classical compressed sensing, across datasets, cluster scales, and
//! noise regimes. [`Codec`] is the one object-safe interface all of those
//! backends implement, so a figure, bench, or test can be written once and
//! pointed at any of them through the
//! [`ExperimentBuilder`](crate::pipeline::ExperimentBuilder):
//!
//! * [`crate::AsymmetricAutoencoder`] — the OrcoDCS path (implemented
//!   here);
//! * `Dcsnet` and the `Dct2` + `GaussianMeasurement` + ISTA/OMP stacks —
//!   the baselines (implemented in `orco-baselines`).
//!
//! The five core methods mirror a codec's deployment lifecycle: [`train`]
//! on aggregated data, [`encode_frame`] on the sensing side,
//! [`decode_frame`] on the edge, [`bytes_per_frame`] for the data-plane
//! cost model, and [`name`] for reporting. The defaulted hooks let the
//! pipeline exploit what a backend *can* do — train over the orchestrated
//! protocol ([`split_model`]), persist its distributable half
//! ([`checkpoint`]) — without the caller special-casing backends.
//!
//! [`train`]: Codec::train
//! [`encode_frame`]: Codec::encode_frame
//! [`decode_frame`]: Codec::decode_frame
//! [`bytes_per_frame`]: Codec::bytes_per_frame
//! [`name`]: Codec::name
//! [`split_model`]: Codec::split_model
//! [`checkpoint`]: Codec::checkpoint

use orco_nn::Loss;
use orco_tensor::{Matrix, OrcoRng};

use crate::autoencoder::AsymmetricAutoencoder;
use crate::checkpoint::EncoderCheckpoint;
use crate::error::OrcoError;
use crate::online_trainer::{RoundStats, TrainingHistory};
use crate::split::SplitModel;

/// Hyperparameters for one native (local/offline) training run of a
/// [`Codec`]. The codec supplies its own loss and model structure; the
/// spec controls only how the data is streamed through it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSpec {
    /// Passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for batch shuffling (and data subsetting, if any).
    pub seed: u64,
    /// Fraction of the data the codec may see, in `(0, 1]` — the paper's
    /// DCSNet-30/50/70% settings.
    pub data_fraction: f32,
}

impl TrainSpec {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), OrcoError> {
        if self.batch_size == 0 {
            return Err(OrcoError::Config {
                detail: "TrainSpec: batch_size must be non-zero".into(),
            });
        }
        if !(self.data_fraction > 0.0 && self.data_fraction <= 1.0) {
            return Err(OrcoError::Config {
                detail: "TrainSpec: data_fraction must be in (0, 1]".into(),
            });
        }
        Ok(())
    }
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, seed: 0, data_fraction: 1.0 }
    }
}

/// Selects a random `fraction` of a design matrix's rows — the matrix-level
/// twin of `orco_datasets::split::fraction`, drawing the same index sample
/// from the given RNG. At least one row is always kept, so tiny datasets
/// with small fractions degrade to a 1-sample subset instead of panicking
/// mid-experiment.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or `x` has no rows.
#[must_use]
pub fn fraction_rows(x: &Matrix, fraction: f32, rng: &mut OrcoRng) -> Matrix {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
    assert!(x.rows() > 0, "fraction_rows: empty input");
    if fraction >= 1.0 {
        return x.clone();
    }
    let k = ((x.rows() as f32) * fraction).round() as usize;
    let idx = rng.sample_indices(x.rows(), k.clamp(1, x.rows()));
    x.select_rows(&idx)
}

/// The shared native-training loop of batch-trained codecs: `epochs`
/// shuffled passes over `x` in `batch_size` chunks, one `step` call per
/// mini-batch returning that batch's loss. Produces the same per-round
/// records as orchestrated training, with the simulated-deployment fields
/// zeroed (no network is involved).
///
/// Codecs keep their own fraction-subsetting and RNG-label policies and
/// delegate the loop here, so divergence checks and round bookkeeping
/// cannot drift between backends.
///
/// # Errors
///
/// Returns [`OrcoError::Config`] on an empty `x` and
/// [`OrcoError::Diverged`] when a step reports a non-finite loss.
pub fn shuffled_batch_train(
    x: &Matrix,
    epochs: usize,
    batch_size: usize,
    rng: &mut OrcoRng,
    mut step: impl FnMut(&Matrix) -> f32,
) -> Result<TrainingHistory, OrcoError> {
    if x.rows() == 0 {
        return Err(OrcoError::Config { detail: "training set is empty".into() });
    }
    let n = x.rows();
    let bs = batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = TrainingHistory::default();
    let mut round = 0usize;
    for epoch in 0..epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(bs) {
            let xb = x.select_rows(chunk);
            let value = step(&xb);
            if !value.is_finite() {
                return Err(OrcoError::Diverged { round });
            }
            history.rounds.push(RoundStats {
                round,
                epoch,
                loss: value,
                sim_time_s: 0.0,
                uplink_bytes: 0,
                energy_j: 0.0,
                link: orco_wsn::LinkStats::default(),
            });
            round += 1;
        }
    }
    Ok(history)
}

/// A compression backend runnable by the experiment pipeline.
///
/// Object-safe: experiments, figures, and tests hold `Box<dyn Codec>` and
/// never know which backend they drive.
pub trait Codec: std::fmt::Debug + Send {
    /// Short backend label for reports and tables (e.g. `"OrcoDCS"`).
    fn name(&self) -> &'static str;

    /// Flattened frame length `N` (one reading per IoT device).
    fn input_dim(&self) -> usize;

    /// Bytes of one encoded frame on the wire — the steady-state
    /// data-plane cost per frame, and the basis of the paper's Figure 3.
    fn bytes_per_frame(&self) -> u64;

    /// Number of f32 elements in one encoded frame.
    fn code_len(&self) -> usize {
        (self.bytes_per_frame() / 4) as usize
    }

    /// Trains the codec natively (locally / offline) on a design matrix.
    /// Training-free codecs (classical CS) return an empty history.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on an invalid spec and
    /// [`OrcoError::Diverged`] on non-finite losses.
    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError>;

    /// Encodes one frame of readings into its on-air code
    /// (`code_len()` values).
    fn encode_frame(&mut self, frame: &[f32]) -> Vec<f32>;

    /// Decodes one code back into a frame reconstruction
    /// (`input_dim()` values).
    fn decode_frame(&mut self, code: &[f32]) -> Vec<f32>;

    /// The codec's native reconstruction loss (used for reporting and the
    /// fine-tuning monitor; also the loss the orchestrated protocol trains
    /// with when [`Codec::split_model`] is available).
    fn loss(&self) -> Loss {
        Loss::L2
    }

    /// Batch reconstruction: encode and decode every row. Backends with a
    /// cheaper batched path (one GEMM instead of per-row loops) override
    /// this.
    fn reconstruct(&mut self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.input_dim());
        for r in 0..x.rows() {
            let code = self.encode_frame(x.row(r));
            let frame = self.decode_frame(&code);
            for (c, v) in frame.iter().enumerate() {
                out.set(r, c, *v);
            }
        }
        out
    }

    /// The codec's split (aggregator/edge) training half, when it can be
    /// trained through the IoT-Edge orchestrated protocol of §III-B.
    /// `None` for training-free or cloud-only backends.
    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        None
    }

    /// A persistable snapshot of the codec's distributable (device-side)
    /// parameters, when it has any.
    fn checkpoint(&self) -> Option<EncoderCheckpoint> {
        None
    }
}

impl Codec for AsymmetricAutoencoder {
    fn name(&self) -> &'static str {
        "OrcoDCS"
    }

    fn input_dim(&self) -> usize {
        AsymmetricAutoencoder::input_dim(self)
    }

    fn bytes_per_frame(&self) -> u64 {
        (self.latent_dim() * 4) as u64
    }

    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        spec.validate()?;
        if x.rows() == 0 {
            return Err(OrcoError::Config { detail: "training set is empty".into() });
        }
        let x_frac;
        let x = if spec.data_fraction < 1.0 {
            let mut frng = OrcoRng::from_label("orcodcs-codec-fraction", spec.seed);
            x_frac = fraction_rows(x, spec.data_fraction, &mut frng);
            &x_frac
        } else {
            x
        };
        let loss = self.training_loss();
        // The batching label predates this trait (the figure harness's
        // local trainer); it is kept so seeded runs reproduce earlier
        // releases bit-for-bit.
        let mut rng = OrcoRng::from_label("bench-local-batching", spec.seed);
        shuffled_batch_train(x, spec.epochs, spec.batch_size, &mut rng, |xb| {
            self.train_batch_local(xb, &loss)
        })
    }

    fn encode_frame(&mut self, frame: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, self.input_dim(), frame.to_vec())
            .expect("encode_frame: frame length must equal input_dim");
        self.encode(&x).into_vec()
    }

    fn decode_frame(&mut self, code: &[f32]) -> Vec<f32> {
        let y = Matrix::from_vec(1, self.latent_dim(), code.to_vec())
            .expect("decode_frame: code length must equal latent_dim");
        self.decode(&y).into_vec()
    }

    fn loss(&self) -> Loss {
        self.training_loss()
    }

    fn reconstruct(&mut self, x: &Matrix) -> Matrix {
        AsymmetricAutoencoder::reconstruct(self, x)
    }

    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        Some(self)
    }

    fn checkpoint(&self) -> Option<EncoderCheckpoint> {
        Some(EncoderCheckpoint::capture(self, Codec::name(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrcoConfig;
    use orco_datasets::{mnist_like, DatasetKind};

    fn tiny_codec() -> AsymmetricAutoencoder {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_learning_rate(0.1);
        AsymmetricAutoencoder::new(&cfg).unwrap()
    }

    #[test]
    fn codec_is_object_safe_and_roundtrips_shapes() {
        let mut boxed: Box<dyn Codec> = Box::new(tiny_codec());
        assert_eq!(boxed.name(), "OrcoDCS");
        assert_eq!(boxed.input_dim(), 784);
        assert_eq!(boxed.code_len(), 16);
        assert_eq!(boxed.bytes_per_frame(), 64);
        let frame = vec![0.5f32; 784];
        let code = boxed.encode_frame(&frame);
        assert_eq!(code.len(), 16);
        let recon = boxed.decode_frame(&code);
        assert_eq!(recon.len(), 784);
    }

    #[test]
    fn default_reconstruct_matches_batched_override() {
        // The per-frame default and the AE's batched override must agree.
        #[derive(Debug)]
        struct NoOverride(AsymmetricAutoencoder);
        impl Codec for NoOverride {
            fn name(&self) -> &'static str {
                "no-override"
            }
            fn input_dim(&self) -> usize {
                Codec::input_dim(&self.0)
            }
            fn bytes_per_frame(&self) -> u64 {
                Codec::bytes_per_frame(&self.0)
            }
            fn train(
                &mut self,
                x: &Matrix,
                spec: &TrainSpec,
            ) -> Result<TrainingHistory, OrcoError> {
                self.0.train(x, spec)
            }
            fn encode_frame(&mut self, frame: &[f32]) -> Vec<f32> {
                self.0.encode_frame(frame)
            }
            fn decode_frame(&mut self, code: &[f32]) -> Vec<f32> {
                self.0.decode_frame(code)
            }
        }
        let ds = mnist_like::generate(4, 0);
        let mut wrapped = NoOverride(tiny_codec());
        let via_default = wrapped.reconstruct(ds.x());
        let mut ae = tiny_codec();
        let via_batch = Codec::reconstruct(&mut ae, ds.x());
        assert!(via_default.max_abs_diff(&via_batch) < 1e-6);
    }

    #[test]
    fn native_training_learns_and_records_rounds() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(32, 0);
        let spec = TrainSpec { epochs: 4, batch_size: 16, seed: 0, data_fraction: 1.0 };
        let history = codec.train(ds.x(), &spec).unwrap();
        assert_eq!(history.rounds.len(), 8);
        assert_eq!(history.epoch_losses().len(), 4);
        let first = history.rounds.first().unwrap().loss;
        let last = history.final_loss().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn data_fraction_limits_training_rounds() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(32, 1);
        let spec = TrainSpec { epochs: 1, batch_size: 8, seed: 0, data_fraction: 0.5 };
        let history = codec.train(ds.x(), &spec).unwrap();
        assert_eq!(history.rounds.len(), 2, "16 samples in 8-batches");
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(4, 2);
        let bad = TrainSpec { batch_size: 0, ..TrainSpec::default() };
        assert!(codec.train(ds.x(), &bad).is_err());
        let bad = TrainSpec { data_fraction: 0.0, ..TrainSpec::default() };
        assert!(codec.train(ds.x(), &bad).is_err());
    }

    #[test]
    fn fraction_rows_matches_dataset_split() {
        // Same RNG stream → fraction_rows picks the same rows as
        // orco_datasets::split::fraction.
        let ds = mnist_like::generate(20, 3);
        let mut a = OrcoRng::from_label("frac-eq", 0);
        let mut b = OrcoRng::from_label("frac-eq", 0);
        let via_matrix = fraction_rows(ds.x(), 0.4, &mut a);
        let via_dataset = orco_datasets::split::fraction(&ds, 0.4, &mut b);
        assert_eq!(&via_matrix, via_dataset.x());
    }

    #[test]
    fn checkpoint_hook_captures_encoder() {
        let codec = tiny_codec();
        let ckpt = Codec::checkpoint(&codec).expect("AE has a distributable encoder");
        assert_eq!(ckpt.weight.shape(), (16, 784));
        assert_eq!(ckpt.label, "OrcoDCS");
    }
}
