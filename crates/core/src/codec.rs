//! The backend-neutral compression interface every experiment runs
//! against.
//!
//! The paper's evaluation is comparative: OrcoDCS versus DCSNet versus
//! classical compressed sensing, across datasets, cluster scales, and
//! noise regimes. [`Codec`] is the one object-safe interface all of those
//! backends implement, so a figure, bench, or test can be written once and
//! pointed at any of them through the
//! [`ExperimentBuilder`](crate::pipeline::ExperimentBuilder):
//!
//! * [`crate::AsymmetricAutoencoder`] — the OrcoDCS path (implemented
//!   here);
//! * `Dcsnet` and the `Dct2` + `GaussianMeasurement` + ISTA/OMP stacks —
//!   the baselines (implemented in `orco-baselines`).
//!
//! The core methods mirror a codec's deployment lifecycle: [`train`] on
//! aggregated data, [`encode_batch`] on the sensing side,
//! [`decode_batch`] on the edge, [`bytes_per_frame`] for the data-plane
//! cost model, and [`name`] for reporting. The defaulted hooks let the
//! pipeline exploit what a backend *can* do — train over the orchestrated
//! protocol ([`split_model`]), persist its distributable half
//! ([`checkpoint`]) — without the caller special-casing backends.
//!
//! # Migration: per-frame → batched
//!
//! Through PR 2 the data plane was strictly per-frame:
//! `encode_frame(&[f32]) -> Vec<f32>` allocated one `Vec` and ran one
//! matvec per frame, and every sweep, probe, and DES payload loop paid
//! that tax frame by frame. The batched API moves a round of `N` frames
//! as **one call over borrowed memory**:
//!
//! * [`encode_batch`] / [`decode_batch`] take an
//!   [`orco_tensor::MatView`] of frames and write into a caller-owned
//!   [`Matrix`] that is recycled across rounds (`out` is
//!   [`Matrix::reset`] internally, reusing its allocation). Shapes are
//!   validated **once per batch** against [`frame_dims`], returning typed
//!   [`OrcoError::Shape`] errors instead of panicking mid-experiment.
//! * The per-frame methods survive as the compatibility/default layer:
//!   `encode_frame`/`decode_frame` are what a minimal backend implements,
//!   and the batch methods' default bodies delegate to them row by row.
//!   The contract is **bit-identity** — a native batched override must
//!   produce exactly the per-frame loop's output (regression- and
//!   property-tested for all three backends).
//! * When do the defaults suffice? When the backend's per-frame cost is
//!   dominated by real work (e.g. an ISTA solve). Backends whose encode
//!   is one matvec ([`crate::AsymmetricAutoencoder`], `Dcsnet`, the
//!   classical `Φ` stack) override the batch methods with one blocked
//!   GEMM over the whole round.
//! * Buffer-reuse idiom: hold one `codes`/`recon` `Matrix` per loop (or
//!   experiment) and pass `&mut` per round — allocation happens on the
//!   first round only.
//!
//! ```
//! use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};
//! use orco_datasets::DatasetKind;
//! use orco_tensor::Matrix;
//!
//! let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
//! let mut codec = AsymmetricAutoencoder::new(&cfg)?;
//! let frames = Matrix::zeros(64, 784);
//! let mut codes = Matrix::zeros(0, 0); // reused across rounds
//! codec.encode_batch(frames.as_view(), &mut codes)?;
//! assert_eq!(codes.shape(), (64, 16));
//! # Ok::<(), orcodcs::OrcoError>(())
//! ```
//!
//! [`train`]: Codec::train
//! [`encode_batch`]: Codec::encode_batch
//! [`decode_batch`]: Codec::decode_batch
//! [`frame_dims`]: Codec::frame_dims
//! [`bytes_per_frame`]: Codec::bytes_per_frame
//! [`name`]: Codec::name
//! [`split_model`]: Codec::split_model
//! [`checkpoint`]: Codec::checkpoint

use orco_nn::Loss;
use orco_tensor::{MatView, Matrix, OrcoRng};

use crate::autoencoder::AsymmetricAutoencoder;
use crate::checkpoint::EncoderCheckpoint;
use crate::error::OrcoError;
use crate::online_trainer::{RoundStats, TrainingHistory};
use crate::split::SplitModel;

/// Hyperparameters for one native (local/offline) training run of a
/// [`Codec`]. The codec supplies its own loss and model structure; the
/// spec controls only how the data is streamed through it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSpec {
    /// Passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for batch shuffling (and data subsetting, if any).
    pub seed: u64,
    /// Fraction of the data the codec may see, in `(0, 1]` — the paper's
    /// DCSNet-30/50/70% settings.
    pub data_fraction: f32,
}

impl TrainSpec {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), OrcoError> {
        if self.batch_size == 0 {
            return Err(OrcoError::Config {
                detail: "TrainSpec: batch_size must be non-zero".into(),
            });
        }
        if !(self.data_fraction > 0.0 && self.data_fraction <= 1.0) {
            return Err(OrcoError::Config {
                detail: "TrainSpec: data_fraction must be in (0, 1]".into(),
            });
        }
        Ok(())
    }
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, seed: 0, data_fraction: 1.0 }
    }
}

/// Selects a random `fraction` of a design matrix's rows — the matrix-level
/// twin of `orco_datasets::split::fraction`, drawing the same index sample
/// from the given RNG. At least one row is always kept, so tiny datasets
/// with small fractions degrade to a 1-sample subset instead of panicking
/// mid-experiment.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or `x` has no rows.
#[must_use]
pub fn fraction_rows(x: &Matrix, fraction: f32, rng: &mut OrcoRng) -> Matrix {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
    assert!(x.rows() > 0, "fraction_rows: empty input");
    if fraction >= 1.0 {
        return x.clone();
    }
    let k = ((x.rows() as f32) * fraction).round() as usize;
    let idx = rng.sample_indices(x.rows(), k.clamp(1, x.rows()));
    x.select_rows(&idx)
}

/// The shared native-training loop of batch-trained codecs: `epochs`
/// shuffled passes over `x` in `batch_size` chunks, one `step` call per
/// mini-batch returning that batch's loss. Produces the same per-round
/// records as orchestrated training, with the simulated-deployment fields
/// zeroed (no network is involved).
///
/// Codecs keep their own fraction-subsetting and RNG-label policies and
/// delegate the loop here, so divergence checks and round bookkeeping
/// cannot drift between backends.
///
/// # Errors
///
/// Returns [`OrcoError::Config`] on an empty `x` and
/// [`OrcoError::Diverged`] when a step reports a non-finite loss.
pub fn shuffled_batch_train(
    x: &Matrix,
    epochs: usize,
    batch_size: usize,
    rng: &mut OrcoRng,
    mut step: impl FnMut(&Matrix) -> f32,
) -> Result<TrainingHistory, OrcoError> {
    if x.rows() == 0 {
        return Err(OrcoError::Config { detail: "training set is empty".into() });
    }
    let n = x.rows();
    let bs = batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = TrainingHistory::default();
    let mut round = 0usize;
    for epoch in 0..epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(bs) {
            let xb = x.select_rows(chunk);
            let value = step(&xb);
            if !value.is_finite() {
                return Err(OrcoError::Diverged { round });
            }
            history.rounds.push(RoundStats {
                round,
                epoch,
                loss: value,
                sim_time_s: 0.0,
                uplink_bytes: 0,
                energy_j: 0.0,
                link: orco_wsn::LinkStats::default(),
            });
            round += 1;
        }
    }
    Ok(history)
}

/// The two per-frame widths of a codec's data plane, used to validate a
/// whole batch once with typed errors instead of per-frame panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDims {
    /// Flattened sensing-frame length `N` (one reading per IoT device).
    pub input: usize,
    /// Encoded code length `M` in f32 elements.
    pub code: usize,
}

impl FrameDims {
    /// Checks that a batch of raw frames is `input` wide.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] naming the offending codec.
    pub fn check_frames(&self, codec: &'static str, frames: MatView<'_>) -> Result<(), OrcoError> {
        if frames.cols() != self.input {
            return Err(OrcoError::Shape {
                codec,
                what: "frame",
                expected: self.input,
                actual: frames.cols(),
            });
        }
        Ok(())
    }

    /// Checks that a batch of encoded codes is `code` wide.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] naming the offending codec.
    pub fn check_codes(&self, codec: &'static str, codes: MatView<'_>) -> Result<(), OrcoError> {
        if codes.cols() != self.code {
            return Err(OrcoError::Shape {
                codec,
                what: "code",
                expected: self.code,
                actual: codes.cols(),
            });
        }
        Ok(())
    }
}

/// A compression backend runnable by the experiment pipeline.
///
/// Object-safe: experiments, figures, and tests hold `Box<dyn Codec>` and
/// never know which backend they drive. The batch methods are the data
/// plane proper; the per-frame methods are the compatibility/default
/// layer (see the [module docs](self) for the migration guide and the
/// bit-identity contract between the two).
pub trait Codec: std::fmt::Debug + Send {
    /// Short backend label for reports and tables (e.g. `"OrcoDCS"`).
    fn name(&self) -> &'static str;

    /// Flattened frame length `N` (one reading per IoT device).
    fn input_dim(&self) -> usize;

    /// Bytes of one encoded frame on the wire — the steady-state
    /// data-plane cost per frame, and the basis of the paper's Figure 3.
    fn bytes_per_frame(&self) -> u64;

    /// Number of f32 elements in one encoded frame.
    fn code_len(&self) -> usize {
        (self.bytes_per_frame() / 4) as usize
    }

    /// Both data-plane widths as one value, so batch entry points
    /// validate a whole round in one check.
    fn frame_dims(&self) -> FrameDims {
        FrameDims { input: self.input_dim(), code: self.code_len() }
    }

    /// Trains the codec natively (locally / offline) on a design matrix.
    /// Training-free codecs (classical CS) return an empty history.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on an invalid spec and
    /// [`OrcoError::Diverged`] on non-finite losses.
    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError>;

    /// Encodes one frame of readings into its on-air code (`code_len()`
    /// values). Per-frame compatibility layer — hot paths should call
    /// [`Codec::encode_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] when the frame is not `input_dim()`
    /// long.
    fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError>;

    /// Decodes one code back into a frame reconstruction (`input_dim()`
    /// values). Per-frame compatibility layer — hot paths should call
    /// [`Codec::decode_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] when the code is not `code_len()`
    /// long.
    fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError>;

    /// Encodes a round of frames (one per row) into `out`, which is
    /// reshaped to `frames.rows() × code_len()` reusing its allocation.
    ///
    /// The default delegates to [`Codec::encode_frame`] row by row;
    /// native overrides must be **bit-identical** to that loop. Shape
    /// validation happens once here, not per frame.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] when `frames` is not `input_dim()`
    /// wide.
    fn encode_batch(&mut self, frames: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        let dims = self.frame_dims();
        dims.check_frames(self.name(), frames)?;
        out.reset(frames.rows(), dims.code);
        for r in 0..frames.rows() {
            let code = self.encode_frame(frames.row(r))?;
            if code.len() != dims.code {
                return Err(OrcoError::Shape {
                    codec: self.name(),
                    what: "code",
                    expected: dims.code,
                    actual: code.len(),
                });
            }
            out.row_mut(r).copy_from_slice(&code);
        }
        Ok(())
    }

    /// Decodes a round of codes (one per row) into `out`, which is
    /// reshaped to `codes.rows() × input_dim()` reusing its allocation.
    ///
    /// The default delegates to [`Codec::decode_frame`] row by row;
    /// native overrides must be **bit-identical** to that loop.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Shape`] when `codes` is not `code_len()`
    /// wide.
    fn decode_batch(&mut self, codes: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        let dims = self.frame_dims();
        dims.check_codes(self.name(), codes)?;
        out.reset(codes.rows(), dims.input);
        for r in 0..codes.rows() {
            let frame = self.decode_frame(codes.row(r))?;
            if frame.len() != dims.input {
                return Err(OrcoError::Shape {
                    codec: self.name(),
                    what: "frame",
                    expected: dims.input,
                    actual: frame.len(),
                });
            }
            out.row_mut(r).copy_from_slice(&frame);
        }
        Ok(())
    }

    /// The codec's native reconstruction loss (used for reporting and the
    /// fine-tuning monitor; also the loss the orchestrated protocol trains
    /// with when [`Codec::split_model`] is available).
    fn loss(&self) -> Loss {
        Loss::L2
    }

    /// Batch reconstruction: one [`Codec::encode_batch`] +
    /// [`Codec::decode_batch`] round trip over every row. Callers that
    /// reconstruct repeatedly should drive the batch methods directly
    /// with their own reused buffers.
    ///
    /// # Errors
    ///
    /// Propagates batch-boundary shape errors.
    fn reconstruct(&mut self, x: &Matrix) -> Result<Matrix, OrcoError> {
        let mut codes = Matrix::zeros(0, 0);
        self.encode_batch(x.as_view(), &mut codes)?;
        let mut out = Matrix::zeros(0, 0);
        self.decode_batch(codes.as_view(), &mut out)?;
        Ok(out)
    }

    /// The codec's split (aggregator/edge) training half, when it can be
    /// trained through the IoT-Edge orchestrated protocol of §III-B.
    /// `None` for training-free or cloud-only backends.
    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        None
    }

    /// A persistable snapshot of the codec's distributable (device-side)
    /// parameters, when it has any.
    fn checkpoint(&self) -> Option<EncoderCheckpoint> {
        None
    }

    /// Builds a new codec instance that is this codec with `checkpoint`'s
    /// encoder installed — the staging hook of a live rollout: the serving
    /// layer derives the next model version from the active one without
    /// knowing the backend's construction recipe, and the decoder (and any
    /// other state) carries over exactly so the two versions differ only
    /// in the distributed encoder.
    ///
    /// # Errors
    ///
    /// The default refuses ([`OrcoError::Config`]) — training-free or
    /// cloud-only backends have no swappable encoder. Backends that
    /// support hot swap return [`OrcoError::Config`] on a geometry
    /// mismatch between the checkpoint and this codec.
    fn with_encoder(&self, checkpoint: &EncoderCheckpoint) -> Result<Box<dyn Codec>, OrcoError> {
        let _ = checkpoint;
        Err(OrcoError::Config {
            detail: format!("codec {} does not support encoder hot-swap", self.name()),
        })
    }
}

impl Codec for AsymmetricAutoencoder {
    fn name(&self) -> &'static str {
        "OrcoDCS"
    }

    fn input_dim(&self) -> usize {
        AsymmetricAutoencoder::input_dim(self)
    }

    fn bytes_per_frame(&self) -> u64 {
        (self.latent_dim() * 4) as u64
    }

    fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
        spec.validate()?;
        if x.rows() == 0 {
            return Err(OrcoError::Config { detail: "training set is empty".into() });
        }
        let x_frac;
        let x = if spec.data_fraction < 1.0 {
            let mut frng = OrcoRng::from_label("orcodcs-codec-fraction", spec.seed);
            x_frac = fraction_rows(x, spec.data_fraction, &mut frng);
            &x_frac
        } else {
            x
        };
        let loss = self.training_loss();
        // The batching label predates this trait (the figure harness's
        // local trainer); it is kept so seeded runs reproduce earlier
        // releases bit-for-bit.
        let mut rng = OrcoRng::from_label("bench-local-batching", spec.seed);
        shuffled_batch_train(x, spec.epochs, spec.batch_size, &mut rng, |xb| {
            self.train_batch_local(xb, &loss)
        })
    }

    fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), MatView::from_row(frame))?;
        Ok(self.encode(&Matrix::row_vector(frame)).into_vec())
    }

    fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), MatView::from_row(code))?;
        Ok(self.decode(&Matrix::row_vector(code)).into_vec())
    }

    fn encode_batch(&mut self, frames: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_frames(Codec::name(self), frames)?;
        self.encode_batch_into(frames, out);
        Ok(())
    }

    fn decode_batch(&mut self, codes: MatView<'_>, out: &mut Matrix) -> Result<(), OrcoError> {
        Codec::frame_dims(self).check_codes(Codec::name(self), codes)?;
        self.decode_batch_into(codes, out);
        Ok(())
    }

    fn loss(&self) -> Loss {
        self.training_loss()
    }

    fn split_model(&mut self) -> Option<&mut dyn SplitModel> {
        Some(self)
    }

    fn checkpoint(&self) -> Option<EncoderCheckpoint> {
        Some(EncoderCheckpoint::capture(self, Codec::name(self)))
    }

    fn with_encoder(&self, checkpoint: &EncoderCheckpoint) -> Result<Box<dyn Codec>, OrcoError> {
        let mut next = self.clone();
        checkpoint.restore(&mut next)?;
        Ok(Box::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OrcoConfig;
    use orco_datasets::{mnist_like, DatasetKind};

    fn tiny_codec() -> AsymmetricAutoencoder {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike)
            .with_latent_dim(16)
            .with_learning_rate(0.1);
        AsymmetricAutoencoder::new(&cfg).unwrap()
    }

    #[test]
    fn codec_is_object_safe_and_roundtrips_shapes() {
        let mut boxed: Box<dyn Codec> = Box::new(tiny_codec());
        assert_eq!(boxed.name(), "OrcoDCS");
        assert_eq!(boxed.input_dim(), 784);
        assert_eq!(boxed.code_len(), 16);
        assert_eq!(boxed.bytes_per_frame(), 64);
        assert_eq!(boxed.frame_dims(), FrameDims { input: 784, code: 16 });
        let frame = vec![0.5f32; 784];
        let code = boxed.encode_frame(&frame).expect("frame width is valid");
        assert_eq!(code.len(), 16);
        let recon = boxed.decode_frame(&code).expect("code width is valid");
        assert_eq!(recon.len(), 784);
    }

    #[test]
    fn shape_violations_surface_as_typed_errors() {
        let mut codec = tiny_codec();
        let err = codec.encode_frame(&[0.0; 3]).unwrap_err();
        assert!(
            matches!(
                err,
                OrcoError::Shape { codec: "OrcoDCS", what: "frame", expected: 784, actual: 3 }
            ),
            "unexpected error: {err}"
        );
        let err = codec.decode_frame(&[0.0; 3]).unwrap_err();
        assert!(matches!(err, OrcoError::Shape { what: "code", expected: 16, .. }));
        // Batch-boundary validation: one typed error for the whole round.
        let mut out = Matrix::zeros(0, 0);
        let bad = Matrix::zeros(5, 42);
        let err = codec.encode_batch(bad.as_view(), &mut out).unwrap_err();
        assert!(matches!(err, OrcoError::Shape { what: "frame", expected: 784, actual: 42, .. }));
        let err = codec.decode_batch(bad.as_view(), &mut out).unwrap_err();
        assert!(matches!(err, OrcoError::Shape { what: "code", expected: 16, actual: 42, .. }));
    }

    /// A codec that implements only the per-frame compatibility layer, so
    /// every batch method runs its default body. Used to pin the
    /// bit-identity contract between defaults and native overrides.
    #[derive(Debug)]
    struct PerFrameOnly(AsymmetricAutoencoder);
    impl Codec for PerFrameOnly {
        fn name(&self) -> &'static str {
            Codec::name(&self.0)
        }
        fn input_dim(&self) -> usize {
            Codec::input_dim(&self.0)
        }
        fn bytes_per_frame(&self) -> u64 {
            Codec::bytes_per_frame(&self.0)
        }
        fn train(&mut self, x: &Matrix, spec: &TrainSpec) -> Result<TrainingHistory, OrcoError> {
            self.0.train(x, spec)
        }
        fn encode_frame(&mut self, frame: &[f32]) -> Result<Vec<f32>, OrcoError> {
            self.0.encode_frame(frame)
        }
        fn decode_frame(&mut self, code: &[f32]) -> Result<Vec<f32>, OrcoError> {
            self.0.decode_frame(code)
        }
    }

    #[test]
    fn per_frame_defaults_bit_identical_to_native_batch() {
        let ds = mnist_like::generate(4, 0);
        let mut wrapped = PerFrameOnly(tiny_codec());
        let via_default = wrapped.reconstruct(ds.x()).unwrap();
        let mut ae = tiny_codec();
        let via_batch = Codec::reconstruct(&mut ae, ds.x()).unwrap();
        assert_eq!(via_default, via_batch, "defaults and native batch path must agree bit for bit");

        // And the batch stages individually, into dirty reused buffers.
        let mut codes_default = Matrix::filled(1, 1, f32::NAN);
        let mut codes_native = Matrix::filled(2, 3, -7.0);
        wrapped.encode_batch(ds.x().as_view(), &mut codes_default).unwrap();
        ae.encode_batch(ds.x().as_view(), &mut codes_native).unwrap();
        assert_eq!(codes_default, codes_native);
    }

    #[test]
    fn native_training_learns_and_records_rounds() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(32, 0);
        let spec = TrainSpec { epochs: 4, batch_size: 16, seed: 0, data_fraction: 1.0 };
        let history = codec.train(ds.x(), &spec).unwrap();
        assert_eq!(history.rounds.len(), 8);
        assert_eq!(history.epoch_losses().len(), 4);
        let first = history.rounds.first().unwrap().loss;
        let last = history.final_loss().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn data_fraction_limits_training_rounds() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(32, 1);
        let spec = TrainSpec { epochs: 1, batch_size: 8, seed: 0, data_fraction: 0.5 };
        let history = codec.train(ds.x(), &spec).unwrap();
        assert_eq!(history.rounds.len(), 2, "16 samples in 8-batches");
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut codec = tiny_codec();
        let ds = mnist_like::generate(4, 2);
        let bad = TrainSpec { batch_size: 0, ..TrainSpec::default() };
        assert!(codec.train(ds.x(), &bad).is_err());
        let bad = TrainSpec { data_fraction: 0.0, ..TrainSpec::default() };
        assert!(codec.train(ds.x(), &bad).is_err());
    }

    #[test]
    fn fraction_rows_matches_dataset_split() {
        // Same RNG stream → fraction_rows picks the same rows as
        // orco_datasets::split::fraction.
        let ds = mnist_like::generate(20, 3);
        let mut a = OrcoRng::from_label("frac-eq", 0);
        let mut b = OrcoRng::from_label("frac-eq", 0);
        let via_matrix = fraction_rows(ds.x(), 0.4, &mut a);
        let via_dataset = orco_datasets::split::fraction(&ds, 0.4, &mut b);
        assert_eq!(&via_matrix, via_dataset.x());
    }

    #[test]
    fn checkpoint_hook_captures_encoder() {
        let codec = tiny_codec();
        let ckpt = Codec::checkpoint(&codec).expect("AE has a distributable encoder");
        assert_eq!(ckpt.weight.shape(), (16, 784));
        assert_eq!(ckpt.label, "OrcoDCS");
    }

    #[test]
    fn with_encoder_stages_a_hot_swap_copy() {
        let ds = mnist_like::generate(4, 7);
        // Train a source codec, checkpoint it, and stage its encoder onto
        // an untrained copy of the same geometry.
        let mut trained = tiny_codec();
        let spec = TrainSpec { epochs: 2, batch_size: 4, seed: 0, data_fraction: 1.0 };
        let ds_train = mnist_like::generate(16, 8);
        trained.train(ds_train.x(), &spec).unwrap();
        let ckpt = Codec::checkpoint(&trained).unwrap();

        let mut base: Box<dyn Codec> = Box::new(tiny_codec());
        let mut staged = base.with_encoder(&ckpt).unwrap();
        // The staged codec encodes with the trained encoder...
        let mut codes_staged = Matrix::zeros(0, 0);
        staged.encode_batch(ds.x().as_view(), &mut codes_staged).unwrap();
        let mut codes_trained = Matrix::zeros(0, 0);
        trained.encode_batch(ds.x().as_view(), &mut codes_trained).unwrap();
        assert_eq!(codes_staged, codes_trained);
        // ...while the base codec is untouched (encodes differently).
        let mut codes_base = Matrix::zeros(0, 0);
        base.encode_batch(ds.x().as_view(), &mut codes_base).unwrap();
        assert_ne!(codes_base, codes_staged);
        // Decoder state carries over: same codes decode identically.
        let mut dec_staged = Matrix::zeros(0, 0);
        staged.decode_batch(codes_staged.as_view(), &mut dec_staged).unwrap();
        let mut dec_base = Matrix::zeros(0, 0);
        base.decode_batch(codes_staged.as_view(), &mut dec_base).unwrap();
        assert_eq!(dec_staged, dec_base, "decoder must carry over bit-identically");
    }

    #[test]
    fn with_encoder_rejects_geometry_mismatch() {
        let cfg = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(8);
        let other = AsymmetricAutoencoder::new(&cfg).unwrap();
        let ckpt = Codec::checkpoint(&other).unwrap(); // latent 8
        let base = tiny_codec(); // latent 16
        assert!(matches!(base.with_encoder(&ckpt), Err(OrcoError::Config { .. })));
    }
}
