//! First-order radio energy model.
//!
//! The standard WSN energy model used throughout the clustering literature
//! the paper cites (\[18\]–\[20\]): transmitting `k` bits over distance `d`
//! costs `E_elec·k + ε_amp·k·d²`, receiving costs `E_elec·k`. The model
//! makes far-from-aggregator nodes more expensive to run — exactly the
//! asymmetry the multi-hop aggregation tree (paper §III-A) exists to
//! mitigate.

/// Radio energy parameters.
///
/// # Examples
///
/// ```
/// use orco_wsn::RadioModel;
///
/// let radio = RadioModel::default();
/// // Receiving is always cheaper than transmitting over any distance.
/// assert!(radio.rx_energy_j(1024) < radio.tx_energy_j(1024, 10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Electronics energy per bit, joules (both TX and RX paths).
    pub e_elec_j_per_bit: f64,
    /// Amplifier energy per bit per m², joules.
    pub eps_amp_j_per_bit_m2: f64,
}

impl Default for RadioModel {
    /// The canonical constants: `E_elec` = 50 nJ/bit,
    /// `ε_amp` = 100 pJ/bit/m².
    fn default() -> Self {
        Self { e_elec_j_per_bit: 50e-9, eps_amp_j_per_bit_m2: 100e-12 }
    }
}

impl RadioModel {
    /// Energy to transmit `bytes` over `distance_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is negative or not finite.
    #[must_use]
    pub fn tx_energy_j(&self, bytes: u64, distance_m: f64) -> f64 {
        assert!(distance_m.is_finite() && distance_m >= 0.0, "tx distance must be ≥ 0");
        let bits = bytes as f64 * 8.0;
        self.e_elec_j_per_bit * bits + self.eps_amp_j_per_bit_m2 * bits * distance_m * distance_m
    }

    /// Energy to receive `bytes`.
    #[must_use]
    pub fn rx_energy_j(&self, bytes: u64) -> f64 {
        self.e_elec_j_per_bit * bytes as f64 * 8.0
    }

    /// Distance beyond which one multi-hop relay through a midpoint is
    /// cheaper than a direct transmission (per-bit).
    ///
    /// Direct: `E + ε·d²`. Two hops of `d/2` plus one receive:
    /// `3E + ε·d²/2`. Break-even at `d = 2·sqrt(E/ε)`.
    #[must_use]
    pub fn multihop_breakeven_m(&self) -> f64 {
        2.0 * (self.e_elec_j_per_bit / self.eps_amp_j_per_bit_m2).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_grows_quadratically_with_distance() {
        let r = RadioModel::default();
        let near = r.tx_energy_j(100, 10.0);
        let far = r.tx_energy_j(100, 20.0);
        // Amplifier term quadruples; total grows but less than 4x because of E_elec.
        assert!(far > near);
        let amp_near = near - r.rx_energy_j(100);
        let amp_far = far - r.rx_energy_j(100);
        assert!((amp_far / amp_near - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let r = RadioModel::default();
        assert_eq!(r.tx_energy_j(0, 100.0), 0.0);
        assert_eq!(r.rx_energy_j(0), 0.0);
    }

    #[test]
    fn known_energy_value() {
        let r = RadioModel::default();
        // 1 byte = 8 bits at d=0: 8 * 50nJ = 400 nJ.
        assert!((r.tx_energy_j(1, 0.0) - 400e-9).abs() < 1e-15);
        assert!((r.rx_energy_j(1) - 400e-9).abs() < 1e-15);
    }

    #[test]
    fn breakeven_is_consistent() {
        let r = RadioModel::default();
        let d = r.multihop_breakeven_m();
        let direct = r.tx_energy_j(1, d);
        let relayed = 2.0 * r.tx_energy_j(1, d / 2.0) + r.rx_energy_j(1);
        assert!((direct - relayed).abs() / direct < 1e-9);
        // With the default constants: 2*sqrt(50n/100p) ≈ 44.7 m.
        assert!((d - 44.72).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn negative_distance_rejected() {
        let _ = RadioModel::default().tx_energy_j(1, -1.0);
    }
}
