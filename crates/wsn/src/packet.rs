//! Packets and protocol message kinds.

use crate::node::NodeId;

/// Fixed per-packet header overhead in bytes (PHY + MAC + NWK headers of an
/// 802.15.4/6LoWPAN-class stack).
pub const HEADER_BYTES: u64 = 21;

/// Maximum payload carried by one radio frame, bytes (802.15.4-class MTU
/// after headers).
pub const MAX_PAYLOAD_BYTES: u64 = 96;

/// What a packet carries — the OrcoDCS protocol message types.
///
/// `Ord` follows declaration order and is load-bearing: the accounting
/// ledger keys its per-kind byte breakdown by it, so reports enumerate
/// kinds in this stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum PacketKind {
    /// Raw sensing data (intra-cluster raw aggregation, paper §III-A).
    RawData,
    /// Latent vectors travelling aggregator → edge during training (§III-B).
    LatentVector,
    /// Reconstructions travelling edge → aggregator during training (§III-B).
    Reconstruction,
    /// Gradient/update messages for the encoder (§III-B training procedure).
    ModelUpdate,
    /// Encoder columns broadcast to IoT devices (§III-C distribution).
    EncoderColumn,
    /// Compressed latent elements hopping device → device → aggregator
    /// (§III-C chain aggregation).
    CompressedElement,
    /// Control/trigger messages (fine-tuning monitor, §III-D).
    Control,
}

/// One logical transmission (may span many radio frames).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes, excluding headers.
    pub payload_bytes: u64,
    /// Message type.
    pub kind: PacketKind,
}

impl Packet {
    /// Creates a packet description.
    #[must_use]
    pub fn new(src: NodeId, dst: NodeId, payload_bytes: u64, kind: PacketKind) -> Self {
        Self { src, dst, payload_bytes, kind }
    }

    /// Number of radio frames needed to carry the payload.
    #[must_use]
    pub fn frame_count(&self) -> u64 {
        if self.payload_bytes == 0 {
            1 // control frame
        } else {
            self.payload_bytes.div_ceil(MAX_PAYLOAD_BYTES)
        }
    }

    /// Total bytes on air including per-frame headers.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        self.payload_bytes + self.frame_count() * HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payload_is_one_frame() {
        let p = Packet::new(NodeId(0), NodeId(1), 50, PacketKind::RawData);
        assert_eq!(p.frame_count(), 1);
        assert_eq!(p.wire_bytes(), 50 + HEADER_BYTES);
    }

    #[test]
    fn large_payload_fragments() {
        let p = Packet::new(NodeId(0), NodeId(1), 96 * 3 + 1, PacketKind::LatentVector);
        assert_eq!(p.frame_count(), 4);
        assert_eq!(p.wire_bytes(), 289 + 4 * HEADER_BYTES);
    }

    #[test]
    fn empty_payload_still_costs_a_header() {
        let p = Packet::new(NodeId(0), NodeId(1), 0, PacketKind::Control);
        assert_eq!(p.frame_count(), 1);
        assert_eq!(p.wire_bytes(), HEADER_BYTES);
    }

    #[test]
    fn exact_multiple_does_not_over_fragment() {
        let p = Packet::new(NodeId(0), NodeId(1), 96 * 2, PacketKind::RawData);
        assert_eq!(p.frame_count(), 2);
    }
}
