//! The network façade: nodes + links + clock + accounting in one place.
//!
//! A [`Network`] owns the whole simulated deployment of paper Fig. 1 — `N`
//! IoT devices scattered over a field, one data aggregator at the field
//! centre, one edge server reachable over an uplink — and exposes the three
//! traffic primitives the OrcoDCS protocol is written in terms of:
//!
//! 1. [`Network::raw_aggregation_round`] — multi-hop tree aggregation of raw
//!    sensing data (paper §III-A);
//! 2. [`Network::broadcast_encoder_columns`] — one-round distribution of
//!    per-device encoder columns (§III-C);
//! 3. [`Network::compressed_aggregation_round`] — chain aggregation of
//!    latent partial sums (§III-C).
//!
//! plus point-to-point [`Network::transmit`] (aggregator ⇄ edge training
//! traffic) and [`Network::compute`] (simulated FLOP execution). Every call
//! advances the [`SimClock`], drains node batteries and lands in the
//! [`TrafficAccounting`] ledger.

use orco_tensor::OrcoRng;

use crate::accounting::TrafficAccounting;
use crate::chain::ChainSchedule;
use crate::clock::SimClock;
use crate::compute::ComputeModel;
use crate::error::WsnError;
use crate::geometry::{scatter_uniform, Point};
use crate::link::LinkModel;
use crate::node::{DeviceClass, Node, NodeId};
use crate::packet::{Packet, PacketKind};
use crate::radio::RadioModel;
use crate::tree::AggregationTree;

/// Deployment and channel configuration.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of IoT devices in the cluster.
    pub num_devices: usize,
    /// Side length of the square deployment field, meters.
    pub field_side_m: f64,
    /// Seed for node placement and loss draws.
    pub seed: u64,
    /// Radio energy model for intra-cluster hops.
    pub radio: RadioModel,
    /// Intra-cluster device↔device/aggregator link.
    pub sensor_link: LinkModel,
    /// Aggregator→edge uplink.
    pub uplink: LinkModel,
    /// Edge→aggregator downlink.
    pub downlink: LinkModel,
    /// FLOPS rates per device class.
    pub compute: ComputeModel,
    /// Per-packet retransmission budget on lossy links.
    pub max_retries: u32,
    /// Multiplier on every node's initial battery (1.0 = the device-class
    /// defaults; raise for long experiments that would otherwise be cut
    /// short by battery death rather than the phenomenon under study).
    pub battery_scale: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            num_devices: 64,
            field_side_m: 100.0,
            seed: 0,
            radio: RadioModel::default(),
            sensor_link: LinkModel::sensor_radio(),
            uplink: LinkModel::aggregator_uplink(),
            downlink: LinkModel::edge_downlink(),
            compute: ComputeModel::default(),
            max_retries: 7,
            battery_scale: 1.0,
        }
    }
}

/// The simulated deployment.
///
/// # Examples
///
/// ```
/// use orco_wsn::{Network, NetworkConfig};
///
/// let mut net = Network::new(NetworkConfig { num_devices: 8, ..Default::default() });
/// let t = net.raw_aggregation_round(4)?; // every device reports 4 raw bytes
/// assert!(t > 0.0);
/// assert!(net.accounting().total_tx_bytes() > 0);
/// # Ok::<(), orco_wsn::WsnError>(())
/// ```
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    nodes: Vec<Node>,
    aggregator: NodeId,
    edge: NodeId,
    devices: Vec<NodeId>,
    tree: AggregationTree,
    chain: ChainSchedule,
    clock: SimClock,
    accounting: TrafficAccounting,
    rng: OrcoRng,
}

impl Network {
    /// Builds a deployment: devices scattered uniformly, the aggregator at
    /// the field centre, the edge server off-field.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_devices == 0`.
    #[must_use]
    pub fn new(config: NetworkConfig) -> Self {
        assert!(config.num_devices > 0, "Network: need at least one device");
        let mut rng = OrcoRng::from_label("wsn-network", config.seed);
        let device_positions = scatter_uniform(config.num_devices, config.field_side_m, &mut rng);

        let mut nodes = Vec::with_capacity(config.num_devices + 2);
        let mut devices = Vec::with_capacity(config.num_devices);
        assert!(config.battery_scale > 0.0, "Network: battery_scale must be positive");
        for (i, p) in device_positions.iter().enumerate() {
            let id = NodeId(i);
            let mut node = Node::new(id, DeviceClass::IotDevice, *p);
            node.revive(DeviceClass::IotDevice.initial_energy_j() * config.battery_scale);
            nodes.push(node);
            devices.push(id);
        }
        let aggregator = NodeId(config.num_devices);
        let centre = Point::new(config.field_side_m / 2.0, config.field_side_m / 2.0);
        nodes.push(Node::new(aggregator, DeviceClass::DataAggregator, centre));
        let edge = NodeId(config.num_devices + 1);
        // The edge server sits outside the sensor field; its link is modelled
        // by bandwidth/latency, not by radio distance.
        let edge_pos = Point::new(config.field_side_m * 2.0, config.field_side_m / 2.0);
        nodes.push(Node::new(edge, DeviceClass::EdgeServer, edge_pos));

        let mut tree_nodes: Vec<(NodeId, Point)> =
            devices.iter().map(|id| (*id, nodes[id.0].position())).collect();
        tree_nodes.push((aggregator, centre));
        let tree = AggregationTree::build(aggregator, &tree_nodes)
            .expect("freshly built topology is valid");
        let chain_devices: Vec<(NodeId, Point)> =
            devices.iter().map(|id| (*id, nodes[id.0].position())).collect();
        let chain = ChainSchedule::greedy_nearest(&chain_devices, centre);

        Self {
            config,
            nodes,
            aggregator,
            edge,
            devices,
            tree,
            chain,
            clock: SimClock::new(),
            accounting: TrafficAccounting::new(),
            rng,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Ids of the IoT devices.
    #[must_use]
    pub fn devices(&self) -> &[NodeId] {
        &self.devices
    }

    /// The data aggregator's id.
    #[must_use]
    pub fn aggregator(&self) -> NodeId {
        self.aggregator
    }

    /// The edge server's id.
    #[must_use]
    pub fn edge(&self) -> NodeId {
        self.edge
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// The traffic ledger.
    #[must_use]
    pub fn accounting(&self) -> &TrafficAccounting {
        &self.accounting
    }

    /// Clears the traffic ledger (keeps the clock and batteries).
    pub fn reset_accounting(&mut self) {
        self.accounting.reset();
    }

    /// Advances the simulated clock by `dt_s` seconds without any traffic —
    /// models waiting on an external shared resource (e.g. a busy edge
    /// server in a multi-cluster deployment).
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or not finite.
    pub fn wait(&mut self, dt_s: f64) {
        self.clock.advance(dt_s);
    }

    /// The node with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, WsnError> {
        self.nodes.get(id.0).ok_or(WsnError::UnknownNode { id })
    }

    /// The current aggregation tree.
    #[must_use]
    pub fn tree(&self) -> &AggregationTree {
        &self.tree
    }

    /// The current chain schedule.
    #[must_use]
    pub fn chain(&self) -> &ChainSchedule {
        &self.chain
    }

    /// Alive IoT devices (order of `devices()`).
    #[must_use]
    pub fn alive_devices(&self) -> Vec<NodeId> {
        self.devices.iter().copied().filter(|id| self.nodes[id.0].is_alive()).collect()
    }

    // ------------------------------------------------------------------
    // Failure injection
    // ------------------------------------------------------------------

    /// Kills a device and repairs the aggregation structures around it.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for non-device ids.
    pub fn kill_device(&mut self, id: NodeId) -> Result<(), WsnError> {
        if !self.devices.contains(&id) {
            return Err(WsnError::UnknownNode { id });
        }
        self.nodes[id.0].kill();
        self.tree.remove_and_reparent(id)?;
        self.chain.remove(id);
        Ok(())
    }

    /// Revives a previously dead device with the given battery budget and
    /// rebuilds the aggregation tree and chain over the now-alive devices
    /// (scenario-scripted recovery in the event-driven backend).
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for non-device ids.
    pub fn revive_device(&mut self, id: NodeId, energy_j: f64) -> Result<(), WsnError> {
        if !self.devices.contains(&id) {
            return Err(WsnError::UnknownNode { id });
        }
        self.nodes[id.0].revive(energy_j);
        self.rebuild_routes();
        Ok(())
    }

    /// Rebuilds the aggregation tree and chain schedule from the currently
    /// alive devices (deterministic for a given alive set).
    fn rebuild_routes(&mut self) {
        let centre = self.nodes[self.aggregator.0].position();
        let alive: Vec<(NodeId, Point)> = self
            .devices
            .iter()
            .filter(|id| self.nodes[id.0].is_alive())
            .map(|id| (*id, self.nodes[id.0].position()))
            .collect();
        if alive.is_empty() {
            return;
        }
        let mut tree_nodes = alive.clone();
        tree_nodes.push((self.aggregator, centre));
        self.tree =
            AggregationTree::build(self.aggregator, &tree_nodes).expect("alive topology is valid");
        self.chain = ChainSchedule::greedy_nearest(&alive, centre);
    }

    // ------------------------------------------------------------------
    // Deployment-backend hooks
    //
    // The `orco-sim` event-driven backend reuses this struct as its world
    // state — topology, batteries, ledger, global clock — while scheduling
    // time itself. These hooks expose exactly the cost-model operations
    // `transmit`/`compute` are built from, with identical formulas, so a
    // contention-free event-driven schedule reproduces the analytic byte
    // and energy totals bit for bit.
    // ------------------------------------------------------------------

    /// The link model governing a `from → to` transmission (sensor radio,
    /// uplink, or downlink).
    #[must_use]
    pub fn link_between(&self, from: NodeId, to: NodeId) -> LinkModel {
        self.link_for(from, to)
    }

    /// Radio distance for the energy model: the geometric distance for
    /// intra-cluster hops, 0 for the wired/cellular edge links.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for out-of-range ids.
    pub fn radio_distance_m(&self, from: NodeId, to: NodeId) -> Result<f64, WsnError> {
        let a = self.node(from)?.position();
        let b = self.node(to)?.position();
        Ok(if from == self.edge || to == self.edge { 0.0 } else { a.distance(b) })
    }

    /// Charges one transmission attempt of `wire_bytes` to `from`: drains
    /// tx energy over `distance_m` and records the traffic. Returns whether
    /// the sender survived the drain (`false` ⇒ it just died).
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for out-of-range ids.
    pub fn charge_tx(
        &mut self,
        from: NodeId,
        wire_bytes: u64,
        distance_m: f64,
        kind: PacketKind,
    ) -> Result<bool, WsnError> {
        self.node(from)?;
        let tx_energy = self.config.radio.tx_energy_j(wire_bytes, distance_m);
        let survived = self.nodes[from.0].drain(tx_energy);
        self.accounting.record_tx(from, wire_bytes, tx_energy, kind);
        Ok(survived)
    }

    /// Charges one reception of `wire_bytes` to `to` and records the
    /// traffic.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for out-of-range ids.
    pub fn charge_rx(
        &mut self,
        to: NodeId,
        wire_bytes: u64,
        kind: PacketKind,
    ) -> Result<(), WsnError> {
        self.node(to)?;
        let rx_energy = self.config.radio.rx_energy_j(wire_bytes);
        self.nodes[to.0].drain(rx_energy);
        self.accounting.record_rx(to, wire_bytes, rx_energy, kind);
        Ok(())
    }

    /// Charges a compute workload at `at` **without** advancing the global
    /// clock: drains compute energy and returns the elapsed seconds the
    /// caller should schedule. The event-driven backend's twin of
    /// [`Network::compute`].
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] or [`WsnError::NodeDead`].
    pub fn charge_compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        let class = {
            let n = self.node(at)?;
            if !n.is_alive() {
                return Err(WsnError::NodeDead { id: at });
            }
            n.class()
        };
        let dt = self.config.compute.time_for_flops(class, flops);
        let energy = self.config.compute.energy_for_flops(class, flops);
        self.nodes[at.0].drain(energy);
        Ok(dt)
    }

    /// Mutable access to the traffic ledger (the event-driven backend
    /// records deliveries, drops, retransmissions, and airtime directly).
    #[must_use]
    pub fn accounting_mut(&mut self) -> &mut TrafficAccounting {
        &mut self.accounting
    }

    /// Synchronizes the global clock to an absolute event time (never
    /// rewinds; see [`SimClock::advance_to`]).
    pub fn advance_clock_to(&mut self, t_s: f64) {
        self.clock.advance_to(t_s);
    }

    // ------------------------------------------------------------------
    // Primitives
    // ------------------------------------------------------------------

    fn link_for(&self, from: NodeId, to: NodeId) -> LinkModel {
        if from == self.edge || to == self.edge {
            if from == self.edge {
                self.config.downlink
            } else {
                self.config.uplink
            }
        } else {
            self.config.sensor_link
        }
    }

    /// Sends `payload_bytes` of `kind` from `from` to `to`.
    ///
    /// Advances the clock by the link transmission time (per attempt),
    /// drains radio energy on both ends, and records the traffic. Lossy
    /// links retransmit up to `max_retries` times.
    ///
    /// Returns the elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// * [`WsnError::UnknownNode`] / [`WsnError::NodeDead`] for bad endpoints.
    /// * [`WsnError::TransmissionFailed`] when every attempt is lost.
    /// * [`WsnError::EnergyExhausted`] when the sender dies mid-send.
    pub fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError> {
        let (sender_alive, sender_pos) = {
            let n = self.node(from)?;
            (n.is_alive(), n.position())
        };
        let (receiver_alive, receiver_pos) = {
            let n = self.node(to)?;
            (n.is_alive(), n.position())
        };
        if !sender_alive {
            return Err(WsnError::NodeDead { id: from });
        }
        if !receiver_alive {
            return Err(WsnError::NodeDead { id: to });
        }

        let packet = Packet::new(from, to, payload_bytes, kind);
        let wire = packet.wire_bytes();
        let link = self.link_for(from, to);
        let distance = sender_pos.distance(receiver_pos);
        // Edge links are wired/cellular: radio distance does not apply.
        let radio_distance = if from == self.edge || to == self.edge { 0.0 } else { distance };

        let mut elapsed = 0.0;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            elapsed += link.transmission_time_s(wire);
            self.accounting.record_airtime(link.airtime_s(wire));
            let tx_energy = self.config.radio.tx_energy_j(wire, radio_distance);
            let sender = &mut self.nodes[from.0];
            let survived = sender.drain(tx_energy);
            self.accounting.record_tx(from, wire, tx_energy, kind);
            if !survived {
                self.accounting.record_retransmits(u64::from(attempts - 1) * packet.frame_count());
                self.accounting.record_drop();
                self.clock.advance(elapsed);
                return Err(WsnError::EnergyExhausted { id: from });
            }
            // Loss probabilities are natively f64; drawing at full precision
            // keeps e.g. a 1e-9 uplink loss from truncating to a different
            // (f32-rounded) Bernoulli threshold.
            let lost = link.loss_prob > 0.0 && self.rng.bernoulli_f64(link.loss_prob);
            if !lost {
                let rx_energy = self.config.radio.rx_energy_j(wire);
                self.nodes[to.0].drain(rx_energy);
                self.accounting.record_rx(to, wire, rx_energy, kind);
                self.accounting.record_retransmits(u64::from(attempts - 1) * packet.frame_count());
                self.accounting.record_delivery(elapsed);
                self.clock.advance(elapsed);
                return Ok(elapsed);
            }
            if attempts > self.config.max_retries {
                self.accounting.record_retransmits(u64::from(attempts - 1) * packet.frame_count());
                self.accounting.record_drop();
                self.clock.advance(elapsed);
                return Err(WsnError::TransmissionFailed { from, to, attempts });
            }
        }
    }

    /// Executes `flops` at node `at`; advances the clock and drains compute
    /// energy. Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] or [`WsnError::NodeDead`].
    pub fn compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        let dt = self.charge_compute(at, flops)?;
        self.clock.advance(dt);
        Ok(dt)
    }

    // ------------------------------------------------------------------
    // Protocol rounds
    // ------------------------------------------------------------------

    /// One round of intra-cluster **raw** aggregation over the tree: every
    /// alive device contributes `bytes_per_device` raw bytes; interior nodes
    /// forward their own plus all descendants' bytes one hop up.
    ///
    /// Returns elapsed simulated seconds for the whole round.
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    pub fn raw_aggregation_round(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        let start = self.clock.now_s();
        // Accumulated payload (own + descendants) per node. Ordered map
        // for uniformity with the rest of the accounting plane — nothing
        // here iterates it today, but a BTreeMap can never regress into
        // iteration-order nondeterminism when someone does.
        let mut carried: std::collections::BTreeMap<NodeId, u64> =
            std::collections::BTreeMap::new();
        for id in self.alive_devices() {
            carried.insert(id, bytes_per_device);
        }
        for id in self.tree.bottom_up_order() {
            if !self.nodes[id.0].is_alive() {
                continue;
            }
            let payload = carried.get(&id).copied().unwrap_or(0);
            if payload == 0 {
                continue;
            }
            let parent = self.tree.parent(id).expect("non-root nodes have parents");
            self.transmit(id, parent, payload, PacketKind::RawData)?;
            if parent != self.aggregator {
                *carried.entry(parent).or_insert(0) += payload;
            }
        }
        Ok(self.clock.now_s() - start)
    }

    /// Distributes per-device encoder columns from the aggregator (paper
    /// §III-C: "a single round of broadcast"): one transmission of
    /// `column_bytes` to every alive device.
    ///
    /// Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    pub fn broadcast_encoder_columns(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        let start = self.clock.now_s();
        for id in self.alive_devices() {
            self.transmit(self.aggregator, id, column_bytes, PacketKind::EncoderColumn)?;
        }
        Ok(self.clock.now_s() - start)
    }

    /// One round of **compressed** aggregation along the chain: every hop
    /// carries the fixed-size latent partial sum (`latent_bytes`), ending at
    /// the aggregator.
    ///
    /// Each device also spends `flops_per_device` computing its encoder
    /// column contribution.
    ///
    /// Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    pub fn compressed_aggregation_round(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        let start = self.clock.now_s();
        let hops = self.chain.device_hops();
        let order: Vec<NodeId> = self.chain.order().to_vec();
        for id in &order {
            if self.nodes[id.0].is_alive() {
                self.compute(*id, flops_per_device)?;
            }
        }
        for (from, to) in hops {
            if self.nodes[from.0].is_alive() && self.nodes[to.0].is_alive() {
                self.transmit(from, to, latent_bytes, PacketKind::CompressedElement)?;
            }
        }
        let last = self.chain.last();
        if self.nodes[last.0].is_alive() {
            self.transmit(last, self.aggregator, latent_bytes, PacketKind::CompressedElement)?;
        }
        Ok(self.clock.now_s() - start)
    }

    /// One round of **hybrid** compressed aggregation (ref \[1\] of the
    /// paper): early chain positions forward raw readings while that is
    /// smaller than the latent partial sum, switching to CS mode at the
    /// crossover. Hop `i` (0-based) carries
    /// `min((i+1)·reading_bytes, latent_bytes)`.
    ///
    /// Returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    pub fn hybrid_aggregation_round(
        &mut self,
        latent_bytes: u64,
        reading_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        let start = self.clock.now_s();
        let order: Vec<NodeId> = self.chain.order().to_vec();
        for id in &order {
            if self.nodes[id.0].is_alive() {
                self.compute(*id, flops_per_device)?;
            }
        }
        let mut accumulated: u64 = 0;
        for (from, to) in self.chain.device_hops() {
            if self.nodes[from.0].is_alive() && self.nodes[to.0].is_alive() {
                accumulated += reading_bytes;
                let payload = accumulated.min(latent_bytes);
                self.transmit(from, to, payload, PacketKind::CompressedElement)?;
            }
        }
        let last = self.chain.last();
        if self.nodes[last.0].is_alive() {
            accumulated += reading_bytes;
            let payload = accumulated.min(latent_bytes);
            self.transmit(last, self.aggregator, payload, PacketKind::CompressedElement)?;
        }
        Ok(self.clock.now_s() - start)
    }

    /// Mean hop count from devices to the aggregator (diagnostics).
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .devices
            .iter()
            .filter(|id| self.tree.contains(**id))
            .map(|id| self.tree.hops_to_root(*id))
            .sum();
        total as f64 / self.devices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net(devices: usize) -> Network {
        Network::new(NetworkConfig { num_devices: devices, seed: 7, ..Default::default() })
    }

    #[test]
    fn construction_places_everyone() {
        let net = small_net(10);
        assert_eq!(net.devices().len(), 10);
        assert_eq!(net.aggregator(), NodeId(10));
        assert_eq!(net.edge(), NodeId(11));
        assert!(net.tree().check_invariants());
        assert_eq!(net.chain().len(), 10);
        assert_eq!(net.now_s(), 0.0);
    }

    #[test]
    fn transmit_advances_clock_and_accounts() {
        let mut net = small_net(4);
        let d = net.devices()[0];
        let t = net.transmit(d, net.aggregator(), 100, PacketKind::RawData).unwrap();
        assert!(t > 0.0);
        assert_eq!(net.now_s(), t);
        assert!(net.accounting().node(d).tx_bytes > 100); // headers included
        assert!(net.accounting().node(net.aggregator()).rx_bytes > 100);
        assert!(net.node(d).unwrap().energy_j() < DeviceClass::IotDevice.initial_energy_j());
    }

    #[test]
    fn uplink_is_faster_per_byte_than_sensor_radio() {
        let mut net = small_net(4);
        let d = net.devices()[0];
        let t_sensor = net.transmit(d, net.aggregator(), 1000, PacketKind::RawData).unwrap();
        let t_uplink =
            net.transmit(net.aggregator(), net.edge(), 1000, PacketKind::LatentVector).unwrap();
        assert!(t_uplink < t_sensor);
    }

    #[test]
    fn raw_aggregation_reaches_aggregator() {
        let mut net = small_net(12);
        let t = net.raw_aggregation_round(4).unwrap();
        assert!(t > 0.0);
        // Aggregator must have received every device's 4 bytes (plus headers).
        let rx = net.accounting().node(net.aggregator()).rx_bytes;
        assert!(rx >= 12 * 4, "aggregator received {rx} bytes");
        // Multi-hop: total transmitted ≥ what the aggregator received.
        assert!(net.accounting().total_tx_bytes() >= rx);
    }

    #[test]
    fn compressed_round_bytes_independent_of_device_count() {
        // Chain aggregation: the aggregator receives exactly one latent
        // payload regardless of N.
        for n in [4usize, 16] {
            let mut net = small_net(n);
            net.compressed_aggregation_round(512, 100).unwrap();
            let rx_payload = net.accounting().node(net.aggregator()).rx_bytes;
            // one hop into the aggregator: 512 payload + headers
            assert!((512..512 + 40 * 21).contains(&rx_payload), "n={n}: {rx_payload}");
        }
    }

    #[test]
    fn broadcast_hits_every_device() {
        let mut net = small_net(6);
        net.broadcast_encoder_columns(128).unwrap();
        for d in net.devices().to_vec() {
            assert!(net.accounting().node(d).rx_bytes >= 128);
        }
    }

    #[test]
    fn killing_device_keeps_rounds_working() {
        let mut net = small_net(8);
        let victim = net.devices()[3];
        net.kill_device(victim).unwrap();
        assert_eq!(net.alive_devices().len(), 7);
        assert!(net.tree().check_invariants());
        let t = net.raw_aggregation_round(4).unwrap();
        assert!(t > 0.0);
        assert_eq!(net.accounting().node(victim).tx_bytes, 0);
        net.reset_accounting();
        net.compressed_aggregation_round(256, 50).unwrap();
        assert_eq!(net.accounting().node(victim).tx_bytes, 0);
    }

    #[test]
    fn transmit_to_dead_node_errors() {
        let mut net = small_net(4);
        let victim = net.devices()[1];
        net.kill_device(victim).unwrap();
        let d = net.devices()[0];
        assert!(matches!(
            net.transmit(d, victim, 10, PacketKind::RawData),
            Err(WsnError::NodeDead { .. })
        ));
    }

    #[test]
    fn lossy_link_retries_and_costs_more() {
        let mut cfg = NetworkConfig { num_devices: 4, seed: 3, ..Default::default() };
        cfg.sensor_link = cfg.sensor_link.with_loss(0.4);
        let mut lossy = Network::new(cfg);
        let mut clean = small_net(4);
        let bytes = 96; // one frame
        let mut lossy_total = 0u64;
        let mut clean_total = 0u64;
        for _ in 0..50 {
            let d = lossy.devices()[0];
            let _ = lossy.transmit(d, lossy.aggregator(), bytes, PacketKind::RawData);
            let d = clean.devices()[0];
            let _ = clean.transmit(d, clean.aggregator(), bytes, PacketKind::RawData);
            lossy_total = lossy.accounting().total_tx_bytes();
            clean_total = clean.accounting().total_tx_bytes();
        }
        assert!(lossy_total > clean_total, "lossy {lossy_total} vs clean {clean_total}");
    }

    #[test]
    fn compute_time_respects_device_class() {
        let mut net = small_net(4);
        let t_iot = net.compute(net.devices()[0], 1_000_000).unwrap();
        let t_edge = net.compute(net.edge(), 1_000_000).unwrap();
        assert!(t_iot > t_edge * 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = small_net(10);
        let mut b = small_net(10);
        let ta = a.raw_aggregation_round(8).unwrap();
        let tb = b.raw_aggregation_round(8).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(a.accounting().total_tx_bytes(), b.accounting().total_tx_bytes());
    }

    #[test]
    fn hybrid_round_costs_no_more_than_plain_cs() {
        let mut plain = small_net(40);
        let mut hybrid = small_net(40);
        plain.compressed_aggregation_round(512, 0).unwrap();
        hybrid.hybrid_aggregation_round(512, 4, 0).unwrap();
        let pb = plain.accounting().total_tx_bytes();
        let hb = hybrid.accounting().total_tx_bytes();
        assert!(hb < pb, "hybrid {hb} should beat plain {pb} (early hops send raw)");
        // And the aggregator still receives a full-size final payload.
        let rx = hybrid.accounting().node(hybrid.aggregator()).rx_bytes;
        assert!(rx >= 160, "aggregator got {rx} bytes");
    }

    #[test]
    fn hybrid_equals_plain_when_latent_tiny() {
        // If M·4 is smaller than even one reading, every hop sends M·4.
        let mut plain = small_net(10);
        let mut hybrid = small_net(10);
        plain.compressed_aggregation_round(4, 0).unwrap();
        hybrid.hybrid_aggregation_round(4, 4, 0).unwrap();
        assert_eq!(plain.accounting().total_tx_bytes(), hybrid.accounting().total_tx_bytes());
    }

    #[test]
    fn mean_hops_positive() {
        let net = small_net(30);
        assert!(net.mean_hops() >= 1.0);
    }
}
