//! Simulated compute-time model.
//!
//! `orco-nn` layers report per-sample FLOP estimates; this module converts
//! them to simulated seconds at a device's sustained rate. The asymmetry
//! between the aggregator (hosting the one-layer encoder) and the edge
//! server (hosting the deep decoder) is what makes OrcoDCS's orchestrated
//! training faster than training everything in one weak place — Figure 4's
//! entire effect rides on this model.

use crate::node::DeviceClass;

/// Converts FLOP counts into simulated seconds per device class.
///
/// # Examples
///
/// ```
/// use orco_wsn::{ComputeModel, DeviceClass};
///
/// let model = ComputeModel::default();
/// let edge = model.time_for_flops(DeviceClass::EdgeServer, 1_000_000);
/// let iot = model.time_for_flops(DeviceClass::IotDevice, 1_000_000);
/// assert!(edge < iot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Sustained FLOP/s of an IoT device.
    pub iot_flops: f64,
    /// Sustained FLOP/s of a data aggregator.
    pub aggregator_flops: f64,
    /// Sustained FLOP/s of an edge server.
    pub edge_flops: f64,
    /// Efficiency factor in `(0, 1]` applied to all rates (models framework
    /// overhead; 1.0 = ideal).
    pub efficiency: f64,
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self {
            iot_flops: DeviceClass::IotDevice.flops_rate(),
            aggregator_flops: DeviceClass::DataAggregator.flops_rate(),
            edge_flops: DeviceClass::EdgeServer.flops_rate(),
            efficiency: 0.5,
        }
    }
}

impl ComputeModel {
    /// Effective FLOP/s for a device class.
    #[must_use]
    pub fn rate(&self, class: DeviceClass) -> f64 {
        let raw = match class {
            DeviceClass::IotDevice => self.iot_flops,
            DeviceClass::DataAggregator => self.aggregator_flops,
            DeviceClass::EdgeServer => self.edge_flops,
        };
        raw * self.efficiency
    }

    /// Simulated seconds for `flops` floating-point operations on `class`.
    #[must_use]
    pub fn time_for_flops(&self, class: DeviceClass, flops: u64) -> f64 {
        flops as f64 / self.rate(class)
    }

    /// Simulated seconds for a batch: `per_sample_flops × batch` on `class`.
    #[must_use]
    pub fn time_for_batch(&self, class: DeviceClass, per_sample_flops: u64, batch: usize) -> f64 {
        self.time_for_flops(class, per_sample_flops.saturating_mul(batch as u64))
    }

    /// Energy in joules for `flops` on `class`, with a fixed energy-per-FLOP
    /// coefficient (1 nJ/FLOP for IoT-class silicon, scaled down for bigger
    /// devices which are more efficient per operation).
    #[must_use]
    pub fn energy_for_flops(&self, class: DeviceClass, flops: u64) -> f64 {
        let j_per_flop = match class {
            DeviceClass::IotDevice => 1e-9,
            DeviceClass::DataAggregator => 5e-10,
            DeviceClass::EdgeServer => 2e-10,
        };
        flops as f64 * j_per_flop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_respect_class_ordering() {
        let m = ComputeModel::default();
        assert!(m.rate(DeviceClass::IotDevice) < m.rate(DeviceClass::DataAggregator));
        assert!(m.rate(DeviceClass::DataAggregator) < m.rate(DeviceClass::EdgeServer));
    }

    #[test]
    fn time_scales_linearly() {
        let m = ComputeModel::default();
        let t1 = m.time_for_flops(DeviceClass::EdgeServer, 1_000);
        let t2 = m.time_for_flops(DeviceClass::EdgeServer, 2_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn batch_time_multiplies() {
        let m = ComputeModel::default();
        let single = m.time_for_flops(DeviceClass::IotDevice, 500);
        let batch = m.time_for_batch(DeviceClass::IotDevice, 500, 8);
        assert!((batch / single - 8.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_slows_everything() {
        let ideal = ComputeModel { efficiency: 1.0, ..Default::default() };
        let real = ComputeModel { efficiency: 0.5, ..Default::default() };
        assert!(
            real.time_for_flops(DeviceClass::EdgeServer, 1_000_000)
                > ideal.time_for_flops(DeviceClass::EdgeServer, 1_000_000)
        );
    }

    #[test]
    fn energy_is_positive_and_class_dependent() {
        let m = ComputeModel::default();
        let iot = m.energy_for_flops(DeviceClass::IotDevice, 1_000);
        let edge = m.energy_for_flops(DeviceClass::EdgeServer, 1_000);
        assert!(iot > edge);
        assert!(edge > 0.0);
    }
}
