//! Chain scheduling for compressed data aggregation (paper §III-C).
//!
//! After the encoder is distributed, each IoT device holds one column of the
//! encoder. Compressed aggregation walks a chain through the devices: each
//! device computes its column's contribution to the latent vector, adds it
//! to the running partial sum, and forwards the (fixed-size, M-element)
//! partial sum to the next device, ending at the data aggregator. Every hop
//! carries exactly M values — this is what decouples the transmission cost
//! from the number of devices N and produces the savings of Figure 3.
//!
//! The chain order is a greedy nearest-neighbour walk starting from the
//! device farthest from the aggregator, which keeps hop distances (and
//! therefore radio energy, which grows with d²) short.

use crate::geometry::Point;
use crate::node::NodeId;

/// An ordered visit schedule for compressed aggregation.
///
/// # Examples
///
/// ```
/// use orco_wsn::{ChainSchedule, NodeId, Point};
///
/// let devices = vec![
///     (NodeId(1), Point::new(3.0, 0.0)),
///     (NodeId(2), Point::new(1.0, 0.0)),
///     (NodeId(3), Point::new(2.0, 0.0)),
/// ];
/// let chain = ChainSchedule::greedy_nearest(&devices, Point::new(0.0, 0.0));
/// // Starts farthest from the aggregator, walks inward.
/// assert_eq!(chain.order(), &[NodeId(1), NodeId(3), NodeId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSchedule {
    order: Vec<NodeId>,
}

impl ChainSchedule {
    /// Builds a chain by greedy nearest-neighbour walk: start at the device
    /// farthest from `aggregator`, repeatedly hop to the nearest unvisited
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn greedy_nearest(devices: &[(NodeId, Point)], aggregator: Point) -> Self {
        assert!(!devices.is_empty(), "ChainSchedule: need at least one device");
        let mut remaining: Vec<(NodeId, Point)> = devices.to_vec();
        // Deterministic start: farthest from the aggregator (ties by id).
        let start = remaining
            .iter()
            .enumerate()
            .max_by(|(_, (ia, a)), (_, (ib, b))| {
                a.distance_sq(aggregator)
                    .partial_cmp(&b.distance_sq(aggregator))
                    .expect("finite distances")
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut order = Vec::with_capacity(remaining.len());
        let (id, mut cur) = remaining.swap_remove(start);
        order.push(id);
        while !remaining.is_empty() {
            let next = remaining
                .iter()
                .enumerate()
                .min_by(|(_, (ia, a)), (_, (ib, b))| {
                    a.distance_sq(cur)
                        .partial_cmp(&b.distance_sq(cur))
                        .expect("finite distances")
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            let (id, p) = remaining.swap_remove(next);
            order.push(id);
            cur = p;
        }
        Self { order }
    }

    /// Builds a chain from an explicit order (tests, custom schedules).
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or contains duplicates.
    #[must_use]
    pub fn from_order(order: Vec<NodeId>) -> Self {
        assert!(!order.is_empty(), "ChainSchedule: order must be non-empty");
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), order.len(), "ChainSchedule: duplicate node in order");
        Self { order }
    }

    /// The visit order; the last entry forwards to the aggregator.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of devices in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the chain is empty (never true for constructed chains).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Device-to-device hops `(from, to)`; the final hop to the aggregator
    /// is not included (its endpoint is not a device).
    #[must_use]
    pub fn device_hops(&self) -> Vec<(NodeId, NodeId)> {
        self.order.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// The device that performs the final hop to the aggregator.
    #[must_use]
    pub fn last(&self) -> NodeId {
        *self.order.last().expect("chain is non-empty")
    }

    /// Removes a dead device, splicing its neighbours together.
    pub fn remove(&mut self, dead: NodeId) {
        self.order.retain(|id| *id != dead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(i: usize, x: f64) -> (NodeId, Point) {
        (NodeId(i), Point::new(x, 0.0))
    }

    #[test]
    fn walks_inward_on_a_line() {
        let devices = vec![device(1, 1.0), device(2, 2.0), device(3, 3.0), device(4, 4.0)];
        let chain = ChainSchedule::greedy_nearest(&devices, Point::origin());
        assert_eq!(chain.order(), &[NodeId(4), NodeId(3), NodeId(2), NodeId(1)]);
        assert_eq!(chain.last(), NodeId(1));
        assert_eq!(chain.device_hops().len(), 3);
    }

    #[test]
    fn visits_every_device_exactly_once() {
        let mut rng = orco_tensor::OrcoRng::from_label("chain-perm", 0);
        let devices: Vec<(NodeId, Point)> = (0..20)
            .map(|i| {
                (
                    NodeId(i),
                    Point::new(rng.uniform(0.0, 100.0) as f64, rng.uniform(0.0, 100.0) as f64),
                )
            })
            .collect();
        let chain = ChainSchedule::greedy_nearest(&devices, Point::new(50.0, 50.0));
        let mut ids: Vec<usize> = chain.order().iter().map(|n| n.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn single_device_chain() {
        let chain = ChainSchedule::greedy_nearest(&[device(7, 5.0)], Point::origin());
        assert_eq!(chain.order(), &[NodeId(7)]);
        assert!(chain.device_hops().is_empty());
        assert_eq!(chain.last(), NodeId(7));
    }

    #[test]
    fn remove_splices_chain() {
        let mut chain = ChainSchedule::from_order(vec![NodeId(1), NodeId(2), NodeId(3)]);
        chain.remove(NodeId(2));
        assert_eq!(chain.order(), &[NodeId(1), NodeId(3)]);
        assert_eq!(chain.device_hops(), vec![(NodeId(1), NodeId(3))]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn from_order_rejects_duplicates() {
        let _ = ChainSchedule::from_order(vec![NodeId(1), NodeId(1)]);
    }
}
