//! Network nodes: IoT devices, data aggregators and edge servers.

use std::fmt;

use crate::geometry::Point;

/// Opaque node identifier, unique within one [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The three device roles of the OrcoDCS architecture (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// A battery-powered sensing device. Computes one latent element during
    /// compressed aggregation; never trains.
    IotDevice,
    /// The cluster head that holds the encoder, orchestrates aggregation and
    /// participates in training (paper §III-B). Stronger than an IoT device
    /// but far weaker than the edge.
    DataAggregator,
    /// The edge server hosting the decoder and most of the training load.
    EdgeServer,
}

impl DeviceClass {
    /// Sustained compute rate in FLOP/s used by the simulated-time model.
    ///
    /// The absolute values are representative (mote-class MCU, gateway-class
    /// SoC, edge GPU-less server); the figures only depend on their ratios.
    #[must_use]
    pub fn flops_rate(self) -> f64 {
        match self {
            DeviceClass::IotDevice => 5.0e7,      // 50 MFLOP/s
            DeviceClass::DataAggregator => 5.0e8, // 500 MFLOP/s
            DeviceClass::EdgeServer => 5.0e10,    // 50 GFLOP/s
        }
    }

    /// Initial energy budget in joules. IoT devices are battery-bound; the
    /// data aggregator (a gateway-class device) and the edge server are
    /// mains/solar-powered and effectively unmetered — the paper's §III-E
    /// overhead analysis likewise treats only the IoT side as
    /// energy-constrained.
    #[must_use]
    pub fn initial_energy_j(self) -> f64 {
        match self {
            DeviceClass::IotDevice => 2.0,
            DeviceClass::DataAggregator | DeviceClass::EdgeServer => f64::INFINITY,
        }
    }
}

/// One simulated device.
#[derive(Debug, Clone)]
pub struct Node {
    id: NodeId,
    class: DeviceClass,
    position: Point,
    energy_j: f64,
    alive: bool,
}

impl Node {
    /// Creates a node with the class's default energy budget.
    #[must_use]
    pub fn new(id: NodeId, class: DeviceClass, position: Point) -> Self {
        Self { id, class, position, energy_j: class.initial_energy_j(), alive: true }
    }

    /// The node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's device class.
    #[must_use]
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// The node's position in the field.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Remaining energy in joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Whether the node is alive (has energy and has not been failed).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Drains `joules` from the battery; the node dies at 0.
    ///
    /// Returns `false` if the node was already dead or the drain kills it.
    pub fn drain(&mut self, joules: f64) -> bool {
        if !self.alive {
            return false;
        }
        self.energy_j -= joules;
        if self.energy_j <= 0.0 {
            self.energy_j = 0.0;
            self.alive = false;
            return false;
        }
        true
    }

    /// Marks the node dead (failure injection).
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// Revives the node with the given energy (test/failure-recovery use).
    pub fn revive(&mut self, energy_j: f64) {
        self.alive = true;
        self.energy_j = energy_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(42).to_string(), "n42");
    }

    #[test]
    fn class_rates_are_ordered() {
        assert!(DeviceClass::IotDevice.flops_rate() < DeviceClass::DataAggregator.flops_rate());
        assert!(DeviceClass::DataAggregator.flops_rate() < DeviceClass::EdgeServer.flops_rate());
    }

    #[test]
    fn drain_kills_at_zero() {
        let mut n = Node::new(NodeId(0), DeviceClass::IotDevice, Point::origin());
        assert!(n.is_alive());
        assert!(n.drain(1.0));
        assert!(!n.drain(5.0));
        assert!(!n.is_alive());
        assert_eq!(n.energy_j(), 0.0);
        // Draining a dead node stays dead.
        assert!(!n.drain(0.1));
    }

    #[test]
    fn edge_server_never_runs_out() {
        let mut n = Node::new(NodeId(1), DeviceClass::EdgeServer, Point::origin());
        assert!(n.drain(1e12));
        assert!(n.is_alive());
    }

    #[test]
    fn kill_and_revive() {
        let mut n = Node::new(NodeId(2), DeviceClass::IotDevice, Point::origin());
        n.kill();
        assert!(!n.is_alive());
        n.revive(1.0);
        assert!(n.is_alive());
        assert_eq!(n.energy_j(), 1.0);
    }
}
