//! Link models: bandwidth, latency and loss.

/// A point-to-point link model.
///
/// Three instances describe the OrcoDCS deployment (paper §III-E):
/// the low-rate intra-cluster sensor radio, the aggregator→edge uplink, and
/// the much faster edge→aggregator downlink ("downlink … is much less
/// resource-intensive compared to uplink").
///
/// # Examples
///
/// ```
/// use orco_wsn::LinkModel;
///
/// let uplink = LinkModel::aggregator_uplink();
/// let t = uplink.transmission_time_s(2_000_000 / 8); // 250 kB at 2 Mb/s
/// assert!((t - (1.0 + uplink.latency_s)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + protocol latency in seconds.
    pub latency_s: f64,
    /// Independent per-packet loss probability in `[0, 1)`.
    pub loss_prob: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not positive, `latency_s` is negative,
    /// or `loss_prob` is outside `[0, 1)`.
    #[must_use]
    pub fn new(bandwidth_bps: f64, latency_s: f64, loss_prob: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "LinkModel: bandwidth must be positive");
        assert!(latency_s >= 0.0, "LinkModel: latency must be ≥ 0");
        assert!((0.0..1.0).contains(&loss_prob), "LinkModel: loss_prob must be in [0, 1)");
        Self { bandwidth_bps, latency_s, loss_prob }
    }

    /// IEEE 802.15.4-class intra-cluster sensor radio: 250 kb/s, 5 ms.
    #[must_use]
    pub fn sensor_radio() -> Self {
        Self::new(250e3, 5e-3, 0.0)
    }

    /// Aggregator→edge uplink: 2 Mb/s, 20 ms.
    #[must_use]
    pub fn aggregator_uplink() -> Self {
        Self::new(2e6, 20e-3, 0.0)
    }

    /// Edge→aggregator downlink: 20 Mb/s, 10 ms.
    #[must_use]
    pub fn edge_downlink() -> Self {
        Self::new(20e6, 10e-3, 0.0)
    }

    /// Returns a copy with the given loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob` is outside `[0, 1)`.
    #[must_use]
    pub fn with_loss(mut self, loss_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&loss_prob), "LinkModel: loss_prob must be in [0, 1)");
        self.loss_prob = loss_prob;
        self
    }

    /// Time to push `bytes` through the link, including latency.
    #[must_use]
    pub fn transmission_time_s(&self, bytes: u64) -> f64 {
        self.latency_s + self.airtime_s(bytes)
    }

    /// Time `bytes` occupy the medium (serialization only, no latency) —
    /// the contention window other transmitters must wait out.
    #[must_use]
    pub fn airtime_s(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bps
    }

    /// Expected number of attempts per packet under independent loss.
    #[must_use]
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.loss_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_scales_with_bytes() {
        let l = LinkModel::new(1e6, 0.0, 0.0);
        assert!((l.transmission_time_s(125_000) - 1.0).abs() < 1e-9);
        assert!((l.transmission_time_s(250_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_once() {
        let l = LinkModel::new(1e6, 0.5, 0.0);
        assert!((l.transmission_time_s(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        assert!(
            LinkModel::sensor_radio().bandwidth_bps < LinkModel::aggregator_uplink().bandwidth_bps
        );
        assert!(
            LinkModel::aggregator_uplink().bandwidth_bps < LinkModel::edge_downlink().bandwidth_bps
        );
    }

    #[test]
    fn expected_attempts() {
        assert_eq!(LinkModel::sensor_radio().expected_attempts(), 1.0);
        let lossy = LinkModel::sensor_radio().with_loss(0.5);
        assert_eq!(lossy.expected_attempts(), 2.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = LinkModel::new(0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn rejects_certain_loss() {
        let _ = LinkModel::new(1.0, 0.0, 1.0);
    }
}
