//! The pluggable deployment-backend interface.
//!
//! Everything above the radio — the orchestrated training protocol, the
//! experiment pipeline, the data-plane measurements — is written against
//! [`DeploymentBackend`], not against a concrete simulator. Two backends
//! implement it:
//!
//! * the **analytic** model in this crate ([`crate::Network`]): one global
//!   clock, sequential transmissions, losses drawn inline — fast and exact
//!   for cost accounting;
//! * the **event-driven** model in `orco-sim`: a discrete-event simulator
//!   with per-node clocks, a TDMA/CSMA MAC, ARQ, fragmentation, duty
//!   cycles, and scripted fault scenarios.
//!
//! The contract between them: a contention-free, zero-loss, zero-jitter
//! event-driven schedule reproduces the analytic backend's byte and energy
//! totals **exactly** (regression-tested at the workspace level). Richer
//! schedules then add what the analytic model cannot express — concurrency,
//! contention, stragglers, time-windowed faults — without touching any
//! caller.

use crate::accounting::TrafficAccounting;
use crate::error::WsnError;
use crate::network::Network;
use crate::node::NodeId;
use crate::packet::PacketKind;

/// A simulated deployment the OrcoDCS protocol can run on.
///
/// Object-safe: the experiment pipeline holds `Box<dyn DeploymentBackend>`
/// and never knows which simulator it drives. All methods mirror the
/// long-standing [`Network`] inherent API; see those docs for the precise
/// semantics of each primitive.
pub trait DeploymentBackend: std::fmt::Debug {
    /// Short backend label for reports (e.g. `"analytic"`, `"event-driven"`).
    fn backend_name(&self) -> &'static str;

    /// Current simulated time in seconds.
    fn now_s(&self) -> f64;

    /// The traffic ledger.
    fn accounting(&self) -> &TrafficAccounting;

    /// Clears the traffic ledger (keeps the clock and batteries).
    fn reset_accounting(&mut self);

    /// Advances simulated time by `dt_s` seconds without any traffic.
    fn wait(&mut self, dt_s: f64);

    /// The data aggregator's id.
    fn aggregator(&self) -> NodeId;

    /// The edge server's id.
    fn edge(&self) -> NodeId;

    /// Ids of the IoT devices.
    fn devices(&self) -> &[NodeId];

    /// Alive IoT devices (order of [`DeploymentBackend::devices`]).
    fn alive_devices(&self) -> Vec<NodeId>;

    /// Remaining battery energy of a node, joules.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for out-of-range ids.
    fn node_energy_j(&self, id: NodeId) -> Result<f64, WsnError>;

    /// Kills a device and repairs the aggregation structures around it.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::UnknownNode`] for non-device ids.
    fn kill_device(&mut self, id: NodeId) -> Result<(), WsnError>;

    /// Sends `payload_bytes` of `kind` from `from` to `to`; returns elapsed
    /// simulated seconds.
    ///
    /// # Errors
    ///
    /// See [`Network::transmit`].
    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError>;

    /// Executes `flops` at node `at`; returns elapsed simulated seconds.
    ///
    /// # Errors
    ///
    /// See [`Network::compute`].
    fn compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError>;

    /// One round of intra-cluster raw aggregation over the tree (§III-A).
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    fn raw_aggregation_round(&mut self, bytes_per_device: u64) -> Result<f64, WsnError>;

    /// Distributes per-device encoder columns from the aggregator (§III-C).
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    fn broadcast_encoder_columns(&mut self, column_bytes: u64) -> Result<f64, WsnError>;

    /// One round of compressed chain aggregation (§III-C).
    ///
    /// # Errors
    ///
    /// Propagates transmission errors.
    fn compressed_aggregation_round(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError>;
}

impl DeploymentBackend for Network {
    fn backend_name(&self) -> &'static str {
        "analytic"
    }

    fn now_s(&self) -> f64 {
        Network::now_s(self)
    }

    fn accounting(&self) -> &TrafficAccounting {
        Network::accounting(self)
    }

    fn reset_accounting(&mut self) {
        Network::reset_accounting(self);
    }

    fn wait(&mut self, dt_s: f64) {
        Network::wait(self, dt_s);
    }

    fn aggregator(&self) -> NodeId {
        Network::aggregator(self)
    }

    fn edge(&self) -> NodeId {
        Network::edge(self)
    }

    fn devices(&self) -> &[NodeId] {
        Network::devices(self)
    }

    fn alive_devices(&self) -> Vec<NodeId> {
        Network::alive_devices(self)
    }

    fn node_energy_j(&self, id: NodeId) -> Result<f64, WsnError> {
        Ok(self.node(id)?.energy_j())
    }

    fn kill_device(&mut self, id: NodeId) -> Result<(), WsnError> {
        Network::kill_device(self, id)
    }

    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError> {
        Network::transmit(self, from, to, payload_bytes, kind)
    }

    fn compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        Network::compute(self, at, flops)
    }

    fn raw_aggregation_round(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        Network::raw_aggregation_round(self, bytes_per_device)
    }

    fn broadcast_encoder_columns(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        Network::broadcast_encoder_columns(self, column_bytes)
    }

    fn compressed_aggregation_round(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        Network::compressed_aggregation_round(self, latent_bytes, flops_per_device)
    }
}

impl<T: DeploymentBackend + ?Sized> DeploymentBackend for Box<T> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }

    fn now_s(&self) -> f64 {
        (**self).now_s()
    }

    fn accounting(&self) -> &TrafficAccounting {
        (**self).accounting()
    }

    fn reset_accounting(&mut self) {
        (**self).reset_accounting();
    }

    fn wait(&mut self, dt_s: f64) {
        (**self).wait(dt_s);
    }

    fn aggregator(&self) -> NodeId {
        (**self).aggregator()
    }

    fn edge(&self) -> NodeId {
        (**self).edge()
    }

    fn devices(&self) -> &[NodeId] {
        (**self).devices()
    }

    fn alive_devices(&self) -> Vec<NodeId> {
        (**self).alive_devices()
    }

    fn node_energy_j(&self, id: NodeId) -> Result<f64, WsnError> {
        (**self).node_energy_j(id)
    }

    fn kill_device(&mut self, id: NodeId) -> Result<(), WsnError> {
        (**self).kill_device(id)
    }

    fn transmit(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: u64,
        kind: PacketKind,
    ) -> Result<f64, WsnError> {
        (**self).transmit(from, to, payload_bytes, kind)
    }

    fn compute(&mut self, at: NodeId, flops: u64) -> Result<f64, WsnError> {
        (**self).compute(at, flops)
    }

    fn raw_aggregation_round(&mut self, bytes_per_device: u64) -> Result<f64, WsnError> {
        (**self).raw_aggregation_round(bytes_per_device)
    }

    fn broadcast_encoder_columns(&mut self, column_bytes: u64) -> Result<f64, WsnError> {
        (**self).broadcast_encoder_columns(column_bytes)
    }

    fn compressed_aggregation_round(
        &mut self,
        latent_bytes: u64,
        flops_per_device: u64,
    ) -> Result<f64, WsnError> {
        (**self).compressed_aggregation_round(latent_bytes, flops_per_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;

    #[test]
    fn analytic_network_is_a_backend() {
        let mut net: Box<dyn DeploymentBackend> =
            Box::new(Network::new(NetworkConfig { num_devices: 4, ..Default::default() }));
        assert_eq!(net.backend_name(), "analytic");
        assert_eq!(net.devices().len(), 4);
        let d = net.devices()[0];
        let agg = net.aggregator();
        let t = net.transmit(d, agg, 64, PacketKind::RawData).unwrap();
        assert!(t > 0.0);
        assert_eq!(net.now_s(), t);
        assert_eq!(net.accounting().link_stats().delivered_packets, 1);
        assert!(net.node_energy_j(d).unwrap() < 2.0);
    }
}
