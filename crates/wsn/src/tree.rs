//! Multi-hop data-aggregation trees (paper §III-A).
//!
//! Intra-cluster **raw** aggregation uses a tree rooted at the data
//! aggregator spanning all IoT devices: each node forwards its own and its
//! descendants' data one hop toward the root. Relative to direct
//! transmission this (i) cuts the energy of far-from-aggregator nodes —
//! radio energy grows with d² — and (ii) reduces collisions by localizing
//! traffic.
//!
//! The tree is built with Prim's algorithm on Euclidean distance (a minimum
//! spanning tree rooted at the aggregator), which is the standard
//! approximation for energy-efficient aggregation trees. Node failures are
//! handled by re-parenting orphaned subtrees onto the nearest alive
//! non-descendant.

use std::collections::BTreeMap;

use crate::error::WsnError;
use crate::geometry::Point;
use crate::node::NodeId;

/// A rooted spanning tree over cluster nodes.
///
/// # Examples
///
/// ```
/// use orco_wsn::{AggregationTree, NodeId, Point};
///
/// let nodes = vec![
///     (NodeId(0), Point::new(0.0, 0.0)), // root / aggregator
///     (NodeId(1), Point::new(1.0, 0.0)),
///     (NodeId(2), Point::new(2.0, 0.0)),
/// ];
/// let tree = AggregationTree::build(NodeId(0), &nodes)?;
/// assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1))); // multi-hop
/// assert_eq!(tree.hops_to_root(NodeId(2)), 2);
/// # Ok::<(), orco_wsn::WsnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AggregationTree {
    root: NodeId,
    // Ordered maps: Prim tie-breaks, re-parenting candidate order, and
    // `children`/`bottom_up_order` all iterate these, and the resulting
    // tree must be identical between runs of the same seed.
    parent: BTreeMap<NodeId, NodeId>,
    positions: BTreeMap<NodeId, Point>,
}

impl AggregationTree {
    /// Builds a minimum-spanning aggregation tree rooted at `root`.
    ///
    /// `nodes` must contain `root` and at least one other node; every entry
    /// is `(id, position)`.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::InvalidTopology`] if `root` is missing from
    /// `nodes` or there are duplicate ids.
    pub fn build(root: NodeId, nodes: &[(NodeId, Point)]) -> Result<Self, WsnError> {
        let mut positions = BTreeMap::new();
        for (id, p) in nodes {
            if positions.insert(*id, *p).is_some() {
                return Err(WsnError::InvalidTopology { detail: format!("duplicate node {id}") });
            }
        }
        if !positions.contains_key(&root) {
            return Err(WsnError::InvalidTopology {
                detail: format!("root {root} not among nodes"),
            });
        }

        // Prim's algorithm from the root, O(n²): for every out-of-tree node
        // keep its best distance to the current tree and the anchor that
        // achieves it; each extraction updates the arrays in one pass.
        // `out` is ascending by id (BTreeMap keys), so distance ties
        // resolve to the lowest id on every run.
        let mut out: Vec<NodeId> = positions.keys().copied().filter(|id| *id != root).collect();
        let root_pos = positions[&root];
        let mut best_d2: Vec<f64> =
            out.iter().map(|id| positions[id].distance_sq(root_pos)).collect();
        let mut best_anchor: Vec<NodeId> = vec![root; out.len()];
        let mut parent = BTreeMap::new();
        while !out.is_empty() {
            let next = best_d2
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite distances"))
                .map(|(i, _)| i)
                .expect("out is non-empty");
            let id = out.swap_remove(next);
            let anchor = best_anchor.swap_remove(next);
            best_d2.swap_remove(next);
            parent.insert(id, anchor);
            // The newly attached node may now be the best anchor for others.
            let new_pos = positions[&id];
            for (i, cand) in out.iter().enumerate() {
                let d2 = positions[cand].distance_sq(new_pos);
                if d2 < best_d2[i] {
                    best_d2[i] = d2;
                    best_anchor[i] = id;
                }
            }
        }

        Ok(Self { root, parent, positions })
    }

    /// The tree's root (the data aggregator).
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len() + 1
    }

    /// Whether the tree contains only the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Whether `id` is in the tree.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        id == self.root || self.parent.contains_key(&id)
    }

    /// The parent of `id` (`None` for the root or unknown nodes).
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent.get(&id).copied()
    }

    /// Children of `id`, sorted for determinism.
    #[must_use]
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        let mut kids: Vec<NodeId> =
            self.parent.iter().filter(|(_, p)| **p == id).map(|(c, _)| *c).collect();
        kids.sort_unstable();
        kids
    }

    /// Hop count from `id` to the root (0 for the root itself).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    #[must_use]
    pub fn hops_to_root(&self, id: NodeId) -> usize {
        assert!(self.contains(id), "hops_to_root: {id} not in tree");
        let mut hops = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            hops += 1;
            cur = p;
            assert!(hops <= self.len(), "tree contains a cycle");
        }
        hops
    }

    /// Distance in meters between `id` and its parent (`None` for the root).
    #[must_use]
    pub fn hop_distance_m(&self, id: NodeId) -> Option<f64> {
        let p = self.parent(id)?;
        Some(self.positions[&id].distance(self.positions[&p]))
    }

    /// All non-root nodes in bottom-up order: every node appears before its
    /// parent, so processing in this order aggregates leaves first.
    #[must_use]
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.parent.keys().copied().collect();
        ids.sort_unstable();
        ids.sort_by_key(|id| std::cmp::Reverse(self.hops_to_root(*id)));
        ids
    }

    /// Number of descendants of `id` (excluding itself).
    #[must_use]
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut count = 0;
        for kid in self.children(id) {
            count += 1 + self.subtree_size(kid);
        }
        count
    }

    /// Whether `maybe_descendant` is in the subtree rooted at `ancestor`.
    #[must_use]
    pub fn is_descendant(&self, maybe_descendant: NodeId, ancestor: NodeId) -> bool {
        let mut cur = maybe_descendant;
        while let Some(p) = self.parent(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }

    /// Removes a failed node and re-parents its orphaned children onto the
    /// nearest remaining node that is not inside their own subtree.
    ///
    /// # Errors
    ///
    /// Returns [`WsnError::InvalidTopology`] if `dead` is the root, and
    /// [`WsnError::UnknownNode`] if `dead` is not in the tree.
    pub fn remove_and_reparent(&mut self, dead: NodeId) -> Result<(), WsnError> {
        if dead == self.root {
            return Err(WsnError::InvalidTopology { detail: "cannot remove the root".into() });
        }
        if !self.parent.contains_key(&dead) {
            return Err(WsnError::UnknownNode { id: dead });
        }
        let orphans = self.children(dead);
        self.parent.remove(&dead);
        let dead_pos = self.positions.remove(&dead);
        debug_assert!(dead_pos.is_some());

        for orphan in orphans {
            // Candidates: every remaining node that is not the orphan and not
            // in the orphan's own subtree (attaching there would form a cycle).
            let op = self.positions[&orphan];
            let mut best: Option<(NodeId, f64)> = None;
            let candidates: Vec<NodeId> = std::iter::once(self.root)
                .chain(self.parent.keys().copied())
                .filter(|c| *c != orphan && *c != dead && !self.is_descendant(*c, orphan))
                .collect();
            for cand in candidates {
                let d2 = op.distance_sq(self.positions[&cand]);
                if best.is_none_or(|(_, bd)| d2 < bd) {
                    best = Some((cand, d2));
                }
            }
            let (new_parent, _) = best.expect("root always remains as a candidate");
            self.parent.insert(orphan, new_parent);
        }
        Ok(())
    }

    /// Checks the structural invariants: connected to the root, acyclic,
    /// and spanning exactly the recorded nodes.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        self.parent.keys().all(|id| {
            let mut cur = *id;
            let mut hops = 0;
            loop {
                match self.parent(cur) {
                    None => break cur == self.root,
                    Some(p) => {
                        cur = p;
                        hops += 1;
                        if hops > self.len() {
                            break false; // cycle
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_nodes(n: usize) -> Vec<(NodeId, Point)> {
        (0..n).map(|i| (NodeId(i), Point::new(i as f64, 0.0))).collect()
    }

    #[test]
    fn line_topology_chains() {
        let tree = AggregationTree::build(NodeId(0), &line_nodes(5)).unwrap();
        for i in 1..5 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
        }
        assert_eq!(tree.hops_to_root(NodeId(4)), 4);
        assert!(tree.check_invariants());
    }

    #[test]
    fn star_topology_attaches_directly() {
        let nodes = vec![
            (NodeId(0), Point::new(0.0, 0.0)),
            (NodeId(1), Point::new(1.0, 0.0)),
            (NodeId(2), Point::new(0.0, 1.0)),
            (NodeId(3), Point::new(-1.0, 0.0)),
        ];
        let tree = AggregationTree::build(NodeId(0), &nodes).unwrap();
        for i in 1..4 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(0)));
        }
    }

    #[test]
    fn bottom_up_order_children_before_parents() {
        let tree = AggregationTree::build(NodeId(0), &line_nodes(6)).unwrap();
        let order = tree.bottom_up_order();
        assert_eq!(order.len(), 5);
        for (i, id) in order.iter().enumerate() {
            if let Some(p) = tree.parent(*id) {
                if p != tree.root() {
                    let pi = order.iter().position(|x| *x == p).unwrap();
                    assert!(pi > i, "parent {p} appears before child {id}");
                }
            }
        }
    }

    #[test]
    fn subtree_sizes() {
        let tree = AggregationTree::build(NodeId(0), &line_nodes(4)).unwrap();
        assert_eq!(tree.subtree_size(NodeId(0)), 3);
        assert_eq!(tree.subtree_size(NodeId(2)), 1);
        assert_eq!(tree.subtree_size(NodeId(3)), 0);
    }

    #[test]
    fn rejects_missing_root_and_duplicates() {
        let nodes = line_nodes(3);
        assert!(matches!(
            AggregationTree::build(NodeId(9), &nodes),
            Err(WsnError::InvalidTopology { .. })
        ));
        let mut dup = nodes.clone();
        dup.push((NodeId(1), Point::new(5.0, 5.0)));
        assert!(AggregationTree::build(NodeId(0), &dup).is_err());
    }

    #[test]
    fn failure_reparenting_keeps_invariants() {
        let tree_nodes = line_nodes(6);
        let mut tree = AggregationTree::build(NodeId(0), &tree_nodes).unwrap();
        // Kill the middle of the chain: 0-1-2-3-4-5 → remove 2.
        tree.remove_and_reparent(NodeId(2)).unwrap();
        assert!(!tree.contains(NodeId(2)));
        assert_eq!(tree.len(), 5);
        assert!(tree.check_invariants());
        // Node 3 must have been re-parented to its nearest survivor, node 4
        // is in its own subtree so the nearest valid is node 1.
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
        // Everyone still reaches the root.
        for i in [1usize, 3, 4, 5] {
            let _ = tree.hops_to_root(NodeId(i));
        }
    }

    #[test]
    fn cannot_remove_root() {
        let mut tree = AggregationTree::build(NodeId(0), &line_nodes(3)).unwrap();
        assert!(tree.remove_and_reparent(NodeId(0)).is_err());
        assert!(matches!(tree.remove_and_reparent(NodeId(7)), Err(WsnError::UnknownNode { .. })));
    }

    #[test]
    fn multihop_reduces_max_hop_distance() {
        // Far node at 100m with a relay at 50m: tree must route through it.
        let nodes = vec![
            (NodeId(0), Point::new(0.0, 0.0)),
            (NodeId(1), Point::new(50.0, 0.0)),
            (NodeId(2), Point::new(100.0, 0.0)),
        ];
        let tree = AggregationTree::build(NodeId(0), &nodes).unwrap();
        assert_eq!(tree.parent(NodeId(2)), Some(NodeId(1)));
        assert!(tree.hop_distance_m(NodeId(2)).unwrap() <= 50.0 + 1e-9);
    }
}
