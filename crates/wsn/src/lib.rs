//! # orco-wsn
//!
//! A deterministic wireless-sensor-network simulator: the substrate on which
//! the OrcoDCS protocol runs and against which the paper's transmission-cost
//! and time-to-loss figures are measured.
//!
//! The paper evaluates OrcoDCS on a cluster of IoT devices reporting to a
//! data aggregator that collaborates with an edge server. This crate
//! provides that world:
//!
//! * [`geometry`] — 2-D field, node placement;
//! * [`node`] — devices with a [`node::DeviceClass`] (IoT device, data
//!   aggregator, edge server), battery budget, and compute rate;
//! * [`radio`] — the first-order radio energy model
//!   (`E_tx = E_elec·k + ε_amp·k·d²`, `E_rx = E_elec·k`) standard in the WSN
//!   literature the paper builds on;
//! * [`link`] — bandwidth/latency/loss link models for intra-cluster radio,
//!   aggregator→edge uplink, and edge→aggregator downlink;
//! * [`clock`] — the simulated clock: every byte moved and FLOP executed
//!   advances simulated time, which is the x-axis of the paper's Figures 4
//!   and 6–8;
//! * [`compute`] — FLOPS rates per device class, turning the per-layer FLOP
//!   counts reported by `orco-nn` into simulated seconds;
//! * [`tree`] — multi-hop data-aggregation trees (ref \[1\] of the paper) for
//!   intra-cluster **raw** aggregation, with failure injection and
//!   re-parenting;
//! * [`chain`] — the latent-element chain aggregation of §III-C for
//!   **compressed** aggregation;
//! * [`accounting`] — per-node byte and energy accounting, packet
//!   outcomes, and delivery-latency statistics;
//! * [`network`] — the façade tying all of it together;
//! * [`backend`] — the [`DeploymentBackend`] trait making the deployment
//!   pluggable: this crate's analytic [`Network`] and the `orco-sim`
//!   discrete-event simulator both implement it.
//!
//! Everything is deterministic given a [`NetworkConfig`] seed: re-running an
//! experiment reproduces identical byte counts, energies and simulated
//! times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod backend;
pub mod chain;
pub mod clock;
pub mod cluster;
pub mod compute;
pub mod error;
pub mod geometry;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod radio;
pub mod tree;

pub use accounting::{LinkStats, TrafficAccounting};
pub use backend::DeploymentBackend;
pub use chain::ChainSchedule;
pub use clock::SimClock;
pub use cluster::{kmeans_clusters, select_head, Candidate, HeadSelection, Partition};
pub use compute::ComputeModel;
pub use error::WsnError;
pub use geometry::Point;
pub use link::LinkModel;
pub use network::{Network, NetworkConfig};
pub use node::{DeviceClass, Node, NodeId};
pub use packet::{Packet, PacketKind, HEADER_BYTES};
pub use radio::RadioModel;
pub use tree::AggregationTree;
