//! Per-node traffic and energy accounting.
//!
//! Figure 3 of the paper ("Transmitted KB" for 1 000 / 10 000 images) is a
//! pure accounting quantity; this module is its source of truth. Every
//! transmission in the simulator lands here.

use std::collections::BTreeMap;

use crate::node::NodeId;
use crate::packet::PacketKind;

/// Aggregated counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeTraffic {
    /// Bytes transmitted (wire bytes: payload + headers).
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Joules spent transmitting.
    pub tx_energy_j: f64,
    /// Joules spent receiving.
    pub rx_energy_j: f64,
    /// Packets sent.
    pub tx_packets: u64,
    /// Packets received.
    pub rx_packets: u64,
}

/// Delivery-level statistics of one ledger: logical-packet outcomes,
/// end-to-end latency percentiles, and radio airtime. Both deployment
/// backends fill these — the analytic model per [`crate::Network::transmit`]
/// call, the `orco-sim` event-driven backend per scheduled delivery — so
/// reports can surface them uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Logical packets delivered end to end.
    pub delivered_packets: u64,
    /// Logical packets dropped after exhausting their retry budget (or
    /// because an endpoint died mid-flight).
    pub dropped_packets: u64,
    /// Radio frames retransmitted beyond each packet's first attempt.
    pub retransmitted_frames: u64,
    /// Seconds the shared radio medium was occupied.
    pub airtime_s: f64,
    /// Median end-to-end delivery latency, seconds (0 when nothing was
    /// delivered).
    pub latency_p50_s: f64,
    /// 99th-percentile delivery latency, seconds (0 when nothing was
    /// delivered).
    pub latency_p99_s: f64,
}

/// Workspace-wide traffic ledger.
///
/// # Examples
///
/// ```
/// use orco_wsn::{accounting::TrafficAccounting, NodeId, PacketKind};
///
/// let mut ledger = TrafficAccounting::new();
/// ledger.record_tx(NodeId(0), 100, 1e-6, PacketKind::RawData);
/// ledger.record_rx(NodeId(1), 100, 5e-7, PacketKind::RawData);
/// ledger.record_delivery(0.012);
/// assert_eq!(ledger.total_tx_bytes(), 100);
/// assert_eq!(ledger.bytes_by_kind(PacketKind::RawData), 100);
/// assert_eq!(ledger.link_stats().delivered_packets, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficAccounting {
    // Ordered map: the energy totals are f64 sums over all nodes, and a
    // hash map's randomized iteration order would make those sums differ
    // in the last ulps between otherwise identical runs.
    per_node: BTreeMap<NodeId, NodeTraffic>,
    // Ordered for the same reason: `tx_bytes_by_kind` feeds reports, and
    // the breakdown must enumerate kinds in the same order every run.
    per_kind_tx_bytes: BTreeMap<PacketKind, u64>,
    delivered_packets: u64,
    dropped_packets: u64,
    retransmitted_frames: u64,
    airtime_s: f64,
    // Delivery-latency samples kept ascending-sorted on insert: exact
    // percentiles under merging/resets, and per-round `link_stats`
    // snapshots index directly instead of re-sorting a growing vector.
    latencies_s: Vec<f64>,
}

impl TrafficAccounting {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transmission by `node`.
    pub fn record_tx(&mut self, node: NodeId, wire_bytes: u64, energy_j: f64, kind: PacketKind) {
        let t = self.per_node.entry(node).or_default();
        t.tx_bytes += wire_bytes;
        t.tx_energy_j += energy_j;
        t.tx_packets += 1;
        *self.per_kind_tx_bytes.entry(kind).or_default() += wire_bytes;
    }

    /// Records a reception by `node`.
    pub fn record_rx(&mut self, node: NodeId, wire_bytes: u64, energy_j: f64, _kind: PacketKind) {
        let t = self.per_node.entry(node).or_default();
        t.rx_bytes += wire_bytes;
        t.rx_energy_j += energy_j;
        t.rx_packets += 1;
    }

    /// Records one logical packet delivered end to end after
    /// `latency_s` seconds (submission to delivery, queueing included).
    pub fn record_delivery(&mut self, latency_s: f64) {
        self.delivered_packets += 1;
        let idx = self.latencies_s.partition_point(|v| *v <= latency_s);
        self.latencies_s.insert(idx, latency_s);
    }

    /// Records one logical packet dropped (retry budget exhausted or an
    /// endpoint died mid-flight).
    pub fn record_drop(&mut self) {
        self.dropped_packets += 1;
    }

    /// Records `frames` radio frames retransmitted beyond their packet's
    /// first attempt.
    pub fn record_retransmits(&mut self, frames: u64) {
        self.retransmitted_frames += frames;
    }

    /// Records `dt_s` seconds of radio-medium occupancy.
    pub fn record_airtime(&mut self, dt_s: f64) {
        self.airtime_s += dt_s;
    }

    /// Delivery latency percentile in seconds (nearest-rank over all
    /// recorded deliveries; 0 when nothing was delivered). O(1): the
    /// samples are kept sorted on insert.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_percentile_s(&self, q: f64) -> f64 {
        percentile_of_sorted(&self.latencies_s, q)
    }

    /// Snapshot of the delivery-level statistics (packet outcomes, latency
    /// percentiles, airtime). Cheap enough to take per training round.
    #[must_use]
    pub fn link_stats(&self) -> LinkStats {
        LinkStats {
            delivered_packets: self.delivered_packets,
            dropped_packets: self.dropped_packets,
            retransmitted_frames: self.retransmitted_frames,
            airtime_s: self.airtime_s,
            latency_p50_s: percentile_of_sorted(&self.latencies_s, 0.5),
            latency_p99_s: percentile_of_sorted(&self.latencies_s, 0.99),
        }
    }

    /// Counters for one node (zeros if the node never communicated).
    #[must_use]
    pub fn node(&self, id: NodeId) -> NodeTraffic {
        self.per_node.get(&id).copied().unwrap_or_default()
    }

    /// Total bytes transmitted across all nodes.
    #[must_use]
    pub fn total_tx_bytes(&self) -> u64 {
        self.per_node.values().map(|t| t.tx_bytes).sum()
    }

    /// Total bytes received across all nodes.
    #[must_use]
    pub fn total_rx_bytes(&self) -> u64 {
        self.per_node.values().map(|t| t.rx_bytes).sum()
    }

    /// Total transmit energy across all nodes, joules.
    #[must_use]
    pub fn total_tx_energy_j(&self) -> f64 {
        self.per_node.values().map(|t| t.tx_energy_j).sum()
    }

    /// Total receive energy across all nodes, joules.
    #[must_use]
    pub fn total_rx_energy_j(&self) -> f64 {
        self.per_node.values().map(|t| t.rx_energy_j).sum()
    }

    /// Bytes transmitted carrying a given message kind.
    #[must_use]
    pub fn bytes_by_kind(&self, kind: PacketKind) -> u64 {
        self.per_kind_tx_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Per-kind transmit-byte breakdown in [`PacketKind`] declaration
    /// order (only kinds that actually transmitted appear). The order is
    /// part of the contract: report tables and exposition lines built
    /// from this iterator must be byte-stable across runs.
    pub fn tx_bytes_by_kind(&self) -> impl Iterator<Item = (PacketKind, u64)> + '_ {
        self.per_kind_tx_bytes.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of nodes that have communicated.
    #[must_use]
    pub fn active_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Resets all counters (used between experiment phases so Figure 3 can
    /// isolate the data-aggregation phase from training).
    pub fn reset(&mut self) {
        self.per_node.clear();
        self.per_kind_tx_bytes.clear();
        self.delivered_packets = 0;
        self.dropped_packets = 0;
        self.retransmitted_frames = 0;
        self.airtime_s = 0.0;
        self.latencies_s.clear();
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficAccounting) {
        for (id, t) in &other.per_node {
            let mine = self.per_node.entry(*id).or_default();
            mine.tx_bytes += t.tx_bytes;
            mine.rx_bytes += t.rx_bytes;
            mine.tx_energy_j += t.tx_energy_j;
            mine.rx_energy_j += t.rx_energy_j;
            mine.tx_packets += t.tx_packets;
            mine.rx_packets += t.rx_packets;
        }
        for (kind, bytes) in &other.per_kind_tx_bytes {
            *self.per_kind_tx_bytes.entry(*kind).or_default() += bytes;
        }
        self.delivered_packets += other.delivered_packets;
        self.dropped_packets += other.dropped_packets;
        self.retransmitted_frames += other.retransmitted_frames;
        self.airtime_s += other.airtime_s;
        self.latencies_s.extend_from_slice(&other.latencies_s);
        self.latencies_s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    }
}

/// Nearest-rank percentile over an ascending-sorted sample (0 if empty).
///
/// Public because every latency ledger in the workspace uses the same
/// convention: [`TrafficAccounting`] here and the serving layer's batch
/// latency registry (`orco-serve`) keep their samples ascending-sorted on
/// insert and report p50/p99 through this one function, so percentiles
/// never drift between reports.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
#[must_use]
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "latency percentile must be in [0, 1], got {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 100, 1.0, PacketKind::RawData);
        l.record_tx(NodeId(1), 50, 0.5, PacketKind::LatentVector);
        l.record_rx(NodeId(2), 150, 0.2, PacketKind::RawData);
        assert_eq!(l.total_tx_bytes(), 150);
        assert_eq!(l.total_rx_bytes(), 150);
        assert!((l.total_tx_energy_j() - 1.5).abs() < 1e-12);
        assert_eq!(l.active_nodes(), 3);
        assert_eq!(l.node(NodeId(0)).tx_packets, 1);
        assert_eq!(l.node(NodeId(9)), NodeTraffic::default());
    }

    #[test]
    fn per_kind_breakdown() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 10, 0.0, PacketKind::RawData);
        l.record_tx(NodeId(0), 20, 0.0, PacketKind::RawData);
        l.record_tx(NodeId(0), 5, 0.0, PacketKind::Control);
        assert_eq!(l.bytes_by_kind(PacketKind::RawData), 30);
        assert_eq!(l.bytes_by_kind(PacketKind::Control), 5);
        assert_eq!(l.bytes_by_kind(PacketKind::LatentVector), 0);
    }

    #[test]
    fn per_kind_breakdown_enumerates_in_declaration_order() {
        // Regression: this breakdown once lived in a HashMap, whose
        // randomized iteration order reordered report lines between
        // otherwise identical runs. Insert in scrambled order and demand
        // declaration order back.
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 5, 0.0, PacketKind::Control);
        l.record_tx(NodeId(0), 30, 0.0, PacketKind::RawData);
        l.record_tx(NodeId(0), 20, 0.0, PacketKind::LatentVector);
        let kinds: Vec<_> = l.tx_bytes_by_kind().collect();
        assert_eq!(
            kinds,
            vec![
                (PacketKind::RawData, 30),
                (PacketKind::LatentVector, 20),
                (PacketKind::Control, 5),
            ]
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 10, 0.1, PacketKind::RawData);
        l.reset();
        assert_eq!(l.total_tx_bytes(), 0);
        assert_eq!(l.active_nodes(), 0);
        assert_eq!(l.bytes_by_kind(PacketKind::RawData), 0);
    }

    #[test]
    fn link_stats_track_outcomes_and_percentiles() {
        let mut l = TrafficAccounting::new();
        for i in 1..=100 {
            l.record_delivery(f64::from(i) * 0.01);
        }
        l.record_drop();
        l.record_retransmits(3);
        l.record_airtime(0.5);
        l.record_airtime(0.25);
        let s = l.link_stats();
        assert_eq!(s.delivered_packets, 100);
        assert_eq!(s.dropped_packets, 1);
        assert_eq!(s.retransmitted_frames, 3);
        assert!((s.airtime_s - 0.75).abs() < 1e-12);
        assert!((s.latency_p50_s - 0.50).abs() < 0.011, "p50 {}", s.latency_p50_s);
        assert!((s.latency_p99_s - 0.99).abs() < 0.011, "p99 {}", s.latency_p99_s);
        l.reset();
        assert_eq!(l.link_stats(), LinkStats::default());
    }

    #[test]
    fn empty_ledger_has_zero_percentiles() {
        let l = TrafficAccounting::new();
        assert_eq!(l.latency_percentile_s(0.5), 0.0);
        assert_eq!(l.link_stats(), LinkStats::default());
    }

    #[test]
    fn merge_combines_link_stats() {
        let mut a = TrafficAccounting::new();
        a.record_delivery(1.0);
        a.record_drop();
        let mut b = TrafficAccounting::new();
        b.record_delivery(3.0);
        b.record_retransmits(2);
        b.record_airtime(0.1);
        a.merge(&b);
        let s = a.link_stats();
        assert_eq!(s.delivered_packets, 2);
        assert_eq!(s.dropped_packets, 1);
        assert_eq!(s.retransmitted_frames, 2);
        assert!((s.latency_p99_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficAccounting::new();
        a.record_tx(NodeId(0), 10, 0.1, PacketKind::RawData);
        let mut b = TrafficAccounting::new();
        b.record_tx(NodeId(0), 15, 0.2, PacketKind::RawData);
        b.record_rx(NodeId(1), 25, 0.05, PacketKind::RawData);
        a.merge(&b);
        assert_eq!(a.node(NodeId(0)).tx_bytes, 25);
        assert_eq!(a.node(NodeId(1)).rx_bytes, 25);
        assert_eq!(a.bytes_by_kind(PacketKind::RawData), 25);
    }
}
