//! Per-node traffic and energy accounting.
//!
//! Figure 3 of the paper ("Transmitted KB" for 1 000 / 10 000 images) is a
//! pure accounting quantity; this module is its source of truth. Every
//! transmission in the simulator lands here.

use std::collections::{BTreeMap, HashMap};

use crate::node::NodeId;
use crate::packet::PacketKind;

/// Aggregated counters for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeTraffic {
    /// Bytes transmitted (wire bytes: payload + headers).
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Joules spent transmitting.
    pub tx_energy_j: f64,
    /// Joules spent receiving.
    pub rx_energy_j: f64,
    /// Packets sent.
    pub tx_packets: u64,
    /// Packets received.
    pub rx_packets: u64,
}

/// Workspace-wide traffic ledger.
///
/// # Examples
///
/// ```
/// use orco_wsn::{accounting::TrafficAccounting, NodeId, PacketKind};
///
/// let mut ledger = TrafficAccounting::new();
/// ledger.record_tx(NodeId(0), 100, 1e-6, PacketKind::RawData);
/// ledger.record_rx(NodeId(1), 100, 5e-7, PacketKind::RawData);
/// assert_eq!(ledger.total_tx_bytes(), 100);
/// assert_eq!(ledger.bytes_by_kind(PacketKind::RawData), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficAccounting {
    // Ordered map: the energy totals are f64 sums over all nodes, and a
    // hash map's randomized iteration order would make those sums differ
    // in the last ulps between otherwise identical runs.
    per_node: BTreeMap<NodeId, NodeTraffic>,
    per_kind_tx_bytes: HashMap<PacketKind, u64>,
}

impl TrafficAccounting {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transmission by `node`.
    pub fn record_tx(&mut self, node: NodeId, wire_bytes: u64, energy_j: f64, kind: PacketKind) {
        let t = self.per_node.entry(node).or_default();
        t.tx_bytes += wire_bytes;
        t.tx_energy_j += energy_j;
        t.tx_packets += 1;
        *self.per_kind_tx_bytes.entry(kind).or_default() += wire_bytes;
    }

    /// Records a reception by `node`.
    pub fn record_rx(&mut self, node: NodeId, wire_bytes: u64, energy_j: f64, _kind: PacketKind) {
        let t = self.per_node.entry(node).or_default();
        t.rx_bytes += wire_bytes;
        t.rx_energy_j += energy_j;
        t.rx_packets += 1;
    }

    /// Counters for one node (zeros if the node never communicated).
    #[must_use]
    pub fn node(&self, id: NodeId) -> NodeTraffic {
        self.per_node.get(&id).copied().unwrap_or_default()
    }

    /// Total bytes transmitted across all nodes.
    #[must_use]
    pub fn total_tx_bytes(&self) -> u64 {
        self.per_node.values().map(|t| t.tx_bytes).sum()
    }

    /// Total bytes received across all nodes.
    #[must_use]
    pub fn total_rx_bytes(&self) -> u64 {
        self.per_node.values().map(|t| t.rx_bytes).sum()
    }

    /// Total transmit energy across all nodes, joules.
    #[must_use]
    pub fn total_tx_energy_j(&self) -> f64 {
        self.per_node.values().map(|t| t.tx_energy_j).sum()
    }

    /// Total receive energy across all nodes, joules.
    #[must_use]
    pub fn total_rx_energy_j(&self) -> f64 {
        self.per_node.values().map(|t| t.rx_energy_j).sum()
    }

    /// Bytes transmitted carrying a given message kind.
    #[must_use]
    pub fn bytes_by_kind(&self, kind: PacketKind) -> u64 {
        self.per_kind_tx_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Number of nodes that have communicated.
    #[must_use]
    pub fn active_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Resets all counters (used between experiment phases so Figure 3 can
    /// isolate the data-aggregation phase from training).
    pub fn reset(&mut self) {
        self.per_node.clear();
        self.per_kind_tx_bytes.clear();
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &TrafficAccounting) {
        for (id, t) in &other.per_node {
            let mine = self.per_node.entry(*id).or_default();
            mine.tx_bytes += t.tx_bytes;
            mine.rx_bytes += t.rx_bytes;
            mine.tx_energy_j += t.tx_energy_j;
            mine.rx_energy_j += t.rx_energy_j;
            mine.tx_packets += t.tx_packets;
            mine.rx_packets += t.rx_packets;
        }
        for (kind, bytes) in &other.per_kind_tx_bytes {
            *self.per_kind_tx_bytes.entry(*kind).or_default() += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 100, 1.0, PacketKind::RawData);
        l.record_tx(NodeId(1), 50, 0.5, PacketKind::LatentVector);
        l.record_rx(NodeId(2), 150, 0.2, PacketKind::RawData);
        assert_eq!(l.total_tx_bytes(), 150);
        assert_eq!(l.total_rx_bytes(), 150);
        assert!((l.total_tx_energy_j() - 1.5).abs() < 1e-12);
        assert_eq!(l.active_nodes(), 3);
        assert_eq!(l.node(NodeId(0)).tx_packets, 1);
        assert_eq!(l.node(NodeId(9)), NodeTraffic::default());
    }

    #[test]
    fn per_kind_breakdown() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 10, 0.0, PacketKind::RawData);
        l.record_tx(NodeId(0), 20, 0.0, PacketKind::RawData);
        l.record_tx(NodeId(0), 5, 0.0, PacketKind::Control);
        assert_eq!(l.bytes_by_kind(PacketKind::RawData), 30);
        assert_eq!(l.bytes_by_kind(PacketKind::Control), 5);
        assert_eq!(l.bytes_by_kind(PacketKind::LatentVector), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut l = TrafficAccounting::new();
        l.record_tx(NodeId(0), 10, 0.1, PacketKind::RawData);
        l.reset();
        assert_eq!(l.total_tx_bytes(), 0);
        assert_eq!(l.active_nodes(), 0);
        assert_eq!(l.bytes_by_kind(PacketKind::RawData), 0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficAccounting::new();
        a.record_tx(NodeId(0), 10, 0.1, PacketKind::RawData);
        let mut b = TrafficAccounting::new();
        b.record_tx(NodeId(0), 15, 0.2, PacketKind::RawData);
        b.record_rx(NodeId(1), 25, 0.05, PacketKind::RawData);
        a.merge(&b);
        assert_eq!(a.node(NodeId(0)).tx_bytes, 25);
        assert_eq!(a.node(NodeId(1)).rx_bytes, 25);
        assert_eq!(a.bytes_by_kind(PacketKind::RawData), 25);
    }
}
