//! Cluster formation and cluster-head (data aggregator) selection.
//!
//! The paper assumes "the data aggregator is usually chosen based on its
//! proximity to other IoT devices within the same cluster" (§III-E), citing
//! the WSN clustering literature (\[18\]–\[20\]). This module provides the
//! selection strategies those works use — centroid proximity, residual
//! energy, and a LEACH-style randomized rotation — plus k-means-style
//! partitioning of a field into multiple clusters for the multi-cluster
//! scalability extension (the paper's stated future work).

use orco_tensor::OrcoRng;

use crate::geometry::{centroid, Point};
use crate::node::NodeId;

/// How to pick the cluster head among candidate devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeadSelection {
    /// The device nearest the cluster centroid (the paper's §III-E
    /// assumption — minimizes expected intra-cluster radio energy).
    CentroidProximity,
    /// The device with the most residual energy (extends cluster lifetime).
    MaxEnergy,
    /// LEACH-style randomized rotation: every alive device is eligible
    /// with equal probability each round, spreading the head's energy
    /// burden over time.
    RandomRotation,
}

/// A candidate device for head selection.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Device id.
    pub id: NodeId,
    /// Device position.
    pub position: Point,
    /// Remaining battery, joules.
    pub energy_j: f64,
}

/// Selects a cluster head among `candidates`.
///
/// Returns `None` when `candidates` is empty. Ties resolve to the lowest
/// node id, keeping selection deterministic.
#[must_use]
pub fn select_head(
    candidates: &[Candidate],
    strategy: HeadSelection,
    rng: &mut OrcoRng,
) -> Option<NodeId> {
    if candidates.is_empty() {
        return None;
    }
    match strategy {
        HeadSelection::CentroidProximity => {
            let c = centroid(&candidates.iter().map(|d| d.position).collect::<Vec<_>>());
            candidates
                .iter()
                .min_by(|a, b| {
                    a.position
                        .distance_sq(c)
                        .partial_cmp(&b.position.distance_sq(c))
                        .expect("finite distances")
                        .then(a.id.cmp(&b.id))
                })
                .map(|d| d.id)
        }
        HeadSelection::MaxEnergy => candidates
            .iter()
            .max_by(|a, b| {
                a.energy_j.partial_cmp(&b.energy_j).expect("finite energies").then(b.id.cmp(&a.id))
            })
            .map(|d| d.id),
        HeadSelection::RandomRotation => Some(candidates[rng.below(candidates.len())].id),
    }
}

/// Partition of devices into `k` clusters by position.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `assignments[i]` is the cluster index of `devices[i]`.
    pub assignments: Vec<usize>,
    /// Final cluster centroids.
    pub centroids: Vec<Point>,
}

impl Partition {
    /// Indices of the devices assigned to `cluster`.
    #[must_use]
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, &c)| c == cluster).map(|(i, _)| i).collect()
    }

    /// Number of clusters.
    #[must_use]
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

/// Lloyd's k-means over device positions (deterministic given the RNG),
/// used to carve a large field into clusters for multi-cluster OrcoDCS.
///
/// # Panics
///
/// Panics if `k == 0` or `k > positions.len()`.
#[must_use]
pub fn kmeans_clusters(positions: &[Point], k: usize, rng: &mut OrcoRng) -> Partition {
    assert!(k > 0, "kmeans: k must be non-zero");
    assert!(k <= positions.len(), "kmeans: k={k} > devices {}", positions.len());

    // Initialize with k distinct devices.
    let seeds = rng.sample_indices(positions.len(), k);
    let mut centroids: Vec<Point> = seeds.iter().map(|&i| positions[i]).collect();
    let mut assignments = vec![0usize; positions.len()];

    for _iteration in 0..50 {
        // Assign.
        let mut changed = false;
        for (i, p) in positions.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    p.distance_sq(**a).partial_cmp(&p.distance_sq(**b)).expect("finite")
                })
                .map(|(c, _)| c)
                .expect("k ≥ 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        for (c, centroid_slot) in centroids.iter_mut().enumerate() {
            let members: Vec<Point> = positions
                .iter()
                .zip(&assignments)
                .filter(|(_, &a)| a == c)
                .map(|(p, _)| *p)
                .collect();
            if !members.is_empty() {
                *centroid_slot = centroid(&members);
            }
        }
        if !changed {
            break;
        }
    }
    Partition { assignments, centroids }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate { id: NodeId(0), position: Point::new(0.0, 0.0), energy_j: 1.0 },
            Candidate { id: NodeId(1), position: Point::new(10.0, 0.0), energy_j: 3.0 },
            Candidate { id: NodeId(2), position: Point::new(5.0, 1.0), energy_j: 2.0 },
        ]
    }

    #[test]
    fn centroid_proximity_picks_central_device() {
        let mut rng = OrcoRng::from_label("cluster", 0);
        // Centroid is (5, 1/3); device 2 at (5, 1) is nearest.
        let head = select_head(&candidates(), HeadSelection::CentroidProximity, &mut rng);
        assert_eq!(head, Some(NodeId(2)));
    }

    #[test]
    fn max_energy_picks_fullest_battery() {
        let mut rng = OrcoRng::from_label("cluster", 1);
        let head = select_head(&candidates(), HeadSelection::MaxEnergy, &mut rng);
        assert_eq!(head, Some(NodeId(1)));
    }

    #[test]
    fn rotation_covers_all_devices_over_time() {
        let mut rng = OrcoRng::from_label("cluster", 2);
        // orco-lint: allow(unordered-map, reason = "test-local coverage set; only its len() is observed, never its order")
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(
                select_head(&candidates(), HeadSelection::RandomRotation, &mut rng).unwrap(),
            );
        }
        assert_eq!(seen.len(), 3, "rotation should eventually pick everyone");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut rng = OrcoRng::from_label("cluster", 3);
        assert_eq!(select_head(&[], HeadSelection::MaxEnergy, &mut rng), None);
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut rng = OrcoRng::from_label("kmeans", 0);
        let mut positions = Vec::new();
        for i in 0..10 {
            positions.push(Point::new(i as f64 * 0.1, 0.0)); // blob A near x=0
            positions.push(Point::new(100.0 + i as f64 * 0.1, 0.0)); // blob B near x=100
        }
        let partition = kmeans_clusters(&positions, 2, &mut rng);
        assert_eq!(partition.k(), 2);
        // All of blob A in one cluster, all of blob B in the other.
        let a_cluster = partition.assignments[0];
        for i in (0..20).step_by(2) {
            assert_eq!(partition.assignments[i], a_cluster);
        }
        let b_cluster = partition.assignments[1];
        assert_ne!(a_cluster, b_cluster);
        for i in (1..20).step_by(2) {
            assert_eq!(partition.assignments[i], b_cluster);
        }
        assert_eq!(partition.members(a_cluster).len(), 10);
    }

    #[test]
    fn kmeans_k_equals_n_is_identity_like() {
        let mut rng = OrcoRng::from_label("kmeans", 1);
        let positions = vec![Point::new(0.0, 0.0), Point::new(50.0, 50.0)];
        let partition = kmeans_clusters(&positions, 2, &mut rng);
        assert_ne!(partition.assignments[0], partition.assignments[1]);
    }

    #[test]
    #[should_panic(expected = "kmeans")]
    fn kmeans_rejects_zero_k() {
        let mut rng = OrcoRng::from_label("kmeans", 2);
        let _ = kmeans_clusters(&[Point::origin()], 0, &mut rng);
    }
}
