//! Error types for the WSN simulator.

use std::fmt;

use crate::node::NodeId;

/// Errors produced by the WSN simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WsnError {
    /// A node id referenced an unknown node.
    UnknownNode {
        /// The offending id.
        id: NodeId,
    },
    /// An operation required an alive node, but the node was dead.
    NodeDead {
        /// The dead node.
        id: NodeId,
    },
    /// A transmission failed (link loss after all retries).
    TransmissionFailed {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// Retries attempted before giving up.
        attempts: u32,
    },
    /// A topology operation was invalid (e.g. building a tree with no nodes).
    InvalidTopology {
        /// Human-readable description.
        detail: String,
    },
    /// A node exhausted its energy budget mid-operation.
    EnergyExhausted {
        /// The depleted node.
        id: NodeId,
    },
}

impl fmt::Display for WsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsnError::UnknownNode { id } => write!(f, "unknown node {id}"),
            WsnError::NodeDead { id } => write!(f, "node {id} is dead"),
            WsnError::TransmissionFailed { from, to, attempts } => {
                write!(f, "transmission {from} -> {to} failed after {attempts} attempts")
            }
            WsnError::InvalidTopology { detail } => write!(f, "invalid topology: {detail}"),
            WsnError::EnergyExhausted { id } => write!(f, "node {id} exhausted its energy"),
        }
    }
}

impl std::error::Error for WsnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let id = NodeId(3);
        assert_eq!(WsnError::UnknownNode { id }.to_string(), "unknown node n3");
        assert!(WsnError::TransmissionFailed { from: NodeId(1), to: NodeId(2), attempts: 3 }
            .to_string()
            .contains("after 3 attempts"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<WsnError>();
    }
}
