//! The simulated clock.
//!
//! The paper's time axes ("Time (s)" in Figure 4) are *simulated* seconds:
//! deterministic functions of bytes moved and FLOPs executed, independent of
//! the host machine. `SimClock` is a monotone accumulator those costs are
//! added to.

/// A monotone simulated clock measured in seconds.
///
/// # Examples
///
/// ```
/// use orco_wsn::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(1.5);
/// clock.advance(0.25);
/// assert_eq!(clock.now_s(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite (time never goes backwards).
    pub fn advance(&mut self, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "SimClock::advance: dt must be ≥ 0, got {dt_s}");
        self.now_s += dt_s;
    }

    /// Advances to an absolute time, if later than now (e.g. synchronizing
    /// with a parallel actor's completion).
    pub fn advance_to(&mut self, t_s: f64) {
        if t_s > self.now_s {
            self.now_s = t_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.0);
        c.advance(3.0);
        assert_eq!(c.now_s(), 5.0);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance_to(5.0);
        assert_eq!(c.now_s(), 10.0);
        c.advance_to(12.0);
        assert_eq!(c.now_s(), 12.0);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }
}
