//! The simulated clock.
//!
//! The paper's time axes ("Time (s)" in Figure 4) are *simulated* seconds:
//! deterministic functions of bytes moved and FLOPs executed, independent of
//! the host machine. `SimClock` is a monotone accumulator those costs are
//! added to.
//!
//! Every clock in the workspace — the analytic [`SimClock`], the per-node
//! clocks of the `orco-sim` discrete-event backend — shares one
//! monotonicity contract, checked by [`assert_monotone_dt`]: time is
//! measured in **seconds as `f64`**, steps are finite and non-negative, and
//! absolute synchronization ([`SimClock::advance_to`]) never rewinds.

/// Asserts the shared monotonicity contract for a simulated time step.
///
/// All simulated time in this workspace is **seconds, stored as `f64`**.
/// A valid step is finite and non-negative; anything else is a programming
/// error in a cost model, so this panics rather than returning an error.
/// Both the analytic [`SimClock`] and the event-driven per-node clocks of
/// `orco-sim` funnel their advances through this one check.
///
/// # Panics
///
/// Panics if `dt_s` is negative, NaN, or infinite.
#[inline]
pub fn assert_monotone_dt(dt_s: f64) {
    assert!(
        dt_s.is_finite() && dt_s >= 0.0,
        "simulated clock: dt must be a finite number of seconds ≥ 0, got {dt_s}"
    );
}

/// A monotone simulated clock measured in seconds.
///
/// # Examples
///
/// ```
/// use orco_wsn::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(1.5);
/// clock.advance(0.25);
/// assert_eq!(clock.now_s(), 1.75);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` violates [`assert_monotone_dt`] (time never goes
    /// backwards).
    pub fn advance(&mut self, dt_s: f64) {
        assert_monotone_dt(dt_s);
        self.now_s += dt_s;
    }

    /// Advances to an absolute time, if later than now (e.g. synchronizing
    /// with a parallel actor's completion). Earlier times (including
    /// `-∞`) are ignored — the clock never rewinds.
    ///
    /// # Panics
    ///
    /// Panics if `t_s` is NaN or `+∞`: a non-finite target means a cost
    /// model upstream produced garbage, and the shared monotonicity
    /// checkpoint is where that must surface.
    pub fn advance_to(&mut self, t_s: f64) {
        assert!(!t_s.is_nan(), "simulated clock: advance_to target must not be NaN");
        if t_s > self.now_s {
            assert_monotone_dt(t_s - self.now_s);
            self.now_s = t_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now_s(), 0.0);
        c.advance(2.0);
        c.advance(3.0);
        assert_eq!(c.now_s(), 5.0);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = SimClock::new();
        c.advance(10.0);
        c.advance_to(5.0);
        assert_eq!(c.now_s(), 10.0);
        c.advance_to(12.0);
        assert_eq!(c.now_s(), 12.0);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn infinite_advance_to_panics() {
        SimClock::new().advance_to(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_advance_to_panics() {
        SimClock::new().advance_to(f64::NAN);
    }

    #[test]
    fn helper_accepts_zero_and_finite_steps() {
        assert_monotone_dt(0.0);
        assert_monotone_dt(1e-12);
        assert_monotone_dt(3600.0);
    }
}
