//! 2-D geometry for node placement.

use orco_tensor::OrcoRng;

/// A point in the 2-D deployment field, in meters.
///
/// # Examples
///
/// ```
/// use orco_wsn::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[must_use]
    pub fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when only comparing).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }
}

/// Scatters `n` points uniformly over a `side`×`side` meter field.
///
/// # Panics
///
/// Panics if `side` is not positive.
#[must_use]
pub fn scatter_uniform(n: usize, side: f64, rng: &mut OrcoRng) -> Vec<Point> {
    assert!(side > 0.0, "scatter_uniform: side must be positive");
    (0..n)
        .map(|_| {
            Point::new(rng.uniform(0.0, side as f32) as f64, rng.uniform(0.0, side as f32) as f64)
        })
        .collect()
}

/// Centroid of a set of points (origin for an empty set).
#[must_use]
pub fn centroid(points: &[Point]) -> Point {
    if points.is_empty() {
        return Point::origin();
    }
    let n = points.len() as f64;
    Point::new(
        points.iter().map(|p| p.x).sum::<f64>() / n,
        points.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Index of the point nearest to `target` (`None` for an empty set).
#[must_use]
pub fn nearest(points: &[Point], target: Point) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.distance_sq(target).partial_cmp(&b.distance_sq(target)).expect("distances are finite")
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_symmetry_and_identity() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
        assert!(a.distance_sq(b) > 0.0);
    }

    #[test]
    fn scatter_within_bounds_and_deterministic() {
        let mut rng1 = OrcoRng::from_label("scatter", 0);
        let mut rng2 = OrcoRng::from_label("scatter", 0);
        let p1 = scatter_uniform(100, 50.0, &mut rng1);
        let p2 = scatter_uniform(100, 50.0, &mut rng2);
        assert_eq!(p1.len(), 100);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a, b);
        }
        assert!(p1.iter().all(|p| (0.0..50.0).contains(&p.x) && (0.0..50.0).contains(&p.y)));
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = centroid(&pts);
        assert_eq!(c, Point::new(1.0, 1.0));
        assert_eq!(centroid(&[]), Point::origin());
    }

    #[test]
    fn nearest_finds_closest() {
        let pts = [Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(4.9, 0.0)];
        assert_eq!(nearest(&pts, Point::new(5.0, 0.0)), Some(2));
        assert_eq!(nearest(&[], Point::origin()), None);
    }
}
