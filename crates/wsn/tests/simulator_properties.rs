//! Property-based tests of the WSN simulator's conservation and
//! monotonicity laws: bytes are conserved between senders and receivers,
//! simulated time never rewinds, energy only drains, and the aggregation
//! structures stay sound under arbitrary workloads.

use orco_wsn::{
    DeviceClass, LinkModel, Network, NetworkConfig, PacketKind, Point, RadioModel, HEADER_BYTES,
};
use proptest::prelude::*;

fn net(devices: usize, seed: u64) -> Network {
    Network::new(NetworkConfig { num_devices: devices, seed, ..Default::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a loss-free network every transmitted byte is received: the tx
    /// and rx ledgers agree exactly.
    #[test]
    fn bytes_are_conserved_without_loss(
        devices in 2usize..20,
        seed in 0u64..1000,
        payloads in prop::collection::vec(1u64..4096, 1..12),
    ) {
        let mut net = net(devices, seed);
        let agg = net.aggregator();
        for (i, bytes) in payloads.iter().enumerate() {
            let from = net.devices()[i % devices];
            net.transmit(from, agg, *bytes, PacketKind::RawData).expect("clean link");
        }
        prop_assert_eq!(net.accounting().total_tx_bytes(), net.accounting().total_rx_bytes());
    }

    /// Wire bytes always exceed payload bytes by at least one header.
    #[test]
    fn headers_always_cost(devices in 2usize..8, bytes in 1u64..10_000, seed in 0u64..1000) {
        let mut net = net(devices, seed);
        let d = net.devices()[0];
        let agg = net.aggregator();
        net.transmit(d, agg, bytes, PacketKind::RawData).expect("clean link");
        prop_assert!(net.accounting().node(d).tx_bytes >= bytes + HEADER_BYTES);
    }

    /// The simulated clock is monotone under any sequence of operations.
    #[test]
    fn clock_is_monotone(
        devices in 2usize..12,
        seed in 0u64..1000,
        ops in prop::collection::vec(0u8..4, 1..16),
    ) {
        let mut net = net(devices, seed);
        let mut last = net.now_s();
        for (i, op) in ops.iter().enumerate() {
            let d = net.devices()[i % devices];
            let _ = match op {
                0 => net.transmit(d, net.aggregator(), 64, PacketKind::RawData).map(|_| ()),
                1 => net.raw_aggregation_round(4).map(|_| ()),
                2 => net.compressed_aggregation_round(128, 64).map(|_| ()),
                _ => net.compute(d, 10_000).map(|_| ()),
            };
            prop_assert!(net.now_s() >= last, "clock went backwards");
            last = net.now_s();
        }
    }

    /// Device batteries never increase.
    #[test]
    fn energy_only_drains(devices in 2usize..10, seed in 0u64..1000, rounds in 1usize..6) {
        let mut net = net(devices, seed);
        let initial = DeviceClass::IotDevice.initial_energy_j();
        for _ in 0..rounds {
            let _ = net.raw_aggregation_round(8);
        }
        for d in net.devices() {
            let e = net.node(*d).expect("exists").energy_j();
            prop_assert!(e <= initial, "battery grew: {e}");
        }
    }

    /// Radio energy accounting matches the model exactly for a single hop.
    #[test]
    fn tx_energy_matches_radio_model(bytes in 1u64..2000, seed in 0u64..1000) {
        let mut network = net(4, seed);
        let d = network.devices()[0];
        let agg = network.aggregator();
        let dist = network.node(d).unwrap().position().distance(
            network.node(agg).unwrap().position());
        network.transmit(d, agg, bytes, PacketKind::RawData).expect("clean link");
        let ledger = network.accounting().node(d);
        let expected = RadioModel::default().tx_energy_j(ledger.tx_bytes, dist);
        prop_assert!((ledger.tx_energy_j - expected).abs() < 1e-12);
    }

    /// Raw aggregation delivers every alive device's payload to the
    /// aggregator regardless of which devices have been killed.
    #[test]
    fn raw_aggregation_delivers_all_alive(
        devices in 3usize..16,
        seed in 0u64..1000,
        kill_mask in prop::collection::vec(any::<bool>(), 3..16),
    ) {
        let mut net = net(devices, seed);
        for (i, kill) in kill_mask.iter().enumerate().take(devices) {
            // Keep at least one device alive.
            if *kill && net.alive_devices().len() > 1 {
                let _ = net.kill_device(net.devices()[i]);
            }
        }
        let alive = net.alive_devices().len() as u64;
        net.reset_accounting();
        net.raw_aggregation_round(4).expect("round runs");
        let rx_payload_floor = alive * 4;
        let agg_rx = net.accounting().node(net.aggregator()).rx_bytes;
        prop_assert!(agg_rx >= rx_payload_floor,
            "aggregator got {agg_rx} < floor {rx_payload_floor} for {alive} devices");
        prop_assert!(net.tree().check_invariants());
    }

    /// Hybrid aggregation never costs more bytes than plain CS chaining.
    #[test]
    fn hybrid_never_exceeds_plain(
        devices in 2usize..24,
        latent_bytes in 8u64..2048,
        seed in 0u64..1000,
    ) {
        let mut plain = net(devices, seed);
        let mut hybrid = net(devices, seed);
        plain.compressed_aggregation_round(latent_bytes, 0).expect("runs");
        hybrid.hybrid_aggregation_round(latent_bytes, 4, 0).expect("runs");
        prop_assert!(
            hybrid.accounting().total_tx_bytes() <= plain.accounting().total_tx_bytes()
        );
    }

    /// Faster links never make a transmission slower.
    #[test]
    fn bandwidth_monotonicity(bytes in 1u64..100_000, bw in 1.0f64..100.0) {
        let slow = LinkModel::new(1e5, 0.01, 0.0);
        let fast = LinkModel::new(1e5 * bw, 0.01, 0.0);
        prop_assert!(fast.transmission_time_s(bytes) <= slow.transmission_time_s(bytes));
    }

    /// Deployment geometry: every device lands inside the field.
    #[test]
    fn devices_inside_field(devices in 1usize..64, seed in 0u64..1000) {
        let side = 100.0;
        let network = Network::new(NetworkConfig {
            num_devices: devices,
            field_side_m: side,
            seed,
            ..Default::default()
        });
        for d in network.devices() {
            let p = network.node(*d).expect("exists").position();
            prop_assert!(p.x >= 0.0 && p.x < side && p.y >= 0.0 && p.y < side);
        }
        // The aggregator sits at the centre.
        let agg = network.node(network.aggregator()).expect("exists").position();
        prop_assert!(agg.distance(Point::new(side / 2.0, side / 2.0)) < 1e-9);
    }
}
