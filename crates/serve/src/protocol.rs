//! The gateway's length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*: a fixed 12-byte header
//! followed by a payload. All integers and floats are **fixed
//! little-endian** — no varints, no alignment padding — so encoding is a
//! straight memcpy and a frame's length is known after reading 12 bytes:
//!
//! ```text
//! offset  size  field
//! 0       4     magic          "ORCO" as a little-endian u32
//! 4       2     version        PROTOCOL_VERSION
//! 6       2     message type   Message discriminant
//! 8       4     payload length bytes after the header
//! 12      n     payload        message-specific fields
//! ```
//!
//! Matrices travel as `rows: u32, cols: u32` followed by `rows × cols`
//! f32 values in row-major order; the bytes are the exact bit patterns of
//! the floats, so a round trip through the wire is **bit-identical**
//! (property-tested in `tests/protocol_roundtrip.rs`, NaNs included).
//!
//! Decoding is total: any byte sequence either parses into a [`Message`]
//! or yields a typed [`WireError`] (truncated, bad magic, unknown type,
//! length mismatch, …) — the gateway never panics on attacker-controlled
//! input and replies with [`Message::ErrorReply`] instead.

use std::fmt;
use std::io::{self, Read};

use orco_tensor::Matrix;
use orcodcs::OrcoError;

use crate::stats::{StatsSnapshot, SNAPSHOT_CAP};

/// Frame magic: "ORCO" read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ORCO");

/// Version of the wire protocol spoken by this build. Version 5 added
/// the rollout plane: [`ModelVersion`] rides the wire (`HelloAck`
/// advertises the active version; `Decoded`/`StreamFrames` carry the
/// version that produced each batch so clients stay correct mid-swap),
/// the `RolloutPropose`/`RolloutAck`/`ActivateVersion`/`VersionQuery`/
/// `VersionReply` lifecycle messages (MAC'd like `Register`), and
/// widened [`StatsSnapshot`] with drift/swap/rollback telemetry.
/// Version 4 added the observability plane: a client-minted 64-bit
/// trace id on `PushFrames`/`PullDecoded`/`Subscribe` (0 = untraced),
/// per-shard rows and a stats piggyback on `Heartbeat` in
/// [`StatsSnapshot`], the `MetricsRequest`/`MetricsReply` scrape pair,
/// and the directory's `FleetStatsQuery`/`FleetStatsReply` fleet view.
/// Version 3 added the fleet plane (directory queries, redirects,
/// gateway registration/heartbeats, streaming subscriptions),
/// authenticated `Hello` (nonce + MAC), and widened [`StatsSnapshot`]
/// with streaming/redirect counters; version 2 widened
/// [`StatsSnapshot`] with per-reason flush counters. Older frames are
/// rejected with [`WireError::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u16 = 5;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a data-bearing frame's declared payload length
/// (`PushFrames`/`Decoded`). Every other message type has a much smaller
/// per-type bound (see `payload_cap` in this module), and all bounds are
/// enforced **before** any payload allocation, so a corrupt or hostile
/// length field cannot make the gateway reserve memory a real message of
/// that type could never use.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Upper bound on an [`Message::ErrorReply`] detail string.
const MAX_ERROR_DETAIL: usize = 1 << 16;

/// Upper bound on a gateway address string carried in directory
/// messages ([`Message::Redirect`], [`GatewayEntry`]).
pub const MAX_ADDR: usize = 256;

/// Upper bound on the number of [`GatewayEntry`] records in one
/// directory membership list.
pub const MAX_MEMBERS: usize = 1024;

/// Worst-case encoded size of one [`GatewayEntry`]: id + length-prefixed
/// address.
const ENTRY_CAP: usize = 8 + 4 + MAX_ADDR;

/// Worst-case encoded size of an epoch'd membership list: epoch + count
/// + entries. Shared by `DirectoryReply`, `RegisterAck`, `HeartbeatAck`.
const MEMBERSHIP_CAP: usize = 8 + 4 + MAX_MEMBERS * ENTRY_CAP;

/// Upper bound on a [`Message::MetricsReply`] exposition text.
pub const MAX_METRICS_TEXT: usize = 1 << 20;

/// Worst-case encoded size of one [`Message::FleetStatsReply`] entry:
/// gateway id + liveness flag + snapshot.
const FLEET_STATS_ENTRY_CAP: usize = 8 + 1 + SNAPSHOT_CAP;

/// Upper bound on a [`ModelVersion`] label string.
pub const MAX_LABEL: usize = 64;

/// Worst-case encoded size of one [`ModelVersion`]: id + length-prefixed
/// label + frame/code dims.
const VERSION_CAP: usize = 8 + 4 + MAX_LABEL + 8;

/// The largest payload each message type may declare. Tiny fixed-layout
/// messages (acks, hellos, stats) get exact bounds; only the two
/// matrix-bearing types may approach [`MAX_PAYLOAD`]. Unknown types are
/// rejected here, before any payload is read.
fn payload_cap(msg_type: u16) -> Result<usize, WireError> {
    Ok(match msg_type {
        1 => 24,                   // Hello: client_id, nonce, mac
        2 => 20,                   // HelloAck: version, shards, dims, active_version
        3 | 7 | 23 => MAX_PAYLOAD, // PushFrames / Decoded / StreamFrames: cluster + matrix
        4 => 4,                    // PushAck: accepted
        5 => 8,                    // Busy: queued, capacity
        6 => 20,                   // PullDecoded: cluster_id + max_frames + trace
        8 | 10 | 11 | 14 => 0,     // StatsRequest / Shutdown / ShutdownAck / DirectoryQuery
        // StatsReply: one StatsSnapshot. The protocol round-trip
        // proptest draws random snapshots, so a stale bound here fails
        // immediately when the snapshot grows.
        9 => SNAPSHOT_CAP,
        12 => 2 + 4 + MAX_ERROR_DETAIL, // ErrorReply: code + string
        13 => 8 + 8 + 4 + MAX_ADDR,     // Redirect: cluster, epoch, addr
        15 | 17 | 19 => MEMBERSHIP_CAP, // DirectoryReply / RegisterAck / HeartbeatAck
        16 => 8 + 4 + MAX_ADDR + 16,    // Register: gateway_id, addr, nonce, mac
        18 => 16 + 1 + SNAPSHOT_CAP,    // Heartbeat: gateway_id, epoch, stats piggyback
        20 => 16,                       // Subscribe: cluster_id + trace
        21 => 12,                       // SubscribeAck: cluster_id, backlog
        22 => 8,                        // Unsubscribe: cluster_id
        24 | 26 => 0,                   // MetricsRequest / FleetStatsQuery
        25 => 4 + MAX_METRICS_TEXT,     // MetricsReply: exposition text
        // FleetStatsReply: epoch, evictions, count, entries.
        27 => 8 + 8 + 4 + MAX_MEMBERS * FLEET_STATS_ENTRY_CAP,
        28 => MAX_PAYLOAD, // RolloutPropose: version + weight/bias matrices + mac
        29 => 8 + 1 + 4 + MAX_ERROR_DETAIL, // RolloutAck: version_id, accepted, detail
        30 => 24,          // ActivateVersion: version_id, nonce, mac
        31 => 0,           // VersionQuery
        // VersionReply: active + optional staged/prior + rollbacks + drift.
        32 => 3 * VERSION_CAP + 2 + 8 + 1,
        other => return Err(WireError::UnknownType { found: other }),
    })
}

/// Typed decoding failures. Every malformed input maps to exactly one of
/// these; tests assert on the variants, and the gateway turns them into
/// [`Message::ErrorReply`] frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field's `needed` bytes were available.
    Truncated {
        /// Bytes the current field required.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: u32,
    },
    /// The speaker uses a protocol version this build does not know.
    UnsupportedVersion {
        /// The version field received.
        found: u16,
    },
    /// The message-type field names no known [`Message`].
    UnknownType {
        /// The type field received.
        found: u16,
    },
    /// The header's payload length disagrees with the bytes present.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The declared payload length exceeds the message type's bound.
    Oversized {
        /// Payload length declared in the header.
        declared: usize,
    },
    /// A structurally valid frame carried inconsistent content.
    Corrupt {
        /// What was inconsistent.
        detail: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: field needs {needed} bytes, {got} remain")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (expected {MAGIC:#010x})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownType { found } => write!(f, "unknown message type {found}"),
            WireError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "payload length mismatch: header declares {declared} bytes, {actual} present"
                )
            }
            WireError::Oversized { declared } => {
                write!(f, "declared payload of {declared} bytes exceeds the message type's bound")
            }
            WireError::Corrupt { detail } => write!(f, "corrupt payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for OrcoError {
    fn from(e: WireError) -> Self {
        OrcoError::Io(io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Machine-readable category carried by [`Message::ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or arrived where a reply belongs.
    BadRequest,
    /// Frame data did not match the codec's frame width.
    Shape,
    /// The gateway is shutting down and accepts no new work.
    ShuttingDown,
    /// The codec or gateway failed internally.
    Internal,
    /// The `Hello`/`Register` MAC did not verify against the shared
    /// secret; the connection is rejected before any stateful work.
    Unauthorized,
}

impl ErrorCode {
    fn to_u16(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Shape => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Internal => 4,
            ErrorCode::Unauthorized => 5,
        }
    }

    fn from_u16(v: u16) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::Shape),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::Unauthorized),
            _ => Err(WireError::Corrupt { detail: "unknown error code" }),
        }
    }
}

/// One gateway in the directory's membership list: its fleet-wide id and
/// the address clients dial to reach it ("host:port" for TCP, an opaque
/// token for loopback/DES fleets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayEntry {
    /// Fleet-wide gateway identifier (stable across reconnects).
    pub id: u64,
    /// Dial address clients use to reach the gateway.
    pub addr: String,
}

/// Identity and geometry of one codec model generation as it rides the
/// wire. Version ids are monotonic per gateway lineage: a staged
/// rollout must carry an id strictly greater than the active one, so
/// replayed or reordered proposals can never regress a gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVersion {
    /// Monotonic version identifier (0 = the boot model).
    pub id: u64,
    /// Human-readable label ("seed", "retrain-2024-07", …); at most
    /// [`MAX_LABEL`] bytes.
    pub label: String,
    /// Flattened sensing-frame width the model expects, in f32 elements.
    pub frame_dim: u32,
    /// Encoded code width the model produces, in f32 elements.
    pub code_dim: u32,
}

/// One protocol message. Requests and replies share the enum; the
/// request/reply pairing is fixed (`Hello`→`HelloAck`,
/// `PushFrames`→`PushAck`/`Busy`, `PullDecoded`→`Decoded`,
/// `StatsRequest`→`StatsReply`, `Shutdown`→`ShutdownAck`), and any
/// request can instead draw an [`Message::ErrorReply`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client introduction, MAC'd when the server requires auth.
    ///
    /// `mac` must equal `auth::hello_mac(secret, client_id, nonce)` when
    /// the server was configured with a shared secret; servers without
    /// one ignore both fields. The nonce is caller-chosen (any value);
    /// it keys the MAC so two clients never present identical proof.
    Hello {
        /// Caller-chosen identifier, echoed in logs/diagnostics only.
        client_id: u64,
        /// Caller-chosen MAC nonce.
        nonce: u64,
        /// `hello_mac(secret, client_id, nonce)`, or 0 when unauthenticated.
        mac: u64,
    },
    /// Gateway's answer to [`Message::Hello`], announcing the data-plane
    /// geometry a client needs to build valid pushes.
    HelloAck {
        /// Protocol version the gateway speaks.
        version: u16,
        /// Number of worker shards.
        shards: u16,
        /// Flattened sensing-frame width in f32 elements.
        frame_dim: u32,
        /// Encoded code width in f32 elements.
        code_dim: u32,
        /// Id of the codec model version currently serving (see
        /// [`ModelVersion`]); clients compare it against the `version`
        /// field on [`Message::Decoded`] to detect a mid-session swap.
        active_version: u64,
    },
    /// A batch of raw sensing frames (one per row) for one cluster.
    PushFrames {
        /// Cluster the frames belong to; selects the shard.
        cluster_id: u64,
        /// Client-minted 64-bit trace id; 0 means untraced. A traced
        /// push's journey (push → enqueue → flush → store → pull)
        /// emits one span per stage under this id.
        trace: u64,
        /// Frames, one per row, `frame_dim` wide.
        frames: Matrix,
    },
    /// The push was accepted into the shard's micro-batcher.
    PushAck {
        /// Rows accepted (always the full push).
        accepted: u32,
    },
    /// Explicit backpressure: the shard's in-flight budget is exhausted.
    /// The client should drain with [`Message::PullDecoded`] or retry
    /// later — the gateway never buffers unboundedly.
    Busy {
        /// Rows currently in flight on the shard (pending + stored).
        queued: u32,
        /// The shard's in-flight row budget.
        capacity: u32,
    },
    /// Request up to `max_frames` decoded reconstructions for a cluster.
    PullDecoded {
        /// Cluster to drain.
        cluster_id: u64,
        /// Upper bound on returned rows.
        max_frames: u32,
        /// Client-minted trace id for this request; 0 means untraced.
        trace: u64,
    },
    /// Decoded reconstructions, oldest first, in push order. Every row
    /// in one reply was encoded *and* decoded by the same model
    /// version — a pull never mixes rows from both sides of a swap.
    Decoded {
        /// Cluster the frames belong to.
        cluster_id: u64,
        /// Id of the [`ModelVersion`] that produced these rows.
        version: u64,
        /// Reconstructed frames, one per row, `frame_dim` wide.
        frames: Matrix,
    },
    /// Request a [`StatsSnapshot`].
    StatsRequest,
    /// Gateway-wide serving statistics.
    StatsReply(StatsSnapshot),
    /// Ask the gateway to flush, stop accepting work, and exit.
    Shutdown,
    /// The shutdown was initiated.
    ShutdownAck,
    /// The request failed; `code` is machine-readable, `detail` is for
    /// humans.
    ErrorReply {
        /// Machine-readable failure category.
        code: ErrorCode,
        /// Human-readable description.
        detail: String,
    },
    /// The receiving gateway does not own `cluster_id` at `epoch`; the
    /// client should retry the push against `addr`. Sent instead of
    /// silently misrouting a stale-epoch push.
    Redirect {
        /// Cluster the rejected push targeted.
        cluster_id: u64,
        /// Assignment epoch under which the owner was computed.
        epoch: u64,
        /// Dial address of the current owner.
        addr: String,
    },
    /// Ask the directory for the current assignment epoch + membership.
    DirectoryQuery,
    /// The directory's answer to [`Message::DirectoryQuery`].
    DirectoryReply {
        /// Monotonic assignment epoch; bumped on every membership change.
        epoch: u64,
        /// Live gateways, ascending by id.
        members: Vec<GatewayEntry>,
    },
    /// Gateway→directory registration (join the fleet), MAC'd like
    /// [`Message::Hello`] but over `(gateway_id, addr, nonce)`.
    Register {
        /// Fleet-wide gateway identifier.
        gateway_id: u64,
        /// Address clients should dial for this gateway.
        addr: String,
        /// Caller-chosen MAC nonce.
        nonce: u64,
        /// `register_mac(secret, gateway_id, addr, nonce)`, or 0.
        mac: u64,
    },
    /// The directory accepted the registration.
    RegisterAck {
        /// Epoch after the join (bumped if membership changed).
        epoch: u64,
        /// Post-join membership, ascending by id.
        members: Vec<GatewayEntry>,
    },
    /// Gateway→directory liveness beacon, optionally piggybacking the
    /// gateway's cumulative [`StatsSnapshot`] so the directory can
    /// aggregate a fleet-wide view without scraping every gateway.
    Heartbeat {
        /// Fleet-wide gateway identifier.
        gateway_id: u64,
        /// Last epoch the gateway observed (for directory diagnostics).
        epoch: u64,
        /// Cumulative serving stats at beat time; cumulative (not a
        /// true delta) so a retransmitted beat is idempotent.
        stats: Option<StatsSnapshot>,
    },
    /// The directory's answer to [`Message::Heartbeat`]; carries the
    /// current membership so gateways converge without extra queries.
    HeartbeatAck {
        /// Current assignment epoch.
        epoch: u64,
        /// Current membership, ascending by id.
        members: Vec<GatewayEntry>,
    },
    /// Subscribe this connection to streamed decoded batches for one
    /// cluster; decoded rows are pushed as [`Message::StreamFrames`]
    /// instead of waiting for polls.
    Subscribe {
        /// Cluster to stream.
        cluster_id: u64,
        /// Client-minted trace id for this request; 0 means untraced.
        trace: u64,
    },
    /// The subscription is live.
    SubscribeAck {
        /// Cluster the subscription covers.
        cluster_id: u64,
        /// Decoded rows already stored at subscribe time (they are
        /// streamed immediately after this ack).
        backlog: u32,
    },
    /// Remove this connection's subscription for one cluster.
    Unsubscribe {
        /// Cluster to stop streaming.
        cluster_id: u64,
    },
    /// Server-pushed decoded reconstructions for a subscribed cluster,
    /// oldest first. Distinct from [`Message::Decoded`] so clients can
    /// tell streamed deliveries from pull replies on a shared stream.
    StreamFrames {
        /// Cluster the frames belong to.
        cluster_id: u64,
        /// Id of the [`ModelVersion`] that produced these rows; like
        /// [`Message::Decoded`], one delivery never mixes versions.
        version: u64,
        /// Reconstructed frames, one per row, `frame_dim` wide.
        frames: Matrix,
    },
    /// Request the gateway's metrics exposition (a byte-stable text
    /// scrape of every counter, gauge, per-shard series, and latency
    /// histogram).
    MetricsRequest,
    /// The gateway's answer to [`Message::MetricsRequest`].
    MetricsReply {
        /// The text exposition, one `name value` line per series.
        text: String,
    },
    /// Ask the directory for its aggregated per-gateway fleet view.
    FleetStatsQuery,
    /// The directory's answer to [`Message::FleetStatsQuery`]: the last
    /// stats snapshot each gateway piggybacked on a heartbeat, live
    /// members first-class and evicted members frozen at their final
    /// reading.
    FleetStatsReply {
        /// Current assignment epoch.
        epoch: u64,
        /// Gateways evicted by sweeps since the directory started.
        evictions: u64,
        /// Per-gateway stats, ascending by gateway id.
        gateways: Vec<GatewayStats>,
    },
    /// Controller→gateway: stage a new encoder checkpoint as `version`.
    /// MAC'd like [`Message::Register`] but over `(version.id, nonce)`
    /// with the rollout domain tag — staging weights is a control-plane
    /// privilege. Staging does **not** change what serves; the codec
    /// cuts over only on [`Message::ActivateVersion`], and only at a
    /// flush boundary.
    RolloutPropose {
        /// Identity and geometry of the proposed model.
        version: ModelVersion,
        /// Encoder weight matrix (`code_dim × frame_dim`).
        weight: Matrix,
        /// Encoder bias row (`1 × code_dim`).
        bias: Matrix,
        /// Caller-chosen MAC nonce.
        nonce: u64,
        /// `rollout_mac(secret, version.id, nonce)`, or 0.
        mac: u64,
    },
    /// Gateway's answer to [`Message::RolloutPropose`] /
    /// [`Message::ActivateVersion`].
    RolloutAck {
        /// The version the ack refers to.
        version_id: u64,
        /// Whether the stage/activate was accepted.
        accepted: bool,
        /// Human-readable rejection reason (empty on success).
        detail: String,
    },
    /// Controller→gateway: cut the staged version over to active. The
    /// swap happens at the next flush boundary on every shard — pending
    /// rows flush under the old codec first, so no flush ever mixes
    /// model versions and no frame is dropped. MAC'd like
    /// [`Message::RolloutPropose`].
    ActivateVersion {
        /// The staged version to activate.
        version_id: u64,
        /// Caller-chosen MAC nonce.
        nonce: u64,
        /// `rollout_mac(secret, version_id, nonce)`, or 0.
        mac: u64,
    },
    /// Ask a gateway which model versions it is serving/staging.
    VersionQuery,
    /// The gateway's answer to [`Message::VersionQuery`].
    VersionReply {
        /// The version currently encoding new flushes.
        active: ModelVersion,
        /// A staged version waiting for [`Message::ActivateVersion`].
        staged: Option<ModelVersion>,
        /// The previous active version, retained until its in-flight
        /// rows drain (and as the rollback target).
        prior: Option<ModelVersion>,
        /// Number of guard-triggered rollbacks since boot.
        rollbacks: u64,
        /// Whether the drift monitor currently flags the active model.
        drift: bool,
    },
}

/// One gateway's entry in a [`Message::FleetStatsReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayStats {
    /// Fleet-wide gateway identifier.
    pub id: u64,
    /// Whether the gateway is currently a member (false = evicted; its
    /// snapshot is frozen at the last heartbeat before eviction).
    pub alive: bool,
    /// The gateway's last piggybacked [`StatsSnapshot`].
    pub snapshot: StatsSnapshot,
}

impl Message {
    fn msg_type(&self) -> u16 {
        match self {
            Message::Hello { .. } => 1,
            Message::HelloAck { .. } => 2,
            Message::PushFrames { .. } => 3,
            Message::PushAck { .. } => 4,
            Message::Busy { .. } => 5,
            Message::PullDecoded { .. } => 6,
            Message::Decoded { .. } => 7,
            Message::StatsRequest => 8,
            Message::StatsReply(_) => 9,
            Message::Shutdown => 10,
            Message::ShutdownAck => 11,
            Message::ErrorReply { .. } => 12,
            Message::Redirect { .. } => 13,
            Message::DirectoryQuery => 14,
            Message::DirectoryReply { .. } => 15,
            Message::Register { .. } => 16,
            Message::RegisterAck { .. } => 17,
            Message::Heartbeat { .. } => 18,
            Message::HeartbeatAck { .. } => 19,
            Message::Subscribe { .. } => 20,
            Message::SubscribeAck { .. } => 21,
            Message::Unsubscribe { .. } => 22,
            Message::StreamFrames { .. } => 23,
            Message::MetricsRequest => 24,
            Message::MetricsReply { .. } => 25,
            Message::FleetStatsQuery => 26,
            Message::FleetStatsReply { .. } => 27,
            Message::RolloutPropose { .. } => 28,
            Message::RolloutAck { .. } => 29,
            Message::ActivateVersion { .. } => 30,
            Message::VersionQuery => 31,
            Message::VersionReply { .. } => 32,
        }
    }

    /// Short human-readable name of the message kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "Hello",
            Message::HelloAck { .. } => "HelloAck",
            Message::PushFrames { .. } => "PushFrames",
            Message::PushAck { .. } => "PushAck",
            Message::Busy { .. } => "Busy",
            Message::PullDecoded { .. } => "PullDecoded",
            Message::Decoded { .. } => "Decoded",
            Message::StatsRequest => "StatsRequest",
            Message::StatsReply(_) => "StatsReply",
            Message::Shutdown => "Shutdown",
            Message::ShutdownAck => "ShutdownAck",
            Message::ErrorReply { .. } => "ErrorReply",
            Message::Redirect { .. } => "Redirect",
            Message::DirectoryQuery => "DirectoryQuery",
            Message::DirectoryReply { .. } => "DirectoryReply",
            Message::Register { .. } => "Register",
            Message::RegisterAck { .. } => "RegisterAck",
            Message::Heartbeat { .. } => "Heartbeat",
            Message::HeartbeatAck { .. } => "HeartbeatAck",
            Message::Subscribe { .. } => "Subscribe",
            Message::SubscribeAck { .. } => "SubscribeAck",
            Message::Unsubscribe { .. } => "Unsubscribe",
            Message::StreamFrames { .. } => "StreamFrames",
            Message::MetricsRequest => "MetricsRequest",
            Message::MetricsReply { .. } => "MetricsReply",
            Message::FleetStatsQuery => "FleetStatsQuery",
            Message::FleetStatsReply { .. } => "FleetStatsReply",
            Message::RolloutPropose { .. } => "RolloutPropose",
            Message::RolloutAck { .. } => "RolloutAck",
            Message::ActivateVersion { .. } => "ActivateVersion",
            Message::VersionQuery => "VersionQuery",
            Message::VersionReply { .. } => "VersionReply",
        }
    }

    /// Encodes the full frame (header + payload) into `out`, clearing it
    /// first. Reuse one buffer across calls for allocation-free encoding.
    ///
    /// # Panics
    ///
    /// Panics if the payload overflows the u32 length field (a message
    /// that large can never be legal on the wire; [`crate::Client`]
    /// rejects oversized pushes with a typed error before encoding).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        put_u32(out, MAGIC);
        put_u16(out, PROTOCOL_VERSION);
        put_u16(out, self.msg_type());
        put_u32(out, 0); // payload length, patched below
        match self {
            Message::Hello { client_id, nonce, mac } => {
                put_u64(out, *client_id);
                put_u64(out, *nonce);
                put_u64(out, *mac);
            }
            Message::HelloAck { version, shards, frame_dim, code_dim, active_version } => {
                put_u16(out, *version);
                put_u16(out, *shards);
                put_u32(out, *frame_dim);
                put_u32(out, *code_dim);
                put_u64(out, *active_version);
            }
            Message::PushFrames { cluster_id, trace, frames } => {
                put_u64(out, *cluster_id);
                put_u64(out, *trace);
                put_matrix(out, frames);
            }
            Message::PushAck { accepted } => put_u32(out, *accepted),
            Message::Busy { queued, capacity } => {
                put_u32(out, *queued);
                put_u32(out, *capacity);
            }
            Message::PullDecoded { cluster_id, max_frames, trace } => {
                put_u64(out, *cluster_id);
                put_u32(out, *max_frames);
                put_u64(out, *trace);
            }
            Message::Decoded { cluster_id, version, frames } => {
                put_u64(out, *cluster_id);
                put_u64(out, *version);
                put_matrix(out, frames);
            }
            Message::StatsRequest
            | Message::Shutdown
            | Message::ShutdownAck
            | Message::DirectoryQuery => {}
            Message::StatsReply(snapshot) => snapshot.encode_into(out),
            Message::ErrorReply { code, detail } => {
                put_u16(out, code.to_u16());
                put_bytes(out, detail.as_bytes());
            }
            Message::Redirect { cluster_id, epoch, addr } => {
                put_u64(out, *cluster_id);
                put_u64(out, *epoch);
                put_bytes(out, addr.as_bytes());
            }
            Message::DirectoryReply { epoch, members }
            | Message::RegisterAck { epoch, members }
            | Message::HeartbeatAck { epoch, members } => {
                put_u64(out, *epoch);
                put_members(out, members);
            }
            Message::Register { gateway_id, addr, nonce, mac } => {
                put_u64(out, *gateway_id);
                put_bytes(out, addr.as_bytes());
                put_u64(out, *nonce);
                put_u64(out, *mac);
            }
            Message::Heartbeat { gateway_id, epoch, stats } => {
                put_u64(out, *gateway_id);
                put_u64(out, *epoch);
                match stats {
                    Some(snapshot) => {
                        out.push(1);
                        snapshot.encode_into(out);
                    }
                    None => out.push(0),
                }
            }
            Message::Subscribe { cluster_id, trace } => {
                put_u64(out, *cluster_id);
                put_u64(out, *trace);
            }
            Message::Unsubscribe { cluster_id } => {
                put_u64(out, *cluster_id);
            }
            Message::SubscribeAck { cluster_id, backlog } => {
                put_u64(out, *cluster_id);
                put_u32(out, *backlog);
            }
            Message::StreamFrames { cluster_id, version, frames } => {
                put_u64(out, *cluster_id);
                put_u64(out, *version);
                put_matrix(out, frames);
            }
            Message::MetricsRequest | Message::FleetStatsQuery => {}
            Message::MetricsReply { text } => {
                assert!(text.len() <= MAX_METRICS_TEXT, "metrics text exceeds MAX_METRICS_TEXT");
                put_bytes(out, text.as_bytes());
            }
            Message::FleetStatsReply { epoch, evictions, gateways } => {
                assert!(gateways.len() <= MAX_MEMBERS, "fleet stats list exceeds MAX_MEMBERS");
                put_u64(out, *epoch);
                put_u64(out, *evictions);
                put_u32(out, gateways.len() as u32);
                for g in gateways {
                    put_u64(out, g.id);
                    out.push(u8::from(g.alive));
                    g.snapshot.encode_into(out);
                }
            }
            Message::RolloutPropose { version, weight, bias, nonce, mac } => {
                put_version(out, version);
                put_matrix(out, weight);
                put_matrix(out, bias);
                put_u64(out, *nonce);
                put_u64(out, *mac);
            }
            Message::RolloutAck { version_id, accepted, detail } => {
                put_u64(out, *version_id);
                out.push(u8::from(*accepted));
                put_bytes(out, detail.as_bytes());
            }
            Message::ActivateVersion { version_id, nonce, mac } => {
                put_u64(out, *version_id);
                put_u64(out, *nonce);
                put_u64(out, *mac);
            }
            Message::VersionQuery => {}
            Message::VersionReply { active, staged, prior, rollbacks, drift } => {
                put_version(out, active);
                for opt in [staged, prior] {
                    match opt {
                        Some(v) => {
                            out.push(1);
                            put_version(out, v);
                        }
                        None => out.push(0),
                    }
                }
                put_u64(out, *rollbacks);
                out.push(u8::from(*drift));
            }
        }
        let len = out.len() - HEADER_LEN;
        assert!(
            u32::try_from(len).is_ok(),
            "payload of {len} bytes overflows the u32 length field"
        );
        out[8..12].copy_from_slice(&(len as u32).to_le_bytes());
    }

    /// Encodes the full frame into a fresh buffer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes exactly one frame. The slice must contain the frame and
    /// nothing else; trailing bytes are a [`WireError::LengthMismatch`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] describing the first malformation found.
    pub fn decode(frame: &[u8]) -> Result<Message, WireError> {
        // orco-lint: region(wire-decode)
        let Some((header, payload)) = frame.split_at_checked(HEADER_LEN) else {
            return Err(WireError::Truncated { needed: HEADER_LEN, got: frame.len() });
        };
        let (msg_type, declared) = parse_header(header)?;
        if payload.len() != declared {
            return Err(WireError::LengthMismatch { declared, actual: payload.len() });
        }
        let mut cur = Cursor::new(payload);
        let msg = decode_payload(msg_type, &mut cur)?;
        if cur.remaining() != 0 {
            return Err(WireError::Corrupt { detail: "payload has trailing bytes" });
        }
        Ok(msg)
        // orco-lint: endregion
    }

    /// Reads one frame from a byte stream. Returns `Ok(None)` on a clean
    /// end-of-stream at a frame boundary (the peer closed between
    /// messages); EOF mid-frame is an error.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] for transport failures and for wire-level
    /// malformations (wrapped [`WireError`]).
    pub fn read_from(r: &mut impl Read) -> Result<Option<Message>, OrcoError> {
        let mut buf = Vec::new();
        match read_frame(r, &mut buf)? {
            FrameRead::Eof => Ok(None),
            FrameRead::Malformed(e) => Err(e.into()),
            FrameRead::Frame => Ok(Some(Message::decode(&buf)?)),
        }
    }
}

/// Outcome of [`read_frame`]: one read off a byte stream.
#[derive(Debug)]
pub enum FrameRead {
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The caller's buffer holds one complete frame (header + payload).
    Frame,
    /// The header was malformed — framing is lost, so no payload was
    /// read. A server should reply with an `ErrorReply` and close the
    /// connection.
    Malformed(WireError),
}

/// Reads one raw frame (header + payload bytes) into `buf` (cleared
/// first; reuse it across calls). The header's per-type payload bound is
/// enforced **before** the payload allocation, so a hostile length field
/// cannot reserve more memory than a legitimate message of that type.
///
/// # Errors
///
/// Returns [`OrcoError::Io`] for transport failures (including EOF
/// mid-frame); header malformations are [`FrameRead::Malformed`], not
/// errors, so servers can still answer them.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<FrameRead, OrcoError> {
    buf.clear();
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(FrameRead::Eof);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-header").into());
        }
        filled += n;
    }
    let declared = match parse_header(&header) {
        Ok((_, declared)) => declared,
        Err(e) => return Ok(FrameRead::Malformed(e)),
    };
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + declared, 0);
    r.read_exact(&mut buf[HEADER_LEN..])?;
    Ok(FrameRead::Frame)
}

/// Validates a frame header and returns `(message type, payload length)`.
// orco-lint: region(wire-decode)
fn parse_header(header: &[u8]) -> Result<(u16, usize), WireError> {
    let mut cur = Cursor::new(header);
    let magic = cur.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = cur.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let msg_type = cur.u16()?;
    let declared = cur.u32()? as usize;
    if declared > payload_cap(msg_type)? {
        return Err(WireError::Oversized { declared });
    }
    Ok((msg_type, declared))
}

fn decode_payload(msg_type: u16, cur: &mut Cursor<'_>) -> Result<Message, WireError> {
    match msg_type {
        1 => Ok(Message::Hello { client_id: cur.u64()?, nonce: cur.u64()?, mac: cur.u64()? }),
        2 => Ok(Message::HelloAck {
            version: cur.u16()?,
            shards: cur.u16()?,
            frame_dim: cur.u32()?,
            code_dim: cur.u32()?,
            active_version: cur.u64()?,
        }),
        3 => Ok(Message::PushFrames {
            cluster_id: cur.u64()?,
            trace: cur.u64()?,
            frames: take_matrix(cur)?,
        }),
        4 => Ok(Message::PushAck { accepted: cur.u32()? }),
        5 => Ok(Message::Busy { queued: cur.u32()?, capacity: cur.u32()? }),
        6 => Ok(Message::PullDecoded {
            cluster_id: cur.u64()?,
            max_frames: cur.u32()?,
            trace: cur.u64()?,
        }),
        7 => Ok(Message::Decoded {
            cluster_id: cur.u64()?,
            version: cur.u64()?,
            frames: take_matrix(cur)?,
        }),
        8 => Ok(Message::StatsRequest),
        9 => Ok(Message::StatsReply(StatsSnapshot::decode_from(cur)?)),
        10 => Ok(Message::Shutdown),
        11 => Ok(Message::ShutdownAck),
        12 => {
            let code = ErrorCode::from_u16(cur.u16()?)?;
            let bytes = cur.take_len_prefixed()?;
            let detail = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Corrupt { detail: "error detail is not utf-8" })?
                .to_owned();
            Ok(Message::ErrorReply { code, detail })
        }
        13 => Ok(Message::Redirect {
            cluster_id: cur.u64()?,
            epoch: cur.u64()?,
            addr: take_addr(cur)?,
        }),
        14 => Ok(Message::DirectoryQuery),
        15 => Ok(Message::DirectoryReply { epoch: cur.u64()?, members: take_members(cur)? }),
        16 => Ok(Message::Register {
            gateway_id: cur.u64()?,
            addr: take_addr(cur)?,
            nonce: cur.u64()?,
            mac: cur.u64()?,
        }),
        17 => Ok(Message::RegisterAck { epoch: cur.u64()?, members: take_members(cur)? }),
        18 => {
            let gateway_id = cur.u64()?;
            let epoch = cur.u64()?;
            let stats = match take_bool(cur, "heartbeat stats flag is not 0 or 1")? {
                true => Some(StatsSnapshot::decode_from(cur)?),
                false => None,
            };
            Ok(Message::Heartbeat { gateway_id, epoch, stats })
        }
        19 => Ok(Message::HeartbeatAck { epoch: cur.u64()?, members: take_members(cur)? }),
        20 => Ok(Message::Subscribe { cluster_id: cur.u64()?, trace: cur.u64()? }),
        21 => Ok(Message::SubscribeAck { cluster_id: cur.u64()?, backlog: cur.u32()? }),
        22 => Ok(Message::Unsubscribe { cluster_id: cur.u64()? }),
        23 => Ok(Message::StreamFrames {
            cluster_id: cur.u64()?,
            version: cur.u64()?,
            frames: take_matrix(cur)?,
        }),
        24 => Ok(Message::MetricsRequest),
        25 => {
            let bytes = cur.take_len_prefixed()?;
            if bytes.len() > MAX_METRICS_TEXT {
                return Err(WireError::Corrupt { detail: "metrics text exceeds MAX_METRICS_TEXT" });
            }
            let text = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Corrupt { detail: "metrics text is not utf-8" })?
                .to_owned();
            Ok(Message::MetricsReply { text })
        }
        26 => Ok(Message::FleetStatsQuery),
        27 => {
            let epoch = cur.u64()?;
            let evictions = cur.u64()?;
            let count = cur.u32()? as usize;
            if count > MAX_MEMBERS {
                return Err(WireError::Corrupt { detail: "fleet stats list exceeds MAX_MEMBERS" });
            }
            let mut gateways = Vec::with_capacity(count);
            for _ in 0..count {
                gateways.push(GatewayStats {
                    id: cur.u64()?,
                    alive: take_bool(cur, "fleet stats liveness flag is not 0 or 1")?,
                    snapshot: StatsSnapshot::decode_from(cur)?,
                });
            }
            Ok(Message::FleetStatsReply { epoch, evictions, gateways })
        }
        28 => Ok(Message::RolloutPropose {
            version: take_version(cur)?,
            weight: take_matrix(cur)?,
            bias: take_matrix(cur)?,
            nonce: cur.u64()?,
            mac: cur.u64()?,
        }),
        29 => {
            let version_id = cur.u64()?;
            let accepted = take_bool(cur, "rollout ack flag is not 0 or 1")?;
            let bytes = cur.take_len_prefixed()?;
            let detail = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Corrupt { detail: "rollout ack detail is not utf-8" })?
                .to_owned();
            Ok(Message::RolloutAck { version_id, accepted, detail })
        }
        30 => Ok(Message::ActivateVersion {
            version_id: cur.u64()?,
            nonce: cur.u64()?,
            mac: cur.u64()?,
        }),
        31 => Ok(Message::VersionQuery),
        32 => {
            let active = take_version(cur)?;
            let mut opts = [None, None];
            for slot in &mut opts {
                if take_bool(cur, "version option flag is not 0 or 1")? {
                    *slot = Some(take_version(cur)?);
                }
            }
            let [staged, prior] = opts;
            Ok(Message::VersionReply {
                active,
                staged,
                prior,
                rollbacks: cur.u64()?,
                drift: take_bool(cur, "drift flag is not 0 or 1")?,
            })
        }
        other => Err(WireError::UnknownType { found: other }),
    }
}

/// Reads a one-byte boolean flag; any value other than 0/1 is corrupt.
fn take_bool(cur: &mut Cursor<'_>, detail: &'static str) -> Result<bool, WireError> {
    match cur.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Corrupt { detail }),
    }
}
// orco-lint: endregion

// ----------------------------------------------------------------------
// Little-endian field primitives
// ----------------------------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_members(out: &mut Vec<u8>, members: &[GatewayEntry]) {
    assert!(members.len() <= MAX_MEMBERS, "membership list exceeds MAX_MEMBERS");
    put_u32(out, members.len() as u32);
    for m in members {
        assert!(m.addr.len() <= MAX_ADDR, "gateway address exceeds MAX_ADDR");
        put_u64(out, m.id);
        put_bytes(out, m.addr.as_bytes());
    }
}

// orco-lint: region(wire-decode)
fn take_addr(cur: &mut Cursor<'_>) -> Result<String, WireError> {
    let bytes = cur.take_len_prefixed()?;
    if bytes.len() > MAX_ADDR {
        return Err(WireError::Corrupt { detail: "gateway address exceeds MAX_ADDR" });
    }
    std::str::from_utf8(bytes)
        .map_err(|_| WireError::Corrupt { detail: "gateway address is not utf-8" })
        .map(str::to_owned)
}

fn take_members(cur: &mut Cursor<'_>) -> Result<Vec<GatewayEntry>, WireError> {
    let count = cur.u32()? as usize;
    if count > MAX_MEMBERS {
        return Err(WireError::Corrupt { detail: "membership list exceeds MAX_MEMBERS" });
    }
    let mut members = Vec::with_capacity(count);
    for _ in 0..count {
        members.push(GatewayEntry { id: cur.u64()?, addr: take_addr(cur)? });
    }
    Ok(members)
}
// orco-lint: endregion

fn put_version(out: &mut Vec<u8>, v: &ModelVersion) {
    assert!(v.label.len() <= MAX_LABEL, "model version label exceeds MAX_LABEL");
    put_u64(out, v.id);
    put_bytes(out, v.label.as_bytes());
    put_u32(out, v.frame_dim);
    put_u32(out, v.code_dim);
}

// orco-lint: region(wire-decode)
fn take_version(cur: &mut Cursor<'_>) -> Result<ModelVersion, WireError> {
    let id = cur.u64()?;
    let bytes = cur.take_len_prefixed()?;
    if bytes.len() > MAX_LABEL {
        return Err(WireError::Corrupt { detail: "model version label exceeds MAX_LABEL" });
    }
    let label = std::str::from_utf8(bytes)
        .map_err(|_| WireError::Corrupt { detail: "model version label is not utf-8" })?
        .to_owned();
    Ok(ModelVersion { id, label, frame_dim: cur.u32()?, code_dim: cur.u32()? })
}
// orco-lint: endregion

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    out.reserve(m.as_slice().len() * 4);
    for v in m.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// orco-lint: region(wire-decode)
fn take_matrix(cur: &mut Cursor<'_>) -> Result<Matrix, WireError> {
    let rows = cur.u32()? as usize;
    let cols = cur.u32()? as usize;
    let nbytes = rows
        .checked_mul(cols)
        .and_then(|elems| elems.checked_mul(4))
        .ok_or(WireError::Corrupt { detail: "matrix dimensions overflow" })?;
    let bytes = cur.take(nbytes)?;
    let data: Vec<f32> = bytes.chunks_exact(4).map(|b| f32::from_le_bytes(le_bytes(b))).collect();
    Matrix::from_vec(rows, cols, data)
        .map_err(|_| WireError::Corrupt { detail: "matrix length mismatch" })
}

/// Copies a slice into a fixed-width array for `from_le_bytes`.
///
/// Every caller feeds it a slice whose length is already guaranteed by a
/// bounds-checked [`Cursor::take`] or `chunks_exact`; a length mismatch
/// here is therefore a bug in this module, not attacker-reachable, and
/// the `copy_from_slice` assert is the right failure mode for it.
fn le_bytes<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(bytes);
    out
}

/// Bounds-checked reader over a payload slice; every read either yields
/// the field or a [`WireError::Truncated`] naming what was missing.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated { needed: n, got: 0 })?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { needed: n, got: self.remaining() })?;
        self.pos = end;
        Ok(s)
    }

    fn take_len_prefixed(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(u8::from_le_bytes(le_bytes(self.take(1)?)))
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(le_bytes(self.take(2)?)))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(le_bytes(self.take(4)?)))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(le_bytes(self.take(8)?)))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(le_bytes(self.take(8)?)))
    }
}
// orco-lint: endregion

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_stable() {
        let frame = Message::StatsRequest.encode();
        assert_eq!(frame.len(), HEADER_LEN);
        assert_eq!(&frame[0..4], b"ORCO");
        assert_eq!(u16::from_le_bytes([frame[4], frame[5]]), PROTOCOL_VERSION);
        assert_eq!(u16::from_le_bytes([frame[6], frame[7]]), 8);
        assert_eq!(u32::from_le_bytes([frame[8], frame[9], frame[10], frame[11]]), 0);
    }

    #[test]
    fn bad_magic_version_type_rejected() {
        let mut frame = Message::Shutdown.encode();
        frame[0] = b'X';
        assert!(matches!(Message::decode(&frame), Err(WireError::BadMagic { .. })));

        let mut frame = Message::Shutdown.encode();
        frame[4] = 99;
        assert_eq!(Message::decode(&frame), Err(WireError::UnsupportedVersion { found: 99 }));

        let mut frame = Message::Shutdown.encode();
        frame[6] = 200;
        assert_eq!(Message::decode(&frame), Err(WireError::UnknownType { found: 200 }));
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut frame = Message::Shutdown.encode();
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Message::decode(&frame),
            Err(WireError::Oversized { declared: u32::MAX as usize })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Message::Hello { client_id: 7, nonce: 0, mac: 0 }.encode();
        frame.push(0);
        assert!(matches!(Message::decode(&frame), Err(WireError::LengthMismatch { .. })));
    }

    #[test]
    fn directory_messages_roundtrip() {
        let members = vec![
            GatewayEntry { id: 3, addr: "127.0.0.1:7201".into() },
            GatewayEntry { id: 9, addr: "des:1".into() },
        ];
        for msg in [
            Message::DirectoryReply { epoch: 12, members: members.clone() },
            Message::RegisterAck { epoch: 13, members: members.clone() },
            Message::HeartbeatAck { epoch: 14, members },
            Message::Redirect { cluster_id: 5, epoch: 12, addr: "gw:2".into() },
            Message::Register { gateway_id: 3, addr: "gw:3".into(), nonce: 7, mac: 99 },
            Message::Heartbeat { gateway_id: 3, epoch: 12, stats: None },
            Message::Subscribe { cluster_id: 40, trace: 0xBEE5 },
            Message::SubscribeAck { cluster_id: 40, backlog: 2 },
            Message::Unsubscribe { cluster_id: 40 },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn observability_messages_roundtrip() {
        let stats = crate::stats::ServeStats::new(2);
        stats.record_push(1, 3, 60);
        let snapshot = stats.snapshot();
        for msg in [
            Message::MetricsRequest,
            Message::MetricsReply { text: "orco_pushes_total 1\n".into() },
            Message::FleetStatsQuery,
            Message::Heartbeat { gateway_id: 7, epoch: 4, stats: Some(snapshot.clone()) },
            Message::FleetStatsReply {
                epoch: 4,
                evictions: 1,
                gateways: vec![
                    GatewayStats { id: 2, alive: false, snapshot: snapshot.clone() },
                    GatewayStats { id: 7, alive: true, snapshot },
                ],
            },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn rollout_messages_roundtrip() {
        let version = ModelVersion { id: 3, label: "retrain-a".into(), frame_dim: 8, code_dim: 2 };
        let staged = ModelVersion { id: 4, label: "retrain-b".into(), frame_dim: 8, code_dim: 2 };
        for msg in [
            Message::RolloutPropose {
                version: version.clone(),
                weight: Matrix::from_fn(8, 2, |r, c| (r * 2 + c) as f32 - 7.5),
                bias: Matrix::from_fn(1, 2, |_, c| c as f32),
                nonce: 11,
                mac: 0xFEED,
            },
            Message::RolloutAck { version_id: 3, accepted: true, detail: String::new() },
            Message::RolloutAck { version_id: 3, accepted: false, detail: "stale id".into() },
            Message::ActivateVersion { version_id: 3, nonce: 12, mac: 0xF00D },
            Message::VersionQuery,
            Message::VersionReply {
                active: version.clone(),
                staged: Some(staged),
                prior: None,
                rollbacks: 1,
                drift: true,
            },
            Message::VersionReply {
                active: version,
                staged: None,
                prior: None,
                rollbacks: 0,
                drift: false,
            },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn oversized_version_label_rejected() {
        let version =
            ModelVersion { id: 1, label: "v".repeat(MAX_LABEL), frame_dim: 4, code_dim: 2 };
        let mut frame = Message::VersionReply {
            active: version,
            staged: None,
            prior: None,
            rollbacks: 0,
            drift: false,
        }
        .encode();
        // Lie about the label length: the decoder must reject it before
        // interning an arbitrarily long string.
        let len_at = HEADER_LEN + 8;
        frame[len_at..len_at + 4].copy_from_slice(&(MAX_LABEL as u32 + 1).to_le_bytes());
        assert!(matches!(Message::decode(&frame), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn versioned_data_plane_roundtrips() {
        let frames = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        for msg in [
            Message::HelloAck {
                version: PROTOCOL_VERSION,
                shards: 2,
                frame_dim: 4,
                code_dim: 2,
                active_version: 7,
            },
            Message::Decoded { cluster_id: 9, version: 7, frames: frames.clone() },
            Message::StreamFrames { cluster_id: 9, version: 8, frames },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn bad_boolean_flags_are_corrupt() {
        let mut frame = Message::Heartbeat { gateway_id: 1, epoch: 2, stats: None }.encode();
        frame[HEADER_LEN + 16] = 2; // stats flag must be 0 or 1
        assert!(matches!(Message::decode(&frame), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn oversized_fleet_stats_list_rejected() {
        let mut frame =
            Message::FleetStatsReply { epoch: 1, evictions: 0, gateways: Vec::new() }.encode();
        let count_at = HEADER_LEN + 16;
        frame[count_at..count_at + 4].copy_from_slice(&(MAX_MEMBERS as u32 + 1).to_le_bytes());
        assert!(matches!(Message::decode(&frame), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn oversized_membership_rejected() {
        let mut frame = Message::DirectoryReply { epoch: 1, members: Vec::new() }.encode();
        // Lie about the member count: decoding must reject it before
        // reserving MAX_MEMBERS entries.
        let count_at = HEADER_LEN + 8;
        frame[count_at..count_at + 4].copy_from_slice(&(MAX_MEMBERS as u32 + 1).to_le_bytes());
        assert!(matches!(Message::decode(&frame), Err(WireError::Corrupt { .. })));
    }

    #[test]
    fn stream_reader_roundtrips_and_detects_clean_eof() {
        let a = Message::Hello { client_id: 42, nonce: 1, mac: 2 };
        let b = Message::PushAck { accepted: 3 };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut r = io::Cursor::new(stream);
        assert_eq!(Message::read_from(&mut r).unwrap(), Some(a));
        assert_eq!(Message::read_from(&mut r).unwrap(), Some(b));
        assert_eq!(Message::read_from(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let frame = Message::Hello { client_id: 42, nonce: 0, mac: 0 }.encode();
        let mut r = io::Cursor::new(frame[..frame.len() - 1].to_vec());
        let err = Message::read_from(&mut r).unwrap_err();
        assert!(matches!(err, OrcoError::Io(_)), "unexpected: {err}");
    }
}
