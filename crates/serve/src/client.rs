//! A typed client over any [`Transport`]: the request/reply pairing of
//! the protocol as plain method calls.

use std::time::Duration;

use orco_tensor::{MatView, Matrix};
use orcodcs::OrcoError;

use orcodcs::EncoderCheckpoint;

use crate::auth;
use crate::protocol::{Message, ModelVersion};
use crate::stats::StatsSnapshot;
use crate::transport::{Connection, Transport};

/// The gateway's answer to a push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// All rows entered the shard's micro-batcher.
    Accepted(u32),
    /// Backpressure: the shard's in-flight budget is exhausted. Drain
    /// with [`Client::pull`] or retry later.
    Busy {
        /// Rows currently in flight on the shard.
        queued: u32,
        /// The shard's in-flight row budget.
        capacity: u32,
    },
    /// The gateway does not own the cluster at `epoch`; retry the push
    /// against `addr` (the fleet client does this automatically).
    Redirected {
        /// Assignment epoch under which the owner was computed.
        epoch: u64,
        /// Dial address of the current owner.
        addr: String,
    },
}

/// The gateway's geometry as announced in `HelloAck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayInfo {
    /// Protocol version the gateway speaks.
    pub version: u16,
    /// Number of worker shards.
    pub shards: u16,
    /// Raw-frame width in f32 elements.
    pub frame_dim: u32,
    /// Encoded-code width in f32 elements.
    pub code_dim: u32,
    /// Id of the codec version the gateway is serving with.
    pub active_version: u64,
}

/// The gateway's rollout state as answered to a `VersionQuery`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// The codec version currently encoding flushes.
    pub active: ModelVersion,
    /// A proposed version staged but not yet activated, if any.
    pub staged: Option<ModelVersion>,
    /// The pre-swap version still retained as the rollback target.
    pub prior: Option<ModelVersion>,
    /// Lifetime count of guard-triggered rollbacks.
    pub rollbacks: u64,
    /// Whether the drift monitor currently flags the sampled error.
    pub drift: bool,
}

/// A typed gateway client over any [`Connection`].
#[derive(Debug)]
pub struct Client<C: Connection> {
    conn: C,
    auth_secret: Option<u64>,
    /// The id announced in the last [`Client::hello`]; seeds trace-id
    /// minting so ids are unique per client and deterministic per run.
    client_id: u64,
    /// Count of trace ids minted so far.
    trace_seq: u64,
}

impl<C: Connection> Client<C> {
    /// Opens a connection through `transport`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when the gateway is unreachable.
    pub fn connect<T: Transport<Conn = C>>(transport: &T) -> Result<Self, OrcoError> {
        Ok(Self { conn: transport.connect()?, auth_secret: None, client_id: 0, trace_seq: 0 })
    }

    /// Wraps an already-open connection.
    pub fn from_connection(conn: C) -> Self {
        Self { conn, auth_secret: None, client_id: 0, trace_seq: 0 }
    }

    /// Mints the next trace id for this client: a Weyl-style sequence
    /// keyed by the client id, coerced away from 0 (the wire's
    /// "untraced" sentinel). Deterministic — a replayed run mints the
    /// same ids in the same order.
    fn mint_trace(&mut self) -> u64 {
        self.trace_seq += 1;
        let raw = self.client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.trace_seq;
        if raw == 0 {
            1
        } else {
            raw
        }
    }

    /// Sets the shared secret used to MAC subsequent [`Client::hello`]
    /// calls ([`crate::auth`]). `None` (the default) sends an unkeyed
    /// `Hello`, which authenticated gateways reject.
    pub fn set_auth_secret(&mut self, secret: Option<u64>) {
        self.auth_secret = secret;
    }

    /// Introduces the client and learns the gateway's geometry. With an
    /// auth secret set ([`Client::set_auth_secret`]), the `Hello` is
    /// MAC'd; the nonce is derived deterministically from `client_id` so
    /// replayed runs stay bit-identical.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and
    /// authentication rejections.
    pub fn hello(&mut self, client_id: u64) -> Result<GatewayInfo, OrcoError> {
        self.client_id = client_id;
        let nonce = client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6F72_636F;
        let mac = self.auth_secret.map_or(0, |s| auth::hello_mac(s, client_id, nonce));
        match self.conn.request(&Message::Hello { client_id, nonce, mac })? {
            Message::HelloAck { version, shards, frame_dim, code_dim, active_version } => {
                Ok(GatewayInfo { version, shards, frame_dim, code_dim, active_version })
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Pushes a batch of raw frames (one per row) for `cluster_id`.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, gateway rejections
    /// (wrong frame width, shutdown in progress), and pushes whose
    /// payload exceeds the wire protocol's frame bound — rejected here,
    /// client-side, with a "split the push" error instead of an opaque
    /// connection close from the server's frame reader.
    pub fn push(&mut self, cluster_id: u64, frames: MatView<'_>) -> Result<PushOutcome, OrcoError> {
        let payload = 24 + frames.len() * 4; // cluster_id + trace + rows/cols + data
        if payload > crate::protocol::MAX_PAYLOAD {
            return Err(OrcoError::Config {
                detail: format!(
                    "push of {} rows is a {payload}-byte payload, over the {}-byte wire \
                     frame bound; split the push",
                    frames.rows(),
                    crate::protocol::MAX_PAYLOAD
                ),
            });
        }
        let msg = Message::PushFrames {
            cluster_id,
            trace: self.mint_trace(),
            frames: frames.to_matrix(),
        };
        match self.conn.request(&msg)? {
            Message::PushAck { accepted } => Ok(PushOutcome::Accepted(accepted)),
            Message::Busy { queued, capacity } => Ok(PushOutcome::Busy { queued, capacity }),
            Message::Redirect { epoch, addr, .. } => Ok(PushOutcome::Redirected { epoch, addr }),
            other => Err(unexpected("PushAck, Busy, or Redirect", &other)),
        }
    }

    /// Subscribes this connection to streamed decoded batches for
    /// `cluster_id` (server-push instead of polling). Returns the stored
    /// backlog at subscribe time; backlog rows are streamed immediately
    /// and surface via [`Client::recv_streamed`]. Only transports with a
    /// server-push channel (TCP, loopback) support this.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and gateways/transports
    /// without streaming support.
    pub fn subscribe(&mut self, cluster_id: u64) -> Result<u32, OrcoError> {
        let trace = self.mint_trace();
        match self.conn.request(&Message::Subscribe { cluster_id, trace })? {
            Message::SubscribeAck { cluster_id: got, backlog } if got == cluster_id => Ok(backlog),
            other => Err(unexpected("SubscribeAck", &other)),
        }
    }

    /// Removes this connection's subscription for `cluster_id`.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn unsubscribe(&mut self, cluster_id: u64) -> Result<(), OrcoError> {
        match self.conn.request(&Message::Unsubscribe { cluster_id })? {
            Message::SubscribeAck { .. } => Ok(()),
            other => Err(unexpected("SubscribeAck", &other)),
        }
    }

    /// Returns the next streamed delivery — `(cluster_id, decoded
    /// frames)` — waiting up to `timeout`. `Ok(None)` means nothing was
    /// streamed in time.
    ///
    /// # Errors
    ///
    /// Transport failures and non-stream frames arriving out of band.
    pub fn recv_streamed(&mut self, timeout: Duration) -> Result<Option<(u64, Matrix)>, OrcoError> {
        Ok(self.recv_streamed_versioned(timeout)?.map(|(cluster, _, frames)| (cluster, frames)))
    }

    /// [`Client::recv_streamed`] plus the id of the codec version that
    /// produced the batch: `(cluster_id, version_id, frames)`. During a
    /// hot swap consecutive deliveries can carry different versions, but
    /// any one delivery is encoded entirely by one.
    ///
    /// # Errors
    ///
    /// Transport failures and non-stream frames arriving out of band.
    pub fn recv_streamed_versioned(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, u64, Matrix)>, OrcoError> {
        match self.conn.poll_stream(timeout)? {
            Some(Message::StreamFrames { cluster_id, version, frames }) => {
                Ok(Some((cluster_id, version, frames)))
            }
            Some(other) => Err(unexpected("StreamFrames", &other)),
            None => Ok(None),
        }
    }

    /// Pulls up to `max_frames` decoded reconstructions for `cluster_id`
    /// (empty matrix when nothing is stored), oldest first, push order.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and gateway-side codec
    /// failures.
    pub fn pull(&mut self, cluster_id: u64, max_frames: u32) -> Result<Matrix, OrcoError> {
        self.pull_versioned(cluster_id, max_frames).map(|(_, frames)| frames)
    }

    /// [`Client::pull`] plus the id of the codec version that produced
    /// the reply: `(version_id, frames)`. Mid-swap a reply stops at the
    /// old/new version boundary, so every reply is single-version; pull
    /// again for the remainder.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and gateway-side codec
    /// failures.
    pub fn pull_versioned(
        &mut self,
        cluster_id: u64,
        max_frames: u32,
    ) -> Result<(u64, Matrix), OrcoError> {
        let trace = self.mint_trace();
        match self.conn.request(&Message::PullDecoded { cluster_id, max_frames, trace })? {
            Message::Decoded { cluster_id: got, version, frames } => {
                if got != cluster_id {
                    return Err(OrcoError::Config {
                        detail: format!(
                            "protocol violation: pulled cluster {cluster_id} but the reply \
                             carries cluster {got}"
                        ),
                    });
                }
                Ok((version, frames))
            }
            other => Err(unexpected("Decoded", &other)),
        }
    }

    /// Stages `version` (with the encoder weights in `checkpoint`) on
    /// the gateway without changing what serves. Requires the shared
    /// secret when the gateway is authenticated; the nonce is minted
    /// deterministically like [`Client::hello`]'s.
    ///
    /// # Errors
    ///
    /// Transport failures, authentication rejections, and proposals the
    /// gateway refuses (geometry mismatch, stale version id) — the
    /// refusal detail is surfaced in the error.
    pub fn propose_rollout(
        &mut self,
        version: ModelVersion,
        checkpoint: &EncoderCheckpoint,
    ) -> Result<(), OrcoError> {
        let nonce = self.mint_trace();
        let mac = self.auth_secret.map_or(0, |s| auth::rollout_mac(s, version.id, nonce));
        let msg = Message::RolloutPropose {
            version,
            weight: checkpoint.weight.clone(),
            bias: checkpoint.bias.clone(),
            nonce,
            mac,
        };
        match self.conn.request(&msg)? {
            Message::RolloutAck { accepted: true, .. } => Ok(()),
            Message::RolloutAck { version_id, accepted: false, detail } => Err(OrcoError::Config {
                detail: format!("gateway refused to stage version {version_id}: {detail}"),
            }),
            other => Err(unexpected("RolloutAck", &other)),
        }
    }

    /// Cuts the staged `version_id` over to active. The gateway swaps at
    /// each shard's next flush boundary; rows already batched flush under
    /// the old version first, so nothing is dropped or re-encoded.
    ///
    /// # Errors
    ///
    /// Transport failures, authentication rejections, and activations
    /// the gateway refuses (nothing staged, id mismatch).
    pub fn activate_version(&mut self, version_id: u64) -> Result<(), OrcoError> {
        let nonce = self.mint_trace();
        let mac = self.auth_secret.map_or(0, |s| auth::rollout_mac(s, version_id, nonce));
        match self.conn.request(&Message::ActivateVersion { version_id, nonce, mac })? {
            Message::RolloutAck { accepted: true, .. } => Ok(()),
            Message::RolloutAck { accepted: false, detail, .. } => Err(OrcoError::Config {
                detail: format!("gateway refused to activate version {version_id}: {detail}"),
            }),
            other => Err(unexpected("RolloutAck", &other)),
        }
    }

    /// Fetches the gateway's rollout state: active/staged/prior codec
    /// versions, rollback count, and the live drift flag.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn version_info(&mut self) -> Result<VersionInfo, OrcoError> {
        match self.conn.request(&Message::VersionQuery)? {
            Message::VersionReply { active, staged, prior, rollbacks, drift } => {
                Ok(VersionInfo { active, staged, prior, rollbacks, drift })
            }
            other => Err(unexpected("VersionReply", &other)),
        }
    }

    /// Fetches the gateway's serving statistics.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn stats(&mut self) -> Result<StatsSnapshot, OrcoError> {
        match self.conn.request(&Message::StatsRequest)? {
            Message::StatsReply(snapshot) => Ok(snapshot),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// Scrapes the gateway's metrics text exposition.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn metrics(&mut self) -> Result<String, OrcoError> {
        match self.conn.request(&Message::MetricsRequest)? {
            Message::MetricsReply { text } => Ok(text),
            other => Err(unexpected("MetricsReply", &other)),
        }
    }

    /// Asks the gateway to flush, stop accepting work, and exit.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations.
    pub fn shutdown(&mut self) -> Result<(), OrcoError> {
        match self.conn.request(&Message::Shutdown)? {
            Message::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }
}

fn unexpected(expected: &str, got: &Message) -> OrcoError {
    match got {
        Message::ErrorReply { code, detail } => OrcoError::Config {
            detail: format!("gateway rejected the request ({code:?}): {detail}"),
        },
        other => OrcoError::Config {
            detail: format!("protocol violation: expected {expected}, got {}", other.kind()),
        },
    }
}
