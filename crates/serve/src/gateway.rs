//! The sharded ingestion gateway: request dispatch, micro-batch flush
//! policy, and backpressure.
//!
//! A [`Gateway`] owns `shards` independent shard cores (codec +
//! micro-batcher + encoded store); a cluster is pinned to a shard by an
//! FNV-1a hash of its id, so one cluster's frames always meet the same
//! codec and stay in push order. Dispatch is transport-agnostic: the TCP
//! server and the in-process loopback both funnel decoded requests into
//! [`Gateway::handle`] (or raw frames into [`Gateway::handle_bytes`]),
//! which makes the loopback tests exercise exactly the production path.
//!
//! Flush policy — the adaptive micro-batcher:
//!
//! * **size**: a push that brings the pending batch to
//!   [`GatewayConfig::batch_max_frames`] flushes inline, on the pushing
//!   thread;
//! * **deadline**: a pending batch older than
//!   [`GatewayConfig::batch_deadline`] is flushed by the shard's
//!   deadline-flusher thread (TCP mode) or by the deadline sweep that
//!   every dispatch and every [`Gateway::advance_clock`] runs across
//!   **all** shards (virtual-clock mode) — a batch on an idle shard is
//!   flushed as soon as virtual time passes its deadline, not when the
//!   next request happens to land on that shard;
//! * **pull**: a `PullDecoded` flushes the shard's pending batch first,
//!   so clients always read their own writes.
//!
//! Backpressure is explicit: a shard's `pending + stored` rows never
//! exceed [`GatewayConfig::queue_capacity`]; a push over budget is
//! answered with [`Message::Busy`] and **nothing is buffered** — gateway
//! memory is bounded by configuration, not by client behavior.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

use orco_obs::{Registry, Span, SpanKind, Tracer};
use orco_tensor::Matrix;
use orcodcs::{Codec, EncoderCheckpoint, FrameDims, OrcoError};

use crate::auth;
use crate::clock::Clock;
use crate::fleet_view::FleetView;
use crate::outbox::Outbox;
use crate::protocol::{ErrorCode, Message, ModelVersion, MAX_LABEL, PROTOCOL_VERSION};
use crate::shard::{DriftProbe, ShardCore};
use crate::stats::{FlushReason, ServeStats, MAX_SHARDS};

/// Sizing and flush policy of a [`Gateway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Worker shards; each owns a codec and serves `hash(cluster) %
    /// shards`.
    pub shards: usize,
    /// Pending rows that trigger an immediate (size) flush.
    pub batch_max_frames: usize,
    /// Maximum age of a pending batch before a deadline flush.
    pub batch_deadline: Duration,
    /// Per-shard in-flight row budget (pending + stored); pushes beyond
    /// it draw `Busy`.
    pub queue_capacity: usize,
    /// Shared secret for `Hello` authentication ([`crate::auth`]). When
    /// set, a `Hello` whose MAC does not verify draws
    /// [`ErrorCode::Unauthorized`]; when `None`, `Hello` MACs are
    /// ignored (trusted-network mode, the pre-fleet behavior).
    pub auth_secret: Option<u64>,
    /// Span capacity of the gateway's trace ring
    /// ([`orco_obs::Tracer`]); 0 disables tracing entirely (record
    /// becomes a no-op that never takes the ring lock).
    pub trace_capacity: usize,
    /// Sample every N-th flushed row through the drift monitor
    /// (decode-back reconstruction error); 0 disables drift detection.
    /// The schedule is a pure function of the row sequence, so drift
    /// trips are deterministic under a manual clock.
    pub drift_sample_every: u64,
    /// Windowed reconstruction error above which the drift monitor
    /// trips (raises `drift_trips`/`drift` in the stats). Must be > 0
    /// when sampling is enabled.
    pub drift_threshold: f32,
    /// Sliding-window length of the drift monitor, in samples. Must be
    /// > 0 when sampling is enabled.
    pub drift_window: usize,
    /// Post-swap safety rail: if, after a codec hot-swap, any shard's
    /// windowed sample error exceeds this bound before the first full
    /// window passes clean, the gateway reverts to the prior version.
    /// 0.0 disables the guard. Requires drift sampling to be enabled
    /// to have any effect (the guard reads the same monitor).
    pub rollback_guard: f32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            batch_max_frames: 64,
            batch_deadline: Duration::from_millis(5),
            queue_capacity: 4096,
            auth_secret: None,
            trace_capacity: 4096,
            drift_sample_every: 0,
            drift_threshold: 0.0,
            drift_window: 0,
            rollback_guard: 0.0,
        }
    }
}

impl GatewayConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), OrcoError> {
        if self.shards == 0 {
            return Err(OrcoError::Config { detail: "GatewayConfig: shards must be > 0".into() });
        }
        if self.shards > MAX_SHARDS {
            return Err(OrcoError::Config {
                detail: format!("GatewayConfig: shards must be <= {MAX_SHARDS}"),
            });
        }
        if self.batch_max_frames == 0 {
            return Err(OrcoError::Config {
                detail: "GatewayConfig: batch_max_frames must be > 0".into(),
            });
        }
        if self.queue_capacity < self.batch_max_frames {
            return Err(OrcoError::Config {
                detail: "GatewayConfig: queue_capacity must be >= batch_max_frames".into(),
            });
        }
        if self.drift_sample_every > 0 {
            if !self.drift_threshold.is_finite() || self.drift_threshold <= 0.0 {
                return Err(OrcoError::Config {
                    detail: "GatewayConfig: drift_threshold must be > 0 when sampling is enabled"
                        .into(),
                });
            }
            if self.drift_window == 0 {
                return Err(OrcoError::Config {
                    detail: "GatewayConfig: drift_window must be > 0 when sampling is enabled"
                        .into(),
                });
            }
        }
        if self.rollback_guard > 0.0 && self.drift_sample_every == 0 {
            return Err(OrcoError::Config {
                detail:
                    "GatewayConfig: rollback_guard requires drift sampling (drift_sample_every > 0)"
                        .into(),
            });
        }
        Ok(())
    }
}

pub(crate) struct ShardSlot {
    pub(crate) core: Mutex<ShardCore>,
    /// Wakes the shard's deadline flusher when a batch starts pending.
    pub(crate) cv: Condvar,
}

/// The sharded ingestion gateway. Shared across connection threads as an
/// `Arc<Gateway>`; all entry points take `&self`.
pub struct Gateway {
    cfg: GatewayConfig,
    clock: Clock,
    dims: FrameDims,
    stats: ServeStats,
    tracer: Tracer,
    shards: Vec<ShardSlot>,
    shutting_down: AtomicBool,
    /// The fleet assignment this gateway enforces, or `None` for a
    /// standalone gateway (pre-fleet behavior: serve every cluster).
    fleet: Mutex<Option<FleetView>>,
    /// Streaming subscriptions: cluster → outboxes of subscribed
    /// connections. `Weak` so a vanished connection unsubscribes itself;
    /// dead entries are pruned on every pump.
    ///
    /// Lock order: a shard core lock is never taken while holding this
    /// lock, and vice versa — the pump copies the cluster list first.
    subscribers: Mutex<BTreeMap<u64, Vec<Weak<Outbox>>>>,
    /// The rollout control plane: active/staged/prior model versions.
    ///
    /// Lock order: this lock may be held while taking a shard core lock
    /// (activation walks every shard), so no path may take it while
    /// holding a shard lock.
    rollout: Mutex<RolloutState>,
}

/// The gateway's model-version bookkeeping (behind `Gateway::rollout`).
struct RolloutState {
    /// The version currently encoding new flushes on every shard.
    active: ModelVersion,
    /// A proposed version staged for activation, with the checkpoint
    /// its per-shard codecs will be derived from at cutover.
    staged: Option<(ModelVersion, EncoderCheckpoint)>,
    /// The previous active version: the rollback target while the
    /// post-swap guard window is still open, `None` once the guard
    /// passes (or after a rollback).
    prior: Option<ModelVersion>,
    /// Guard-triggered rollbacks since boot (mirrors the stats counter,
    /// kept here so `VersionReply` needs no snapshot).
    rollbacks: u64,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("cfg", &self.cfg)
            .field("dims", &self.dims)
            .field("shutting_down", &self.shutting_down)
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Builds a gateway, asking `codec_for_shard` for each shard's codec.
    /// All shards must serve the same frame geometry (build them from the
    /// same deterministic config/seed and they will also produce
    /// bit-identical codes).
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Config`] on an invalid config or when shard
    /// codecs disagree on [`FrameDims`].
    pub fn new(
        cfg: GatewayConfig,
        clock: Clock,
        mut codec_for_shard: impl FnMut(usize) -> Box<dyn Codec>,
    ) -> Result<Self, OrcoError> {
        cfg.validate()?;
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut dims: Option<FrameDims> = None;
        for i in 0..cfg.shards {
            let drift = (cfg.drift_sample_every > 0).then(|| {
                DriftProbe::new(cfg.drift_sample_every, cfg.drift_threshold, cfg.drift_window)
            });
            let core = ShardCore::new(i, codec_for_shard(i), drift);
            match dims {
                None => dims = Some(core.dims()),
                Some(d) if d == core.dims() => {}
                Some(d) => {
                    return Err(OrcoError::Config {
                        detail: format!(
                            "Gateway: shard {i} codec geometry {:?} differs from shard 0 ({d:?})",
                            core.dims()
                        ),
                    });
                }
            }
            shards.push(ShardSlot { core: Mutex::new(core), cv: Condvar::new() });
        }
        let dims = dims.expect("at least one shard");
        Ok(Self {
            cfg,
            clock,
            dims,
            stats: ServeStats::new(cfg.shards as u16),
            tracer: Tracer::new(cfg.trace_capacity),
            shards,
            shutting_down: AtomicBool::new(false),
            fleet: Mutex::new(None),
            subscribers: Mutex::new(BTreeMap::new()),
            rollout: Mutex::new(RolloutState {
                active: ModelVersion {
                    id: 0,
                    label: "boot".into(),
                    frame_dim: dims.input as u32,
                    code_dim: dims.code as u32,
                },
                staged: None,
                prior: None,
                rollbacks: 0,
            }),
        })
    }

    /// Installs (or clears) the fleet assignment this gateway enforces.
    /// With a view installed, a push for a cluster this gateway does not
    /// own draws [`Message::Redirect`] naming the current owner; pulls
    /// are always served locally so clients can drain rows stored here
    /// before a rebalance moved the cluster away.
    pub fn set_fleet_view(&self, view: Option<FleetView>) {
        *self.fleet.lock().expect("fleet lock") = view;
    }

    /// The currently installed fleet view, if any.
    #[must_use]
    pub fn fleet_view(&self) -> Option<FleetView> {
        self.fleet.lock().expect("fleet lock").clone()
    }

    /// The gateway's flush/backpressure configuration.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }

    /// The gateway's clock.
    #[must_use]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The served data-plane geometry.
    #[must_use]
    pub fn frame_dims(&self) -> FrameDims {
        self.dims
    }

    /// A snapshot of the serving statistics (also served over the wire
    /// via [`Message::StatsRequest`]).
    #[must_use]
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.stats.snapshot()
    }

    /// The gateway's trace ring (capacity set by
    /// [`GatewayConfig::trace_capacity`]).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The deterministic text export of the trace ring — identical bytes
    /// for a live run and its replay under the same virtual clock.
    #[must_use]
    pub fn trace_export(&self) -> String {
        self.tracer.export_text()
    }

    /// The metrics text exposition (also served over the wire via
    /// [`Message::MetricsRequest`]). Byte-stable under a manual clock:
    /// series render in a fixed order with integer values except the two
    /// compatibility percentiles.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let mut reg = Registry::new();
        self.stats.fill_registry(&mut reg);
        reg.render()
    }

    /// Whether [`Message::Shutdown`] has been received.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        // SeqCst: pairs with the store in begin_shutdown — after a
        // client observes the flag, every pre-shutdown flush must also
        // be visible to it.
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// The shard serving a cluster: FNV-1a over the id's little-endian
    /// bytes ([`orco_tensor::fnv1a64`], the workspace's one stable
    /// dependency-free hash), reduced modulo the shard count.
    /// Deterministic across runs, platforms, and thread counts (unlike
    /// `DefaultHasher`).
    #[must_use]
    pub fn shard_of(&self, cluster_id: u64) -> usize {
        (orco_tensor::fnv1a64(&cluster_id.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    /// Handles one decoded request and produces its reply. Never panics
    /// on hostile input; failures become [`Message::ErrorReply`].
    /// Equivalent to [`Gateway::handle_with_outbox`] without a streaming
    /// outbox, so `Subscribe` draws a typed error.
    pub fn handle(&self, msg: Message) -> Message {
        self.handle_with_outbox(msg, None)
    }

    /// Handles one decoded request on a connection whose server-push
    /// channel is `outbox` (when the transport has one). `Subscribe`
    /// registers the outbox for the cluster's decoded batches; on
    /// outbox-less transports it draws [`ErrorCode::BadRequest`].
    pub fn handle_with_outbox(&self, msg: Message, outbox: Option<&Arc<Outbox>>) -> Message {
        self.clock.tick();
        // Sweep *every* shard for overdue batches before dispatching.
        // Without this, a pending batch on shard A would wait for the next
        // request that happens to hash onto shard A — under a virtual
        // clock that request may never come, and the batch starves
        // (the deadline-starvation regression in `tests/gateway_loopback.rs`
        // pins the fix).
        self.sweep_deadlines();
        let now = self.clock.now_s();
        let reply = match msg {
            Message::Hello { client_id, nonce, mac } => match self.cfg.auth_secret {
                // Recompute over the wire fields; a garbled or unkeyed
                // Hello fails closed before any connection state exists.
                Some(secret) if auth::hello_mac(secret, client_id, nonce) != mac => {
                    Message::ErrorReply {
                        code: ErrorCode::Unauthorized,
                        detail: "Hello MAC does not verify against the shared secret".into(),
                    }
                }
                _ => self.hello_ack(),
            },
            Message::PushFrames { cluster_id, trace, frames } => {
                self.push(cluster_id, trace, &frames, now)
            }
            Message::PullDecoded { cluster_id, max_frames, trace: _ } => {
                // The request's trace id rides the wire for client-side
                // correlation; delivery spans carry the *originating*
                // push traces so the chain stays causal.
                self.pull(cluster_id, max_frames as usize, now)
            }
            Message::Subscribe { cluster_id, trace } => {
                self.subscribe(cluster_id, trace, now, outbox)
            }
            Message::Unsubscribe { cluster_id } => self.unsubscribe(cluster_id, outbox),
            Message::StatsRequest => Message::StatsReply(self.stats.snapshot()),
            Message::MetricsRequest => Message::MetricsReply { text: self.metrics_text() },
            Message::RolloutPropose { version, weight, bias, nonce, mac } => {
                self.propose(version, weight, bias, nonce, mac)
            }
            Message::ActivateVersion { version_id, nonce, mac } => {
                self.activate(version_id, nonce, mac, now)
            }
            Message::VersionQuery => self.version_reply(),
            Message::FleetStatsQuery => Message::ErrorReply {
                code: ErrorCode::BadRequest,
                detail: "fleet stats are aggregated by the directory, not a gateway".into(),
            },
            Message::Shutdown => {
                self.begin_shutdown(now);
                Message::ShutdownAck
            }
            other => Message::ErrorReply {
                code: ErrorCode::BadRequest,
                detail: format!("{} is a reply, not a request", other.kind()),
            },
        };
        // The post-swap guard runs after dispatch so it sees the drift
        // samples any flush above just recorded.
        self.maybe_rollback(now);
        // Deliver anything a flush above made available to subscribers.
        self.pump_streams();
        reply
    }

    fn hello_ack(&self) -> Message {
        Message::HelloAck {
            version: PROTOCOL_VERSION,
            shards: self.shards.len() as u16,
            frame_dim: self.dims.input as u32,
            code_dim: self.dims.code as u32,
            active_version: self.rollout.lock().expect("rollout lock").active.id,
        }
    }

    /// Decodes one raw frame, handles it, and encodes the reply into
    /// `reply` (cleared first). Malformed frames draw an encoded
    /// [`Message::ErrorReply`] rather than an error — the wire never goes
    /// silent. Both the TCP connection loop and the loopback transport
    /// route through here, so every test of one is a test of the other.
    pub fn handle_bytes(&self, frame: &[u8], reply: &mut Vec<u8>) {
        self.handle_bytes_with_outbox(frame, reply, None);
    }

    /// [`Gateway::handle_bytes`] for a connection with a streaming
    /// outbox.
    pub fn handle_bytes_with_outbox(
        &self,
        frame: &[u8],
        reply: &mut Vec<u8>,
        outbox: Option<&Arc<Outbox>>,
    ) {
        let resp = match Message::decode(frame) {
            Ok(msg) => self.handle_with_outbox(msg, outbox),
            Err(e) => Message::ErrorReply { code: ErrorCode::BadRequest, detail: e.to_string() },
        };
        resp.encode_into(reply);
    }

    fn push(&self, cluster_id: u64, trace: u64, frames: &Matrix, now: f64) -> Message {
        // Ownership first: a fleet gateway never accepts (or silently
        // misroutes) a push for a cluster assigned elsewhere — the
        // client is bounced to the owner with the epoch that named it.
        if let Some(view) = self.fleet.lock().expect("fleet lock").as_ref() {
            if !view.owns(cluster_id) {
                if let Some(owner) = view.owner_of(cluster_id) {
                    self.stats.record_redirect();
                    return Message::Redirect {
                        cluster_id,
                        epoch: view.epoch,
                        addr: owner.addr.clone(),
                    };
                }
            }
        }
        if frames.cols() != self.dims.input {
            return Message::ErrorReply {
                code: ErrorCode::Shape,
                detail: format!(
                    "frame width mismatch: expected {} f32 elements, got {}",
                    self.dims.input,
                    frames.cols()
                ),
            };
        }
        let rows = frames.rows();
        if rows == 0 {
            return Message::PushAck { accepted: 0 };
        }
        if rows > self.cfg.queue_capacity {
            return Message::ErrorReply {
                code: ErrorCode::BadRequest,
                detail: format!(
                    "push of {rows} rows exceeds the shard capacity of {}; split the push",
                    self.cfg.queue_capacity
                ),
            };
        }
        let shard_idx = self.shard_of(cluster_id);
        let slot = &self.shards[shard_idx];
        let mut core = slot.core.lock().expect("shard lock");
        // The shutdown check must happen under the shard lock: either
        // this push wins the lock and its frames are flushed by
        // `begin_shutdown`'s subsequent per-shard flush, or shutdown wins
        // and the push is rejected here — a PushAck'd frame can never be
        // stranded in a batcher whose flushers have exited.
        if self.is_shutting_down() {
            return Message::ErrorReply {
                code: ErrorCode::ShuttingDown,
                detail: "gateway is shutting down".into(),
            };
        }
        if !core.try_enqueue(cluster_id, trace, frames, now, self.cfg.queue_capacity) {
            self.stats.record_busy();
            // No spans for a refused push: the client will retry, and a
            // retry must not double-count the trace's pushed rows.
            return Message::Busy {
                queued: core.in_flight() as u32,
                capacity: self.cfg.queue_capacity as u32,
            };
        }
        self.stats.record_push(shard_idx, rows as u64, (rows * self.dims.input * 4) as u64);
        if trace != 0 && self.tracer.enabled() {
            let base = Span {
                trace_id: trace,
                kind: SpanKind::Push,
                cluster_id,
                shard: shard_idx as u16,
                rows: rows as u32,
                at_s: now,
                detail: "",
            };
            self.tracer.record(base);
            self.tracer.record(Span { kind: SpanKind::Enqueue, ..base });
        }
        if core.pending_rows() >= self.cfg.batch_max_frames {
            if let Err(e) = core.flush(now, FlushReason::Size, &self.stats, &self.tracer) {
                return internal(&e);
            }
        } else {
            // Arm the shard's deadline flusher (TCP mode; loopback has
            // none and relies on the dispatch-time check above).
            slot.cv.notify_one();
        }
        Message::PushAck { accepted: rows as u32 }
    }

    fn pull(&self, cluster_id: u64, max: usize, now: f64) -> Message {
        let slot = &self.shards[self.shard_of(cluster_id)];
        let mut core = slot.core.lock().expect("shard lock");
        // Read-your-writes needs a flush only when the puller's own
        // frames are pending (overdue batches were already swept at
        // dispatch). Anything else stays pending — a polling consumer
        // must not collapse other clusters' half-built batches to size-1
        // flushes.
        if core.has_pending_for(cluster_id) {
            if let Err(e) = core.flush(now, FlushReason::Pull, &self.stats, &self.tracer) {
                return internal(&e);
            }
        }
        match core.pull(cluster_id, max, now, &self.stats, &self.tracer, false) {
            Ok((version, frames)) => Message::Decoded { cluster_id, version, frames },
            Err(e) => internal(&e),
        }
    }

    /// Stages `version` (checkpoint weights ride the proposal) without
    /// touching what serves. Rejections are [`Message::RolloutAck`] with
    /// `accepted: false`, so a controller can distinguish a policy
    /// refusal from a transport error.
    fn propose(
        &self,
        version: ModelVersion,
        weight: Matrix,
        bias: Matrix,
        nonce: u64,
        mac: u64,
    ) -> Message {
        if let Some(secret) = self.cfg.auth_secret {
            if auth::rollout_mac(secret, version.id, nonce) != mac {
                return Message::ErrorReply {
                    code: ErrorCode::Unauthorized,
                    detail: "RolloutPropose MAC does not verify against the shared secret".into(),
                };
            }
        }
        let version_id = version.id;
        let reject = |detail: String| Message::RolloutAck { version_id, accepted: false, detail };
        if version.label.len() > MAX_LABEL {
            return reject(format!("version label exceeds {MAX_LABEL} bytes"));
        }
        if (version.frame_dim as usize, version.code_dim as usize)
            != (self.dims.input, self.dims.code)
        {
            return reject(format!(
                "proposed geometry {}x{} does not match the served {}x{}",
                version.frame_dim, version.code_dim, self.dims.input, self.dims.code
            ));
        }
        if weight.shape() != (self.dims.code, self.dims.input) {
            return reject(format!(
                "encoder weight is {}x{}, expected {}x{}",
                weight.rows(),
                weight.cols(),
                self.dims.code,
                self.dims.input
            ));
        }
        if bias.shape() != (1, self.dims.code) {
            return reject(format!(
                "encoder bias is {}x{}, expected 1x{}",
                bias.rows(),
                bias.cols(),
                self.dims.code
            ));
        }
        let checkpoint = EncoderCheckpoint { weight, bias, label: version.label.clone() };
        let mut state = self.rollout.lock().expect("rollout lock");
        if version.id <= state.active.id {
            return reject(format!(
                "version id {} is not newer than the active {}",
                version.id, state.active.id
            ));
        }
        // Prove the checkpoint grafts onto this gateway's codec family
        // before accepting (all shards share one geometry, so shard 0
        // answers for all of them).
        if let Err(e) =
            self.shards[0].core.lock().expect("shard lock").stage_from_active(&checkpoint)
        {
            return reject(format!("checkpoint does not stage onto the active codec: {e}"));
        }
        // Restaging replaces any earlier staged version — last writer
        // wins, mirroring how a controller retries a revised candidate.
        state.staged = Some((version, checkpoint));
        Message::RolloutAck { version_id, accepted: true, detail: String::new() }
    }

    /// Cuts the staged version over to active on every shard, each at
    /// its own flush boundary (pending rows flush under the old codec
    /// first — zero drops, no mixed-version flush).
    fn activate(&self, version_id: u64, nonce: u64, mac: u64, now: f64) -> Message {
        if let Some(secret) = self.cfg.auth_secret {
            if auth::rollout_mac(secret, version_id, nonce) != mac {
                return Message::ErrorReply {
                    code: ErrorCode::Unauthorized,
                    detail: "ActivateVersion MAC does not verify against the shared secret".into(),
                };
            }
        }
        let mut state = self.rollout.lock().expect("rollout lock");
        match &state.staged {
            Some((v, _)) if v.id == version_id => {}
            Some((v, _)) => {
                return Message::RolloutAck {
                    version_id,
                    accepted: false,
                    detail: format!("staged version is {}, not {version_id}", v.id),
                };
            }
            None => {
                return Message::RolloutAck {
                    version_id,
                    accepted: false,
                    detail: "no version is staged".into(),
                };
            }
        }
        // Derive every shard's new codec before touching any of them, so
        // a failure leaves the gateway fully on the old version.
        let checkpoint = &state.staged.as_ref().expect("matched above").1;
        let mut staged_codecs = Vec::with_capacity(self.shards.len());
        for slot in &self.shards {
            match slot.core.lock().expect("shard lock").stage_from_active(checkpoint) {
                Ok(codec) => staged_codecs.push(codec),
                Err(e) => {
                    return Message::RolloutAck {
                        version_id,
                        accepted: false,
                        detail: format!("staging failed: {e}"),
                    };
                }
            }
        }
        let (version, _) = state.staged.take().expect("matched above");
        for (slot, codec) in self.shards.iter().zip(staged_codecs) {
            let mut core = slot.core.lock().expect("shard lock");
            if let Err(e) = core.install_codec(version.id, codec, now, &self.stats, &self.tracer) {
                // Only a codec shape error can land here, which the
                // staging pass above has already ruled out; surface it
                // rather than unwrapping, but do not try to unwind.
                return internal(&e);
            }
        }
        state.prior = Some(std::mem::replace(&mut state.active, version));
        self.stats.record_swap();
        self.stats.set_active_version(state.active.id);
        self.stats.set_drift(false);
        Message::RolloutAck { version_id, accepted: true, detail: String::new() }
    }

    fn version_reply(&self) -> Message {
        let state = self.rollout.lock().expect("rollout lock");
        Message::VersionReply {
            active: state.active.clone(),
            staged: state.staged.as_ref().map(|(v, _)| v.clone()),
            prior: state.prior.clone(),
            rollbacks: state.rollbacks,
            drift: self.stats.snapshot().drift,
        }
    }

    /// The post-swap safety rail. While a prior version is retained and
    /// the guard is armed, each dispatch checks every shard's windowed
    /// sample error: one shard over the bound reverts the whole gateway
    /// to the prior version (at flush boundaries, like the swap);
    /// a full window under the bound on every shard commits the swap
    /// and releases the prior.
    fn maybe_rollback(&self, now: f64) {
        if self.cfg.rollback_guard <= 0.0 {
            return;
        }
        let mut state = self.rollout.lock().expect("rollout lock");
        let Some(prior) = state.prior.clone() else {
            return;
        };
        let mut tripped = false;
        let mut all_windows_full = true;
        for slot in &self.shards {
            match slot.core.lock().expect("shard lock").drift_windowed_error() {
                Some(err) if err > self.cfg.rollback_guard => tripped = true,
                Some(_) => {}
                None => all_windows_full = false,
            }
        }
        if tripped {
            for (idx, slot) in self.shards.iter().enumerate() {
                let mut core = slot.core.lock().expect("shard lock");
                match core.rollback_to(prior.id, now, &self.stats, &self.tracer) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("orco-serve: shard {idx} no longer retains version {}", prior.id);
                    }
                    Err(e) => eprintln!("orco-serve: shard {idx} rollback flush failed: {e}"),
                }
            }
            let demoted = std::mem::replace(&mut state.active, prior);
            state.prior = None;
            state.rollbacks += 1;
            self.stats.record_rollback();
            self.stats.set_active_version(state.active.id);
            self.stats.set_drift(false);
            eprintln!(
                "orco-serve: post-swap guard tripped; rolled back from version {} to {}",
                demoted.id, state.active.id
            );
        } else if all_windows_full {
            // Every shard completed a clean window on the new model:
            // the swap is committed and the prior is no longer a target.
            state.prior = None;
        }
    }

    /// Subscribes `outbox` to `cluster_id`'s decoded batches. The reply
    /// reports the stored backlog, which the next pump streams out.
    fn subscribe(
        &self,
        cluster_id: u64,
        trace: u64,
        now: f64,
        outbox: Option<&Arc<Outbox>>,
    ) -> Message {
        let Some(outbox) = outbox else {
            return Message::ErrorReply {
                code: ErrorCode::BadRequest,
                detail: "this transport does not support streaming subscriptions".into(),
            };
        };
        let shard_idx = self.shard_of(cluster_id);
        let backlog = {
            let slot = &self.shards[shard_idx];
            let core = slot.core.lock().expect("shard lock");
            core.stored_rows_for(cluster_id)
        };
        if trace != 0 && self.tracer.enabled() {
            self.tracer.record(Span {
                trace_id: trace,
                kind: SpanKind::Subscribe,
                cluster_id,
                shard: shard_idx as u16,
                rows: backlog as u32,
                at_s: now,
                detail: "",
            });
        }
        let mut subs = self.subscribers.lock().expect("subscribers lock");
        let entry = subs.entry(cluster_id).or_default();
        if !entry.iter().any(|w| w.upgrade().is_some_and(|a| Arc::ptr_eq(&a, outbox))) {
            entry.push(Arc::downgrade(outbox));
        }
        Message::SubscribeAck { cluster_id, backlog: backlog as u32 }
    }

    /// Removes `outbox`'s subscription for `cluster_id`. Acked with a
    /// zero-backlog [`Message::SubscribeAck`].
    fn unsubscribe(&self, cluster_id: u64, outbox: Option<&Arc<Outbox>>) -> Message {
        if let Some(outbox) = outbox {
            let mut subs = self.subscribers.lock().expect("subscribers lock");
            if let Some(entry) = subs.get_mut(&cluster_id) {
                entry.retain(|w| w.upgrade().is_some_and(|a| !Arc::ptr_eq(&a, outbox)));
                if entry.is_empty() {
                    subs.remove(&cluster_id);
                }
            }
        }
        Message::SubscribeAck { cluster_id, backlog: 0 }
    }

    /// Streams every subscribed cluster's stored rows to its
    /// subscribers. Runs after each dispatch and after deadline/drain
    /// flushes; encodes each batch once and fans the frame out.
    ///
    /// The subscriber map and shard cores are locked strictly in
    /// sequence (cluster list is copied first), so this cannot deadlock
    /// against the dispatch path.
    pub(crate) fn pump_streams(&self) {
        let clusters: Vec<u64> = {
            let mut subs = self.subscribers.lock().expect("subscribers lock");
            subs.retain(|_, entry| {
                entry.retain(|w| w.upgrade().is_some());
                !entry.is_empty()
            });
            subs.keys().copied().collect()
        };
        let now = self.clock.now_s();
        for cluster in clusters {
            // Mid-swap a cluster's backlog can span model versions; each
            // pull returns one single-version run, so keep draining until
            // the store is empty (every delivery stays version-pure).
            while let Some((version, frames)) = {
                let slot = &self.shards[self.shard_of(cluster)];
                let mut core = slot.core.lock().expect("shard lock");
                if core.stored_rows_for(cluster) == 0 {
                    None
                } else {
                    match core.pull(cluster, usize::MAX, now, &self.stats, &self.tracer, true) {
                        Ok(pulled) => Some(pulled),
                        Err(e) => {
                            eprintln!(
                                "orco-serve: streaming pull for cluster {cluster} failed: {e}"
                            );
                            None
                        }
                    }
                }
            } {
                if frames.rows() == 0 {
                    break;
                }
                self.fan_out(cluster, version, frames);
            }
        }
    }

    /// Encodes one streamed batch and pushes it to every subscriber of
    /// `cluster` (encode once, fan out clones).
    fn fan_out(&self, cluster: u64, version: u64, frames: Matrix) {
        let frame = Message::StreamFrames { cluster_id: cluster, version, frames }.encode();
        let subs = self.subscribers.lock().expect("subscribers lock");
        if let Some(entry) = subs.get(&cluster) {
            for w in entry {
                if let Some(outbox) = w.upgrade() {
                    outbox.push_frame(frame.clone());
                }
            }
        }
    }

    fn begin_shutdown(&self, now: f64) {
        // SeqCst: this store must be globally ordered before the drain
        // flushes below so no worker accepts work after the flag rises
        // (pairs with the load in is_shutting_down).
        self.shutting_down.store(true, Ordering::SeqCst);
        for slot in &self.shards {
            let mut core = slot.core.lock().expect("shard lock");
            if let Err(e) = core.flush(now, FlushReason::Drain, &self.stats, &self.tracer) {
                eprintln!("orco-serve: flush during shutdown failed: {e}");
            }
            slot.cv.notify_all();
        }
        // Stream the drained rows out, then end every subscription so
        // blocked writers wake and streaming clients see end-of-stream.
        self.pump_streams();
        let subs = self.subscribers.lock().expect("subscribers lock");
        for entry in subs.values() {
            for w in entry {
                if let Some(outbox) = w.upgrade() {
                    outbox.close();
                }
            }
        }
    }

    /// Flushes every shard whose pending micro-batch has outlived
    /// [`GatewayConfig::batch_deadline`]. Runs on every dispatch, and
    /// external schedulers (the DES transport, tests advancing a manual
    /// clock) should call it after moving virtual time so idle shards'
    /// batches are flushed without waiting for traffic. Cheap when nothing
    /// is due: one lock + one comparison per shard.
    pub fn sweep_deadlines(&self) {
        let now = self.clock.now_s();
        let deadline_s = self.cfg.batch_deadline.as_secs_f64();
        for (idx, slot) in self.shards.iter().enumerate() {
            let mut core = slot.core.lock().expect("shard lock");
            if core.deadline_due(now, deadline_s) {
                if let Err(e) = core.flush(now, FlushReason::Deadline, &self.stats, &self.tracer) {
                    eprintln!("orco-serve: shard {idx} deadline sweep failed: {e}");
                }
            }
        }
    }

    /// Advances a virtual clock by `dt` and immediately sweeps deadlines —
    /// the one call an external scheduler needs per time step. No-op on a
    /// real clock (beyond the sweep, which is harmless).
    pub fn advance_clock(&self, dt: Duration) {
        self.clock.advance(dt);
        self.sweep_deadlines();
        self.pump_streams();
    }

    /// Runs shard `idx`'s deadline flusher until shutdown. Spawned by the
    /// TCP server (one thread per shard); the loopback transport instead
    /// checks deadlines at dispatch time against its virtual clock.
    pub(crate) fn run_deadline_flusher(&self, idx: usize) {
        let slot = &self.shards[idx];
        let mut core = slot.core.lock().expect("shard lock");
        loop {
            let now = self.clock.now_s();
            if self.is_shutting_down() {
                if let Err(e) = core.flush(now, FlushReason::Drain, &self.stats, &self.tracer) {
                    eprintln!("orco-serve: shard {idx} final flush failed: {e}");
                }
                drop(core);
                self.pump_streams();
                return;
            }
            if core.pending_rows() == 0 {
                // Nothing pending: doze until a push arms us (bounded so
                // shutdown is noticed even without a notification).
                let (guard, _) =
                    slot.cv.wait_timeout(core, Duration::from_millis(50)).expect("shard lock");
                core = guard;
                continue;
            }
            let due_at = core.oldest_enqueue_s() + self.cfg.batch_deadline.as_secs_f64();
            if now >= due_at {
                if let Err(e) = core.flush(now, FlushReason::Deadline, &self.stats, &self.tracer) {
                    eprintln!("orco-serve: shard {idx} deadline flush failed: {e}");
                }
                // Deliver to subscribers without holding the core lock
                // (pump_streams re-locks shard cores).
                drop(core);
                self.pump_streams();
                core = slot.core.lock().expect("shard lock");
                continue;
            }
            let wait = Duration::from_secs_f64((due_at - now).clamp(0.0005, 0.05));
            let (guard, _) = slot.cv.wait_timeout(core, wait).expect("shard lock");
            core = guard;
        }
    }
}

fn internal(e: &OrcoError) -> Message {
    Message::ErrorReply { code: ErrorCode::Internal, detail: e.to_string() }
}
