//! Capped exponential backoff with deterministic jitter.
//!
//! Retrying a [`crate::protocol::Message::Busy`] reply on a fixed short
//! interval is the worst of both worlds: under genuine overload every
//! client re-offers its frames in lockstep (a retry storm that keeps the
//! shard saturated), and under a brief stall it still waits the full
//! interval. [`Backoff`] doubles the delay on every consecutive failure
//! up to a cap, and jitters each delay uniformly into `[delay/2, delay]`
//! so synchronized clients decorrelate.
//!
//! The jitter is drawn from the workspace's own [`OrcoRng`], seeded
//! explicitly — two `Backoff`s built with the same parameters and seed
//! produce the identical delay sequence, which keeps the chaos gauntlet's
//! retry schedules bit-reproducible.

use std::time::Duration;

use orco_tensor::OrcoRng;

/// Capped exponential backoff with deterministic half-range jitter.
#[derive(Debug)]
pub struct Backoff {
    rng: OrcoRng,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff starting at `base`, doubling per failure, capped at
    /// `cap`, jittered by an [`OrcoRng`] seeded with `seed`.
    #[must_use]
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self { rng: OrcoRng::from_seed_u64(seed), base, cap, attempt: 0 }
    }

    /// Consecutive failures since the last [`Backoff::reset`].
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The next delay: `min(cap, base * 2^attempt)` jittered uniformly
    /// into `[delay/2, delay]`. Increments the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self
            .base
            .saturating_mul(1_u32.checked_shl(exp).unwrap_or(u32::MAX))
            .min(self.cap)
            .max(self.base);
        // Uniform in [0.5, 1.0] of the raw delay: enough spread to
        // decorrelate a thundering herd, never less than half the
        // intended wait.
        let frac = 0.5 + 0.5 * self.rng.next_f64();
        Duration::from_secs_f64(raw.as_secs_f64() * frac)
    }

    /// Clears the failure streak after progress; the next delay starts
    /// from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(50);
        let mut b = Backoff::new(base, cap, 7);
        let mut prev_raw_bound = Duration::ZERO;
        for i in 0..12 {
            let d = b.next_delay();
            let raw = base.saturating_mul(1 << i.min(10)).min(cap);
            assert!(d <= raw, "delay {d:?} exceeds raw bound {raw:?}");
            assert!(d >= raw / 2, "delay {d:?} below half the raw bound {raw:?}");
            assert!(raw >= prev_raw_bound);
            prev_raw_bound = raw;
        }
        // Saturated: every further delay lands in [cap/2, cap].
        let d = b.next_delay();
        assert!(d <= cap && d >= cap / 2);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || Backoff::new(Duration::from_millis(2), Duration::from_millis(100), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn reset_restarts_from_base() {
        let base = Duration::from_millis(4);
        let mut b = Backoff::new(base, Duration::from_secs(1), 3);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d >= base / 2 && d <= base);
    }
}
