//! Client-side transports: how request frames reach a gateway.
//!
//! [`Transport`] produces [`Connection`]s; a connection exchanges one
//! request frame for one reply frame. Two implementations ship:
//!
//! * [`Tcp`] — a real socket. Frames are written and read with the
//!   length-prefixed protocol of [`crate::protocol`].
//! * [`Loopback`] — in-process and deterministic. Requests are still
//!   encoded to bytes and decoded on the gateway side
//!   ([`Gateway::handle_bytes`]), so the full wire path — header
//!   validation, payload decode, reply encode — runs under test, minus
//!   only the socket. With a [`crate::Clock::manual`] gateway clock the
//!   whole exchange is bit-deterministic on one thread or many.
//!
//! Both connections use `?` across socket and codec boundaries — the
//! `OrcoError::Io` conversion exists precisely so this layer needs no
//! ad-hoc error mapping.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use orcodcs::OrcoError;

use crate::gateway::Gateway;
use crate::protocol::Message;

/// A factory of request/reply [`Connection`]s.
pub trait Transport {
    /// The connection type this transport produces.
    type Conn: Connection;

    /// Opens a new connection to the gateway.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when the endpoint is unreachable.
    fn connect(&self) -> Result<Self::Conn, OrcoError>;
}

/// One request/reply channel to a gateway.
pub trait Connection {
    /// Sends `msg` and waits for the gateway's reply.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] on transport failure or a malformed
    /// reply.
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError>;
}

/// In-process transport bound to a gateway instance.
#[derive(Debug, Clone)]
pub struct Loopback {
    gateway: Arc<Gateway>,
}

impl Loopback {
    /// Binds a loopback transport to `gateway`.
    #[must_use]
    pub fn new(gateway: Arc<Gateway>) -> Self {
        Self { gateway }
    }

    /// The gateway this transport dispatches into.
    #[must_use]
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }
}

impl Transport for Loopback {
    type Conn = LoopbackConnection;

    fn connect(&self) -> Result<Self::Conn, OrcoError> {
        Ok(LoopbackConnection {
            gateway: Arc::clone(&self.gateway),
            frame: Vec::new(),
            reply: Vec::new(),
        })
    }
}

/// A [`Loopback`] connection; reuses its encode buffers across requests.
#[derive(Debug)]
pub struct LoopbackConnection {
    gateway: Arc<Gateway>,
    frame: Vec<u8>,
    reply: Vec<u8>,
}

impl Connection for LoopbackConnection {
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError> {
        msg.encode_into(&mut self.frame);
        self.gateway.handle_bytes(&self.frame, &mut self.reply);
        Ok(Message::decode(&self.reply)?)
    }
}

/// TCP transport to a remote gateway.
#[derive(Debug, Clone)]
pub struct Tcp {
    addr: String,
}

impl Tcp {
    /// A transport dialing `addr` (e.g. `"127.0.0.1:7117"`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// The address this transport dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Transport for Tcp {
    type Conn = TcpConnection;

    fn connect(&self) -> Result<Self::Conn, OrcoError> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpConnection { stream, scratch: Vec::new() })
    }
}

/// A [`Tcp`] connection; one in-flight request at a time.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl Connection for TcpConnection {
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError> {
        msg.encode_into(&mut self.scratch);
        self.stream.write_all(&self.scratch)?;
        match Message::read_from(&mut self.stream)? {
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "gateway closed the connection before replying",
            )
            .into()),
        }
    }
}
