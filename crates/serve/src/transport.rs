//! Client-side transports: how request frames reach a gateway.
//!
//! [`Transport`] produces [`Connection`]s; a connection exchanges one
//! request frame for one reply frame, and (on transports with a
//! server-push channel) surfaces streamed frames via
//! [`Connection::poll_stream`]. Two implementations ship here:
//!
//! * [`Tcp`] — a real socket. Frames are written and read with the
//!   length-prefixed protocol of [`crate::protocol`]; streamed
//!   [`Message::StreamFrames`] arriving while a reply is awaited are
//!   stashed and handed out by `poll_stream`.
//! * [`Loopback`] — in-process and deterministic, generic over any
//!   [`Service`] (gateway or fleet directory). Requests are still
//!   encoded to bytes and decoded on the server side, so the full wire
//!   path — header validation, payload decode, reply encode — runs
//!   under test, minus only the socket. With a [`crate::Clock::manual`]
//!   clock the whole exchange is bit-deterministic on one thread or
//!   many.
//!
//! Both connections use `?` across socket and codec boundaries — the
//! `OrcoError::Io` conversion exists precisely so this layer needs no
//! ad-hoc error mapping.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use orcodcs::OrcoError;

use crate::gateway::Gateway;
use crate::outbox::Outbox;
use crate::protocol::Message;
use crate::service::Service;

/// A factory of request/reply [`Connection`]s.
pub trait Transport {
    /// The connection type this transport produces.
    type Conn: Connection;

    /// Opens a new connection to the gateway.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when the endpoint is unreachable.
    fn connect(&self) -> Result<Self::Conn, OrcoError>;
}

/// One request/reply channel to a gateway.
pub trait Connection {
    /// Sends `msg` and waits for the gateway's reply.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] on transport failure or a malformed
    /// reply.
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError>;

    /// Returns the next server-pushed frame (a streaming delivery for a
    /// subscribed cluster), waiting up to `timeout` for one to arrive.
    /// `Ok(None)` means nothing was streamed in time; transports without
    /// a server-push channel always return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] on transport failure or a malformed
    /// streamed frame.
    fn poll_stream(&mut self, _timeout: Duration) -> Result<Option<Message>, OrcoError> {
        Ok(None)
    }
}

/// In-process transport bound to a [`Service`] instance (a [`Gateway`]
/// by default; the fleet directory works the same way).
pub struct Loopback<S: Service + ?Sized = Gateway> {
    svc: Arc<S>,
}

impl<S: Service + ?Sized> Clone for Loopback<S> {
    fn clone(&self) -> Self {
        Self { svc: Arc::clone(&self.svc) }
    }
}

impl<S: Service + ?Sized> std::fmt::Debug for Loopback<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Loopback").finish_non_exhaustive()
    }
}

impl<S: Service + ?Sized> Loopback<S> {
    /// Binds a loopback transport to a service.
    #[must_use]
    pub fn new(svc: Arc<S>) -> Self {
        Self { svc }
    }

    /// The service this transport dispatches into.
    #[must_use]
    pub fn service(&self) -> &Arc<S> {
        &self.svc
    }
}

impl Loopback<Gateway> {
    /// The gateway this transport dispatches into.
    #[must_use]
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.svc
    }
}

impl<S: Service + ?Sized> Transport for Loopback<S> {
    type Conn = LoopbackConnection<S>;

    fn connect(&self) -> Result<Self::Conn, OrcoError> {
        Ok(LoopbackConnection {
            svc: Arc::clone(&self.svc),
            outbox: Arc::new(Outbox::new()),
            frame: Vec::new(),
            reply: Vec::new(),
        })
    }
}

/// A [`Loopback`] connection; reuses its encode buffers across requests.
pub struct LoopbackConnection<S: Service + ?Sized = Gateway> {
    svc: Arc<S>,
    /// Server-push channel: streamed frames land here synchronously
    /// during dispatch and are drained by [`Connection::poll_stream`].
    outbox: Arc<Outbox>,
    frame: Vec<u8>,
    reply: Vec<u8>,
}

impl<S: Service + ?Sized> Connection for LoopbackConnection<S> {
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError> {
        msg.encode_into(&mut self.frame);
        self.svc.handle_frame(&self.frame, &mut self.reply, Some(&self.outbox));
        Ok(Message::decode(&self.reply)?)
    }

    fn poll_stream(&mut self, _timeout: Duration) -> Result<Option<Message>, OrcoError> {
        // In-process delivery is synchronous: anything streamed is
        // already queued, so the timeout never needs to block.
        match self.outbox.try_next() {
            Some(frame) => Ok(Some(Message::decode(&frame)?)),
            None => Ok(None),
        }
    }
}

/// TCP transport to a remote gateway.
#[derive(Debug, Clone)]
pub struct Tcp {
    addr: String,
}

impl Tcp {
    /// A transport dialing `addr` (e.g. `"127.0.0.1:7117"`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// The address this transport dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Transport for Tcp {
    type Conn = TcpConnection;

    fn connect(&self) -> Result<Self::Conn, OrcoError> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpConnection { stream, scratch: Vec::new(), streamed: VecDeque::new() })
    }
}

/// A [`Tcp`] connection; one in-flight request at a time.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
    scratch: Vec<u8>,
    /// Streamed frames that arrived interleaved with a reply; drained by
    /// [`Connection::poll_stream`].
    streamed: VecDeque<Message>,
}

impl Connection for TcpConnection {
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError> {
        msg.encode_into(&mut self.scratch);
        self.stream.write_all(&self.scratch)?;
        loop {
            match Message::read_from(&mut self.stream)? {
                // The server may interleave streamed deliveries with the
                // reply on the same socket; stash them for poll_stream.
                Some(streamed @ Message::StreamFrames { .. }) => self.streamed.push_back(streamed),
                Some(reply) => return Ok(reply),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "gateway closed the connection before replying",
                    )
                    .into())
                }
            }
        }
    }

    fn poll_stream(&mut self, timeout: Duration) -> Result<Option<Message>, OrcoError> {
        if let Some(msg) = self.streamed.pop_front() {
            return Ok(Some(msg));
        }
        // A zero timeout would mean "block forever" to set_read_timeout;
        // clamp it to the shortest real wait instead.
        self.stream.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let read = Message::read_from(&mut self.stream);
        self.stream.set_read_timeout(None)?;
        match read {
            Ok(msg) => Ok(msg),
            Err(OrcoError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}
