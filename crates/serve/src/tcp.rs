//! The TCP face of the gateway: acceptor, per-connection handlers, and
//! per-shard deadline-flusher threads — all on `std::net` / `std::thread`
//! (the build image has no async runtime, and none is needed: the
//! protocol is strictly request/reply and shard work is CPU-bound).
//!
//! Thread model:
//!
//! * one **acceptor** blocks in `accept`; every connection gets its own
//!   detached handler thread reading frames until EOF or `Shutdown`;
//! * one **deadline flusher** per shard sleeps on the shard's condvar and
//!   flushes batches that outlive [`crate::GatewayConfig::batch_deadline`];
//! * `Shutdown` sets the gateway flag, then the handling connection pokes
//!   the acceptor awake with a throwaway connect so `accept` returns and
//!   the loop observes the flag (the standard `std::net` unblock idiom).

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

use orcodcs::OrcoError;

use crate::gateway::Gateway;
use crate::protocol::{read_frame, ErrorCode, FrameRead, Message};

/// A running TCP server around an `Arc<Gateway>`.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    flushers: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and spawns the
    /// acceptor and the per-shard deadline flushers.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when binding or spawning fails.
    ///
    /// # Panics
    ///
    /// Panics if the gateway was built with a [`crate::Clock::manual`]
    /// clock — deadline flushers sleep in real time, so the TCP server
    /// requires [`crate::Clock::real`].
    pub fn spawn(gateway: Arc<Gateway>, bind: impl ToSocketAddrs) -> Result<Self, OrcoError> {
        assert!(
            gateway.clock().is_real(),
            "TcpServer requires Clock::real(); Clock::manual() is for the loopback transport"
        );
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let flushers = (0..gateway.config().shards)
            .map(|i| {
                let g = Arc::clone(&gateway);
                std::thread::Builder::new()
                    .name(format!("orco-serve-flush-{i}"))
                    .spawn(move || g.run_deadline_flusher(i))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let acceptor = {
            let g = Arc::clone(&gateway);
            std::thread::Builder::new()
                .name("orco-serve-accept".into())
                .spawn(move || accept_loop(&listener, &g, addr))?
        };
        Ok(Self { addr, acceptor: Some(acceptor), flushers })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the gateway shuts down (a client sent `Shutdown`),
    /// then joins the acceptor and flusher threads.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for f in self.flushers.drain(..) {
            let _ = f.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, gateway: &Arc<Gateway>, addr: SocketAddr) {
    for conn in listener.incoming() {
        if gateway.is_shutting_down() {
            break;
        }
        let Ok(stream) = conn else {
            // Transient (EINTR) or resource (EMFILE) failure: back off
            // briefly instead of hot-spinning the acceptor at 100% CPU
            // while connection threads hold the fds we are waiting for.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        let g = Arc::clone(gateway);
        let _ = std::thread::Builder::new().name("orco-serve-conn".into()).spawn(move || {
            if let Err(e) = serve_connection(stream, &g, addr) {
                eprintln!("orco-serve: connection ended with error: {e}");
            }
        });
    }
}

/// Reads frames off one connection until EOF or `Shutdown`, replying to
/// each through the same [`Gateway::handle_bytes`] path the loopback
/// transport uses — a malformed frame draws an `ErrorReply` before the
/// connection closes, exactly as in-process callers see it. `?` spans
/// socket reads, codec calls, and frame writes — one error chain, no
/// ad-hoc mapping.
fn serve_connection(
    mut stream: TcpStream,
    gateway: &Arc<Gateway>,
    addr: SocketAddr,
) -> Result<(), OrcoError> {
    stream.set_nodelay(true)?;
    let mut frame = Vec::new();
    let mut reply = Vec::new();
    loop {
        match read_frame(&mut stream, &mut frame)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::Malformed(e) => {
                // Framing is lost: answer with the typed rejection, then
                // close — the wire never goes silent.
                Message::ErrorReply { code: ErrorCode::BadRequest, detail: e.to_string() }
                    .encode_into(&mut reply);
                stream.write_all(&reply)?;
                return Ok(());
            }
            FrameRead::Frame => {
                gateway.handle_bytes(&frame, &mut reply);
                stream.write_all(&reply)?;
                // Type bytes 6..8: was this frame a Shutdown request?
                if frame[6..8] == 10u16.to_le_bytes() {
                    // Poke the acceptor out of `accept` so it observes
                    // the shutdown flag.
                    drop(TcpStream::connect(poke_addr(addr)));
                    return Ok(());
                }
            }
        }
    }
}

/// Where the shutdown poke dials: a listener bound to an unspecified
/// address (`0.0.0.0` / `::`) is not connectable on every platform, so
/// the poke goes to loopback on the same port instead.
fn poke_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let ip = if addr.is_ipv4() {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        } else {
            IpAddr::V6(Ipv6Addr::LOCALHOST)
        };
        SocketAddr::new(ip, addr.port())
    } else {
        addr
    }
}
