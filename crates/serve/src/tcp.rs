//! The TCP face of an ORCO [`Service`]: acceptor, per-connection
//! reader/writer threads, and the service's background workers — all on
//! `std::net` / `std::thread` (the build image has no async runtime, and
//! none is needed: the protocol is request/reply plus server-push, and
//! the work is CPU-bound).
//!
//! Thread model:
//!
//! * one **acceptor** blocks in `accept`; every connection gets its own
//!   handler thread reading frames until EOF or `Shutdown`;
//! * every connection also gets a **writer** thread draining the
//!   connection's [`Outbox`] to the socket — replies and streamed
//!   frames share the outbox, so writes are serialized without a lock
//!   around the socket;
//! * the service's **background workers** (one deadline flusher per
//!   gateway shard; the directory's heartbeat sweeper) run on their own
//!   threads via [`Service::run_worker`];
//! * `Shutdown` sets the service flag, then the handling connection pokes
//!   the acceptor awake with a throwaway connect so `accept` returns and
//!   the loop observes the flag (the standard `std::net` unblock idiom).

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orcodcs::OrcoError;

use crate::gateway::Gateway;
use crate::outbox::Outbox;
use crate::protocol::{read_frame, ErrorCode, FrameRead, Message};
use crate::service::Service;

/// A running TCP server around an `Arc` of any [`Service`].
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and spawns the
    /// acceptor and the gateway's deadline flushers. Equivalent to
    /// [`TcpServer::spawn_service`] with a [`Gateway`].
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when binding or spawning fails.
    ///
    /// # Panics
    ///
    /// Panics if the gateway was built with a [`crate::Clock::manual`]
    /// clock — deadline flushers sleep in real time, so the TCP server
    /// requires [`crate::Clock::real`].
    pub fn spawn(gateway: Arc<Gateway>, bind: impl ToSocketAddrs) -> Result<Self, OrcoError> {
        Self::spawn_service(gateway, bind)
    }

    /// Binds `bind` and serves `svc` over TCP: one acceptor, one
    /// reader + writer thread pair per connection, and
    /// [`Service::worker_count`] background worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`OrcoError::Io`] when binding or spawning fails.
    ///
    /// # Panics
    ///
    /// Panics if the service runs a [`crate::Clock::manual`] clock —
    /// background workers sleep in real time, so the TCP server requires
    /// [`crate::Clock::real`].
    pub fn spawn_service<S: Service + ?Sized + 'static>(
        svc: Arc<S>,
        bind: impl ToSocketAddrs,
    ) -> Result<Self, OrcoError> {
        assert!(
            svc.clock().is_real(),
            "TcpServer requires Clock::real(); Clock::manual() is for the loopback transport"
        );
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let workers = (0..svc.worker_count())
            .map(|i| {
                let s = Arc::clone(&svc);
                std::thread::Builder::new()
                    .name(format!("orco-serve-worker-{i}"))
                    .spawn(move || s.run_worker(i))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let acceptor = {
            let s = Arc::clone(&svc);
            std::thread::Builder::new()
                .name("orco-serve-accept".into())
                .spawn(move || accept_loop(&listener, &s, addr))?
        };
        Ok(Self { addr, acceptor: Some(acceptor), workers })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the service shuts down (a client sent `Shutdown`),
    /// then joins the acceptor and worker threads.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop<S: Service + ?Sized + 'static>(
    listener: &TcpListener,
    svc: &Arc<S>,
    addr: SocketAddr,
) {
    for conn in listener.incoming() {
        if svc.is_shutting_down() {
            break;
        }
        let Ok(stream) = conn else {
            // Transient (EINTR) or resource (EMFILE) failure: back off
            // briefly instead of hot-spinning the acceptor at 100% CPU
            // while connection threads hold the fds we are waiting for.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        let s = Arc::clone(svc);
        let _ = std::thread::Builder::new().name("orco-serve-conn".into()).spawn(move || {
            if let Err(e) = serve_connection(stream, &s, addr) {
                eprintln!("orco-serve: connection ended with error: {e}");
            }
        });
    }
}

/// Drains a connection's outbox to its socket until the outbox closes
/// and is empty. All frames bound for the peer — replies and streamed
/// deliveries alike — pass through here, so socket writes are serialized
/// by construction.
fn writer_loop(mut stream: TcpStream, outbox: &Outbox) {
    loop {
        match outbox.wait_next(Duration::from_millis(100)) {
            Some(frame) => {
                if stream.write_all(&frame).is_err() {
                    // Peer is gone; stop draining. The reader side will
                    // observe EOF and close the outbox.
                    return;
                }
            }
            None => {
                if outbox.is_closed() {
                    return;
                }
            }
        }
    }
}

/// Reads frames off one connection until EOF or `Shutdown`, replying to
/// each through the same [`Service::handle_frame`] path the loopback
/// transport uses — a malformed frame draws an `ErrorReply` before the
/// connection closes, exactly as in-process callers see it. Replies are
/// routed through the connection's outbox so they interleave safely with
/// streamed frames.
fn serve_connection<S: Service + ?Sized>(
    mut stream: TcpStream,
    svc: &Arc<S>,
    addr: SocketAddr,
) -> Result<(), OrcoError> {
    stream.set_nodelay(true)?;
    let outbox = Arc::new(Outbox::new());
    let writer = {
        let stream = stream.try_clone()?;
        let outbox = Arc::clone(&outbox);
        std::thread::Builder::new()
            .name("orco-serve-write".into())
            .spawn(move || writer_loop(stream, &outbox))?
    };
    let result = read_loop(&mut stream, svc, &outbox, addr);
    outbox.close();
    let _ = writer.join();
    result
}

fn read_loop<S: Service + ?Sized>(
    stream: &mut TcpStream,
    svc: &Arc<S>,
    outbox: &Arc<Outbox>,
    addr: SocketAddr,
) -> Result<(), OrcoError> {
    let mut frame = Vec::new();
    let mut reply = Vec::new();
    loop {
        match read_frame(stream, &mut frame)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::Malformed(e) => {
                // Framing is lost: answer with the typed rejection, then
                // close — the wire never goes silent.
                Message::ErrorReply { code: ErrorCode::BadRequest, detail: e.to_string() }
                    .encode_into(&mut reply);
                outbox.push_frame(reply.clone());
                return Ok(());
            }
            FrameRead::Frame => {
                svc.handle_frame(&frame, &mut reply, Some(outbox));
                outbox.push_frame(reply.clone());
                // Type bytes 6..8: was this frame a Shutdown request?
                if frame[6..8] == 10u16.to_le_bytes() {
                    // Poke the acceptor out of `accept` so it observes
                    // the shutdown flag.
                    drop(TcpStream::connect(poke_addr(addr)));
                    return Ok(());
                }
            }
        }
    }
}

/// Where the shutdown poke dials: a listener bound to an unspecified
/// address (`0.0.0.0` / `::`) is not connectable on every platform, so
/// the poke goes to loopback on the same port instead.
fn poke_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let ip = if addr.is_ipv4() {
            IpAddr::V4(Ipv4Addr::LOCALHOST)
        } else {
            IpAddr::V6(Ipv6Addr::LOCALHOST)
        };
        SocketAddr::new(ip, addr.port())
    } else {
        addr
    }
}
