//! The epoch'd cluster→gateway assignment every fleet participant
//! computes locally.
//!
//! The directory never ships an explicit cluster table — membership is
//! enough. Given the same `(epoch, members)` pair, every gateway and
//! every client derives the same owner for any cluster via rendezvous
//! (highest-random-weight) hashing: score each member against the
//! cluster with FNV-1a and pick the argmax. Rendezvous hashing makes
//! rebalancing minimal by construction — when a gateway dies, only the
//! clusters it owned move; everyone else's assignments are untouched.

use crate::protocol::GatewayEntry;
use orco_tensor::fnv1a64;

/// Rendezvous score of one `(gateway, cluster)` pair.
fn score(gateway_id: u64, cluster_id: u64) -> u64 {
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&gateway_id.to_le_bytes());
    key[8..].copy_from_slice(&cluster_id.to_le_bytes());
    fnv1a64(&key)
}

/// Returns the member owning `cluster_id` under rendezvous hashing, or
/// `None` when the membership list is empty. Ties (astronomically rare)
/// break toward the higher gateway id so the choice stays total.
#[must_use]
pub fn owner_of(members: &[GatewayEntry], cluster_id: u64) -> Option<&GatewayEntry> {
    members.iter().max_by_key(|m| (score(m.id, cluster_id), m.id))
}

/// One participant's cached view of the fleet: the assignment epoch,
/// the membership it covers, and (for gateways) the holder's own id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetView {
    /// This participant's gateway id, or `None` for clients.
    pub self_id: Option<u64>,
    /// Assignment epoch the membership list belongs to.
    pub epoch: u64,
    /// Live gateways, ascending by id.
    pub members: Vec<GatewayEntry>,
}

impl FleetView {
    /// Builds a view, normalizing member order so equal memberships
    /// compare equal regardless of arrival order.
    #[must_use]
    pub fn new(self_id: Option<u64>, epoch: u64, mut members: Vec<GatewayEntry>) -> Self {
        members.sort_by_key(|m| m.id);
        Self { self_id, epoch, members }
    }

    /// The member owning `cluster_id`, or `None` if the fleet is empty.
    #[must_use]
    pub fn owner_of(&self, cluster_id: u64) -> Option<&GatewayEntry> {
        owner_of(&self.members, cluster_id)
    }

    /// True when this participant is the owner of `cluster_id`.
    #[must_use]
    pub fn owns(&self, cluster_id: u64) -> bool {
        match (self.self_id, self.owner_of(cluster_id)) {
            (Some(me), Some(owner)) => owner.id == me,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(ids: &[u64]) -> Vec<GatewayEntry> {
        ids.iter().map(|&id| GatewayEntry { id, addr: format!("gw:{id}") }).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let m = members(&[1, 2, 3]);
        for cluster in 0..256 {
            let a = owner_of(&m, cluster).unwrap().id;
            let b = owner_of(&m, cluster).unwrap().id;
            assert_eq!(a, b);
        }
        assert!(owner_of(&[], 7).is_none());
    }

    #[test]
    fn assignment_ignores_member_order() {
        let fwd = members(&[1, 2, 3]);
        let rev = members(&[3, 2, 1]);
        for cluster in 0..256 {
            assert_eq!(owner_of(&fwd, cluster).unwrap().id, owner_of(&rev, cluster).unwrap().id);
        }
    }

    #[test]
    fn removal_only_moves_the_dead_gateways_clusters() {
        let full = members(&[1, 2, 3]);
        let reduced = members(&[1, 3]);
        for cluster in 0..1024 {
            let before = owner_of(&full, cluster).unwrap().id;
            let after = owner_of(&reduced, cluster).unwrap().id;
            if before != 2 {
                assert_eq!(before, after, "cluster {cluster} moved although its owner lived");
            }
        }
    }

    #[test]
    fn load_spreads_over_the_fleet() {
        let m = members(&[1, 2, 3]);
        let mut counts = [0usize; 3];
        for cluster in 0..3000 {
            counts[(owner_of(&m, cluster).unwrap().id - 1) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 600, "skewed assignment: {counts:?}");
        }
    }

    #[test]
    fn view_owns_checks_self_id() {
        let v = FleetView::new(Some(1), 4, members(&[1]));
        assert!(v.owns(99));
        let c = FleetView::new(None, 4, members(&[1]));
        assert!(!c.owns(99));
    }
}
