//! The chaos gauntlet: scripted adversarial runs of the serving layer
//! over the [`DesNet`] impaired-link transport, with a
//! record→replay layer that reproduces any failing run bit-identically
//! from its log.
//!
//! Each scenario in [`GAUNTLET`] drives a population of client actors —
//! greet, stream pushes, honor `Busy` with backed-off drains, pull every
//! reconstruction back — against a live gateway while the network
//! misbehaves on script. A scenario passes only if the serving layer's
//! liveness and exactly-once contracts hold under fire:
//!
//! * every `PushAck`'d frame is eventually pulled back **exactly once**
//!   (no loss to deadline starvation, no duplication from ARQ
//!   retransmits);
//! * the decoded bytes are **bit-identical** to a direct
//!   `encode_batch`/`decode_batch` on the same codec — impairments must
//!   not perturb the data plane;
//! * the run terminates (no event-queue deadlock, no unbounded retry
//!   storm) and the gateway ends drained: zero queue depth, zero stored
//!   codes;
//! * flush latency stays bounded: p99 within the batch deadline plus the
//!   ARQ's RTO ceiling.
//!
//! The five scenarios and what each one hunts:
//!
//! | scenario | impairment | classic bug it flushes out |
//! |---|---|---|
//! | `flash_crowd` | tiny queue capacity, every client pushes at once | retry storms; lockstep `Busy` retries that never drain |
//! | `rolling_partition` | each client's links cut in staggered windows | requests stranded by a partition the ARQ should outlast |
//! | `lossy_links` | 15% loss + jitter on every link | duplicate execution of retransmitted pushes; reorder bugs |
//! | `straggler_shard` | slow windows on every client of one shard | deadline starvation on idle shards; head-of-line blocking |
//! | `mass_reconnect` | long partition + small attempt cap | frames lost (or doubled) across connection death |
//!
//! ## Record → replay
//!
//! Every run logs its seed and the full per-send impairment schedule
//! ([`RunLog`]); [`replay_scenario`] re-runs the scenario consuming the
//! recorded verdicts instead of drawing randomness, reproducing the run —
//! stats frame, decoded-byte digest and all — bit for bit. A failing run
//! in CI uploads its log; `chaos --replay <file>` resurrects it locally.

use std::sync::Arc;
use std::time::Duration;

use orco_sim::{NetScenario, SendRecord, SendVerdict};
use orco_tensor::{fnv1a64, Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, GradCompression, OrcoConfig};

use crate::backoff::Backoff;
use crate::clock::Clock;
use crate::des_transport::{DesConfig, DesNet, NetEvent};
use crate::gateway::{Gateway, GatewayConfig};
use crate::protocol::Message;

/// The scenario names [`run_scenario`] accepts, gauntlet order.
pub const GAUNTLET: [&str; 5] =
    ["flash_crowd", "rolling_partition", "lossy_links", "straggler_shard", "mass_reconnect"];

/// What a completed scenario run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name (one of [`GAUNTLET`]).
    pub name: String,
    /// Seed the impairment randomness was drawn from.
    pub seed: u64,
    /// Client actors driven.
    pub clients: usize,
    /// Frames each client pushed (and pulled back).
    pub frames_per_client: usize,
    /// Rows the gateway `PushAck`'d across all clients.
    pub acked_rows: usize,
    /// Decoded rows delivered back across all clients (must equal
    /// `acked_rows`: exactly once).
    pub delivered_rows: usize,
    /// `Busy` replies honored with a backed-off drain-and-retry.
    pub busy_retries: usize,
    /// Requests whose ARQ exhausted its attempts.
    pub gave_ups: usize,
    /// Connections re-opened (sessions resumed) after a give-up.
    pub reconnects: usize,
    /// The gateway's final `StatsReply`, as encoded wire bytes — the
    /// determinism contract is on the wire image.
    pub stats_frame: Vec<u8>,
    /// FNV-1a over every delivered row's little-endian bytes, client
    /// order — one u64 that pins the entire decoded output.
    pub decoded_fnv: u64,
    /// The gateway's trace-ring text export at the end of the run —
    /// byte-identical between a live run and its replay, and already
    /// chain-verified (every delivered frame has exactly one complete
    /// push → enqueue → flush → store → delivery chain).
    pub trace_export: String,
    /// The impairment schedule the run drew (replay tape).
    pub trace: Vec<SendRecord>,
}

/// A scenario run that violated a liveness or exactly-once contract. The
/// embedded [`RunLog`] replays it deterministically.
#[derive(Debug, Clone)]
pub struct ScenarioError {
    /// What went wrong.
    pub detail: String,
    /// Seed + impairment schedule: everything needed to reproduce.
    pub log: RunLog,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario {} (seed {}): {}", self.log.name, self.log.seed, self.detail)
    }
}

impl std::error::Error for ScenarioError {}

/// The replayable record of one scenario run: its identity plus the full
/// per-send impairment schedule. Serializes to a line-oriented text
/// format (f64 delays as IEEE-754 bit patterns, so the round trip is
/// exact).
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// Scenario name.
    pub name: String,
    /// Seed of the run.
    pub seed: u64,
    /// Whether the run used quick sizing.
    pub quick: bool,
    /// The impairment verdict of every send, in send order.
    pub trace: Vec<SendRecord>,
}

impl RunLog {
    /// Serializes the log; [`RunLog::from_text`] inverts exactly.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("orco-chaos-run v1\n");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("quick {}\n", self.quick));
        out.push_str(&format!("sends {}\n", self.trace.len()));
        for rec in &self.trace {
            match rec.verdict {
                SendVerdict::Delivered { delay_s } => {
                    out.push_str(&format!("{} delivered {:016x}\n", rec.link, delay_s.to_bits()));
                }
                SendVerdict::Lost => out.push_str(&format!("{} lost\n", rec.link)),
                SendVerdict::Partitioned => out.push_str(&format!("{} partitioned\n", rec.link)),
            }
        }
        out
    }

    /// Parses a log serialized by [`RunLog::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<RunLog, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty log")?;
        if header != "orco-chaos-run v1" {
            return Err(format!("unknown log header {header:?}"));
        }
        let mut field = |key: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing field {key}"))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| format!("expected `{key} ...`, got {line:?}"))
        };
        let name = field("name")?;
        let seed = field("seed")?.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?;
        let quick = field("quick")?.parse::<bool>().map_err(|e| format!("bad quick: {e}"))?;
        let sends = field("sends")?.parse::<usize>().map_err(|e| format!("bad sends: {e}"))?;
        let mut trace = Vec::with_capacity(sends);
        for line in lines {
            let mut parts = line.split(' ');
            let link = parts
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| format!("bad trace line {line:?}"))?;
            let verdict = match (parts.next(), parts.next()) {
                (Some("delivered"), Some(bits)) => {
                    let bits = u64::from_str_radix(bits, 16)
                        .map_err(|e| format!("bad delay bits in {line:?}: {e}"))?;
                    SendVerdict::Delivered { delay_s: f64::from_bits(bits) }
                }
                (Some("lost"), None) => SendVerdict::Lost,
                (Some("partitioned"), None) => SendVerdict::Partitioned,
                _ => return Err(format!("bad trace line {line:?}")),
            };
            trace.push(SendRecord { link, verdict });
        }
        if trace.len() != sends {
            return Err(format!("log promises {sends} sends, carries {}", trace.len()));
        }
        Ok(RunLog { name, seed, quick, trace })
    }
}

/// Runs one gauntlet scenario live, drawing impairments from `seed`.
/// `quick` shrinks the population for CI; the impairment windows are the
/// same either way.
///
/// # Errors
///
/// Returns a [`ScenarioError`] (with its replay log) when a liveness or
/// exactly-once contract is violated, and on an unknown scenario name.
pub fn run_scenario(name: &str, seed: u64, quick: bool) -> Result<ScenarioOutcome, ScenarioError> {
    drive(name, seed, quick, None)
}

/// Re-runs a recorded scenario, consuming the logged impairment schedule
/// instead of drawing randomness. A correct replay reproduces the
/// original outcome bit for bit (`stats_frame`, `decoded_fnv`, trace).
///
/// # Errors
///
/// As [`run_scenario`]; additionally, a replay whose send sequence
/// diverges from the tape panics with a `replay divergence` diagnostic.
pub fn replay_scenario(log: &RunLog) -> Result<ScenarioOutcome, ScenarioError> {
    drive(&log.name, log.seed, log.quick, Some(log.trace.clone()))
}

/// Per-scenario knobs; everything else is shared.
struct Spec {
    clients: usize,
    frames_per_client: usize,
    queue_capacity: usize,
    des: DesConfig,
    /// Builds the impairment script once links exist. Receives the net
    /// (for link ids) and the actors' conns + clusters.
    script: fn(&DesNet, &[(usize, u64)]) -> NetScenario,
}

fn spec_for(name: &str, quick: bool) -> Option<Spec> {
    let scale = if quick { 1 } else { 4 };
    let base = DesConfig {
        rto: Duration::from_millis(10),
        rto_cap: Duration::from_millis(160),
        max_attempts: 8,
        ..DesConfig::default()
    };
    let spec = match name {
        // Every client pushes into a deliberately tiny budget: Busy
        // storms that must drain via backed-off pulls, not spin.
        "flash_crowd" => Spec {
            clients: 6,
            frames_per_client: 18 * scale,
            queue_capacity: 16,
            des: DesConfig {
                link: orco_sim::LinkParams { delay_s: 0.0005, jitter_s: 0.0, loss_prob: 0.0 },
                ..base
            },
            script: |_, _| NetScenario::new(),
        },
        // Staggered cuts: client i loses both directions for 200 ms,
        // windows marching across the population. The ARQ must outlast
        // each window (8 attempts of doubled-and-capped RTOs ~ 900 ms of
        // patience).
        "rolling_partition" => Spec {
            clients: 4,
            frames_per_client: 12 * scale,
            queue_capacity: 4096,
            des: DesConfig {
                link: orco_sim::LinkParams { delay_s: 0.005, jitter_s: 0.0, loss_prob: 0.0 },
                rto: Duration::from_millis(20),
                ..base
            },
            script: |net, actors| {
                let mut s = NetScenario::new();
                for (i, &(conn, _)) in actors.iter().enumerate() {
                    let w = 0.01 + 0.02 * i as f64..0.21 + 0.02 * i as f64;
                    s = s.partition(net.uplink(conn), w.clone()).partition(net.downlink(conn), w);
                }
                s
            },
        },
        // Steady 15% loss with jitter wide enough to reorder: the dedup
        // layer must absorb retransmit duplicates and stragglers.
        "lossy_links" => Spec {
            clients: 4,
            frames_per_client: 12 * scale,
            queue_capacity: 4096,
            des: DesConfig {
                link: orco_sim::LinkParams { delay_s: 0.002, jitter_s: 0.004, loss_prob: 0.15 },
                ..base
            },
            script: |_, _| NetScenario::new(),
        },
        // Every client of shard 0 goes slow for 400 ms: the other shard's
        // traffic must still sweep shard 0's deadline flushes (the
        // starvation bugfix), and nothing head-of-line blocks.
        "straggler_shard" => Spec {
            clients: 4,
            frames_per_client: 12 * scale,
            queue_capacity: 4096,
            des: DesConfig {
                link: orco_sim::LinkParams { delay_s: 0.001, jitter_s: 0.0, loss_prob: 0.0 },
                ..base
            },
            script: |net, actors| {
                // Straggle the shard that serves the first client, so at
                // least one shard always plays the role.
                let straggler = net.gateway().shard_of(actors[0].1);
                let mut s = NetScenario::new();
                for &(conn, cluster) in actors {
                    if net.gateway().shard_of(cluster) == straggler {
                        s = s.slow(net.uplink(conn), 0.005..0.35, 0.060, 0.0).slow(
                            net.downlink(conn),
                            0.005..0.35,
                            0.060,
                            0.0,
                        );
                    }
                }
                s
            },
        },
        // A partition longer than a 3-attempt ARQ can outlast: every
        // in-flight request gives up, every client reconnects, and the
        // resumed sessions must still deliver exactly once.
        "mass_reconnect" => Spec {
            clients: 4,
            frames_per_client: 10 * scale,
            queue_capacity: 4096,
            des: DesConfig {
                link: orco_sim::LinkParams { delay_s: 0.002, jitter_s: 0.0, loss_prob: 0.0 },
                max_attempts: 3,
                ..base
            },
            script: |net, actors| {
                let mut s = NetScenario::new();
                for &(conn, _) in actors {
                    s = s
                        .partition(net.uplink(conn), 0.01..0.5)
                        .partition(net.downlink(conn), 0.01..0.5);
                }
                s
            },
        },
        _ => return None,
    };
    Some(spec)
}

/// A small, fast codec geometry — the gauntlet stresses the serving
/// layer, not the autoencoder.
fn codec_config(seed: u64) -> OrcoConfig {
    OrcoConfig {
        input_dim: 32,
        latent_dim: 8,
        decoder_layers: 1,
        noise_variance: 0.1,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-2,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: GradCompression::default(),
        seed,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for `HelloAck`.
    Greet,
    /// Pushing frames (drain-and-retry on `Busy`).
    Stream,
    /// Pulling until every acked row is back.
    Drain,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Hello,
    Push {
        lo: usize,
        hi: usize,
    },
    /// `retry_push` resumes a `Busy` push after the drain completes.
    Pull {
        retry_push: bool,
    },
}

struct Actor {
    conn: usize,
    cluster: u64,
    frames: Matrix,
    /// Next frame row to offer.
    offset: usize,
    acked: usize,
    pulled: Vec<f32>,
    pulled_rows: usize,
    phase: Phase,
    /// The in-flight request (stop-and-wait: at most one).
    pending: Option<(u64, Pending)>,
    /// A push deferred behind a backoff wakeup.
    deferred_push: Option<(usize, usize)>,
    backoff: Backoff,
    busy_retries: usize,
    gave_ups: usize,
    reconnects: usize,
}

const ROWS_PER_PUSH: usize = 3;
const PULL_CHUNK: u32 = 8;

fn drive(
    name: &str,
    seed: u64,
    quick: bool,
    replay: Option<Vec<SendRecord>>,
) -> Result<ScenarioOutcome, ScenarioError> {
    let fail = |detail: String, trace: Vec<SendRecord>| ScenarioError {
        detail,
        log: RunLog { name: name.to_string(), seed, quick, trace },
    };
    let Some(spec) = spec_for(name, quick) else {
        return Err(fail(format!("unknown scenario (gauntlet: {GAUNTLET:?})"), Vec::new()));
    };

    let cfg = codec_config(11);
    let gateway = Arc::new(
        Gateway::new(
            GatewayConfig {
                shards: 2,
                batch_max_frames: 8,
                batch_deadline: Duration::from_millis(5),
                queue_capacity: spec.queue_capacity,
                auth_secret: None,
                // Large enough that no gauntlet run evicts a span: the
                // contracts below demand the ring saw everything.
                trace_capacity: 1 << 16,
                ..GatewayConfig::default()
            },
            Clock::manual(Duration::ZERO),
            |_| {
                Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid codec config"))
                    as Box<dyn Codec>
            },
        )
        .expect("valid gateway config"),
    );
    let net = DesNet::new(Arc::clone(&gateway), spec.des, seed);
    if let Some(trace) = replay {
        net.begin_replay(trace);
    }

    // Deterministic per-actor frame streams and backoff seeds.
    let dims = gateway.frame_dims();
    let mut actors: Vec<Actor> = (0..spec.clients)
        .map(|i| {
            let mut rng = OrcoRng::from_seed_u64(seed ^ (0xACE0 + i as u64));
            Actor {
                conn: net.connect(),
                cluster: 100 + i as u64,
                frames: Matrix::from_fn(spec.frames_per_client, dims.input, |_, _| {
                    rng.uniform(0.0, 1.0)
                }),
                offset: 0,
                acked: 0,
                pulled: Vec::new(),
                pulled_rows: 0,
                phase: Phase::Greet,
                pending: None,
                deferred_push: None,
                backoff: Backoff::new(
                    Duration::from_millis(2),
                    Duration::from_millis(64),
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64,
                ),
                busy_retries: 0,
                gave_ups: 0,
                reconnects: 0,
            }
        })
        .collect();

    // conn id -> actor index (reconnects append new conns).
    let mut actor_of_conn: Vec<usize> = (0..spec.clients).collect();

    let script =
        (spec.script)(&net, &actors.iter().map(|a| (a.conn, a.cluster)).collect::<Vec<_>>());
    net.script(&script);

    // Kick off: every actor greets (unkeyed — the gauntlet gateway runs
    // without an auth secret).
    for a in actors.iter_mut() {
        let seq = net.submit(a.conn, &Message::Hello { client_id: a.cluster, nonce: 0, mac: 0 });
        a.pending = Some((seq, Pending::Hello));
    }

    let mut events = 0u64;
    const EVENT_CAP: u64 = 5_000_000;
    while actors.iter().any(|a| a.phase != Phase::Done) {
        events += 1;
        if events > EVENT_CAP {
            return Err(fail(
                format!(
                    "no convergence after {EVENT_CAP} events: \
                     {} of {} actors still live (retry storm or livelock)",
                    actors.iter().filter(|a| a.phase != Phase::Done).count(),
                    actors.len()
                ),
                net.trace(),
            ));
        }
        match net.poll() {
            NetEvent::Reply { conn, seq } => {
                let ai = actor_of_conn[conn];
                let reply = net.take_reply(conn, seq).expect("announced reply present");
                let a = &mut actors[ai];
                let Some((want, kind)) = a.pending.take() else {
                    return Err(fail(
                        format!("actor {ai} got reply seq {seq} with nothing pending"),
                        net.trace(),
                    ));
                };
                if want != seq {
                    return Err(fail(
                        format!("actor {ai} expected reply seq {want}, got {seq}"),
                        net.trace(),
                    ));
                }
                if let Err(detail) = on_reply(&net, a, ai, kind, reply) {
                    return Err(fail(detail, net.trace()));
                }
            }
            NetEvent::GaveUp { conn, seq: _ } => {
                let ai = actor_of_conn[conn];
                let a = &mut actors[ai];
                a.gave_ups += 1;
                a.reconnects += 1;
                // Session resumption: the outstanding request rides over
                // to the fresh links automatically.
                a.conn = net.reconnect(conn);
                actor_of_conn.push(ai);
            }
            NetEvent::Wakeup { token } => {
                let a = &mut actors[token as usize];
                if let Some((lo, hi)) = a.deferred_push.take() {
                    let seq = a.submit_push(&net, lo, hi);
                    a.pending = Some((seq, Pending::Push { lo, hi }));
                } else if a.phase == Phase::Drain && a.pending.is_none() {
                    let seq = net.submit(
                        a.conn,
                        &Message::PullDecoded {
                            cluster_id: a.cluster,
                            max_frames: PULL_CHUNK,
                            trace: 0,
                        },
                    );
                    a.pending = Some((seq, Pending::Pull { retry_push: false }));
                }
            }
            NetEvent::Idle => {
                let stuck: Vec<usize> = actors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.phase != Phase::Done)
                    .map(|(i, _)| i)
                    .collect();
                return Err(fail(
                    format!(
                        "event queue drained with actors {stuck:?} unfinished — \
                         a request or timer was lost (liveness violation)"
                    ),
                    net.trace(),
                ));
            }
        }
    }

    // ---- Contracts ----------------------------------------------------
    let total = spec.clients * spec.frames_per_client;
    let acked_rows: usize = actors.iter().map(|a| a.acked).sum();
    let delivered_rows: usize = actors.iter().map(|a| a.pulled_rows).sum();
    if acked_rows != total {
        return Err(fail(
            format!("acked {acked_rows} rows, expected {total} (pushes went missing)"),
            net.trace(),
        ));
    }
    if delivered_rows != acked_rows {
        return Err(fail(
            format!(
                "delivered {delivered_rows} rows for {acked_rows} acked — \
                 {} (exactly-once violated)",
                if delivered_rows < acked_rows { "frames lost" } else { "frames duplicated" }
            ),
            net.trace(),
        ));
    }

    // Data-plane transparency: each client's pulled bytes must be
    // bit-identical to one direct encode_batch + decode_batch of its
    // stream on the same codec (the batch ≡ per-frame contract makes the
    // reference independent of how the gateway batched them).
    let mut reference = AsymmetricAutoencoder::new(&cfg).expect("valid codec config");
    for (i, a) in actors.iter().enumerate() {
        let mut codes = Matrix::zeros(0, 0);
        let mut recon = Matrix::zeros(0, 0);
        reference.encode_batch(a.frames.as_view(), &mut codes).expect("geometry fits");
        reference.decode_batch(codes.as_view(), &mut recon).expect("geometry fits");
        if a.pulled != recon.as_slice() {
            return Err(fail(
                format!("actor {i}: decoded bytes diverge from the direct codec path"),
                net.trace(),
            ));
        }
    }

    let snap = gateway.stats();
    if snap.queue_depth != 0 || snap.stored_codes != 0 {
        return Err(fail(
            format!(
                "gateway not drained: queue_depth {} stored_codes {}",
                snap.queue_depth, snap.stored_codes
            ),
            net.trace(),
        ));
    }
    let latency_bound = 0.005 + spec.des.rto_cap.as_secs_f64() + 0.1; // deadline + RTO ceiling + slack
    if snap.batch_latency_p99_s > latency_bound {
        return Err(fail(
            format!(
                "p99 flush latency {:.4}s exceeds the {latency_bound:.4}s bound \
                 (deadline flushes are starving)",
                snap.batch_latency_p99_s
            ),
            net.trace(),
        ));
    }

    // Trace-level contracts: the ring saw every span, every trace's
    // chain conserves rows, and — since the run drained fully — every
    // pushed row was delivered under its own trace.
    if gateway.tracer().dropped() != 0 {
        return Err(fail(
            format!(
                "trace ring evicted {} spans; raise trace_capacity so chains stay whole",
                gateway.tracer().dropped()
            ),
            net.trace(),
        ));
    }
    let spans = gateway.tracer().spans();
    let chains = match orco_obs::verify_chains(&spans) {
        Ok(chains) => chains,
        Err(detail) => return Err(fail(format!("trace chain broken: {detail}"), net.trace())),
    };
    if chains.pushed_rows != total as u64 || chains.delivered_rows != total as u64 {
        return Err(fail(
            format!(
                "trace chains account for {} pushed / {} delivered rows, expected {total} of each",
                chains.pushed_rows, chains.delivered_rows
            ),
            net.trace(),
        ));
    }

    let mut digest_bytes = Vec::with_capacity(delivered_rows * dims.input * 4);
    for a in &actors {
        for v in &a.pulled {
            digest_bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(ScenarioOutcome {
        name: name.to_string(),
        seed,
        clients: spec.clients,
        frames_per_client: spec.frames_per_client,
        acked_rows,
        delivered_rows,
        busy_retries: actors.iter().map(|a| a.busy_retries).sum(),
        gave_ups: actors.iter().map(|a| a.gave_ups).sum(),
        reconnects: actors.iter().map(|a| a.reconnects).sum(),
        stats_frame: {
            let mut frame = Vec::new();
            Message::StatsReply(snap).encode_into(&mut frame);
            frame
        },
        decoded_fnv: fnv1a64(&digest_bytes),
        trace_export: gateway.trace_export(),
        trace: net.trace(),
    })
}

impl Actor {
    fn submit_push(&self, net: &DesNet, lo: usize, hi: usize) -> u64 {
        net.submit(
            self.conn,
            &Message::PushFrames {
                cluster_id: self.cluster,
                // One trace id per push window, stable across Busy
                // retries (a refused push emits no spans, so the retry
                // cannot double-count the trace). Clusters are small, so
                // the id stays unique and nonzero across actors.
                trace: (self.cluster << 20) | (lo as u64 + 1),
                frames: self.frames.view_rows(lo..hi).to_matrix(),
            },
        )
    }

    fn next_push_window(&self) -> (usize, usize) {
        (self.offset, (self.offset + ROWS_PER_PUSH).min(self.frames.rows()))
    }
}

/// Advances one actor's state machine on a reply. Returns a contract
/// violation as `Err(detail)`.
fn on_reply(
    net: &DesNet,
    a: &mut Actor,
    ai: usize,
    kind: Pending,
    reply: Message,
) -> Result<(), String> {
    match (kind, reply) {
        (Pending::Hello, Message::HelloAck { .. }) => {
            a.phase = Phase::Stream;
            let (lo, hi) = a.next_push_window();
            let seq = a.submit_push(net, lo, hi);
            a.pending = Some((seq, Pending::Push { lo, hi }));
            Ok(())
        }
        (Pending::Push { lo, hi }, Message::PushAck { accepted }) => {
            if accepted as usize != hi - lo {
                return Err(format!(
                    "actor {ai}: partial ack {accepted} for a {}-row push",
                    hi - lo
                ));
            }
            a.offset = hi;
            a.acked += accepted as usize;
            a.backoff.reset();
            if a.offset < a.frames.rows() {
                let (lo, hi) = a.next_push_window();
                let seq = a.submit_push(net, lo, hi);
                a.pending = Some((seq, Pending::Push { lo, hi }));
            } else {
                a.phase = Phase::Drain;
                let seq = net.submit(
                    a.conn,
                    &Message::PullDecoded {
                        cluster_id: a.cluster,
                        max_frames: PULL_CHUNK,
                        trace: 0,
                    },
                );
                a.pending = Some((seq, Pending::Pull { retry_push: false }));
            }
            Ok(())
        }
        (Pending::Push { lo, hi }, Message::Busy { .. }) => {
            // Backpressure: drain a chunk first (pulls are what free the
            // budget), then retry the same push after a backed-off wait.
            a.busy_retries += 1;
            a.deferred_push = Some((lo, hi));
            let seq = net.submit(
                a.conn,
                &Message::PullDecoded { cluster_id: a.cluster, max_frames: PULL_CHUNK, trace: 0 },
            );
            a.pending = Some((seq, Pending::Pull { retry_push: true }));
            Ok(())
        }
        (Pending::Pull { retry_push }, Message::Decoded { cluster_id, frames, .. }) => {
            if cluster_id != a.cluster {
                return Err(format!(
                    "actor {ai}: pulled cluster {} got cluster {cluster_id}",
                    a.cluster
                ));
            }
            a.pulled.extend_from_slice(frames.as_slice());
            a.pulled_rows += frames.rows();
            if a.pulled_rows > a.frames.rows() {
                return Err(format!(
                    "actor {ai}: pulled {} rows for a {}-frame stream (duplication)",
                    a.pulled_rows,
                    a.frames.rows()
                ));
            }
            if retry_push {
                // Resume the Busy push after a jittered backoff.
                net.schedule_wakeup(a.backoff.next_delay(), ai as u64);
            } else if a.phase == Phase::Drain {
                if a.pulled_rows == a.acked && a.offset == a.frames.rows() {
                    a.phase = Phase::Done;
                } else if frames.rows() > 0 {
                    a.backoff.reset();
                    let seq = net.submit(
                        a.conn,
                        &Message::PullDecoded {
                            cluster_id: a.cluster,
                            max_frames: PULL_CHUNK,
                            trace: 0,
                        },
                    );
                    a.pending = Some((seq, Pending::Pull { retry_push: false }));
                } else {
                    // Nothing stored yet (batch still pending a deadline
                    // flush): poll again after a backoff.
                    net.schedule_wakeup(a.backoff.next_delay(), ai as u64);
                }
            }
            Ok(())
        }
        (kind, Message::ErrorReply { code, detail }) => {
            Err(format!("actor {ai}: {kind:?} drew {code:?}: {detail}"))
        }
        (kind, other) => Err(format!("actor {ai}: {kind:?} drew unexpected {}", other.kind())),
    }
}
