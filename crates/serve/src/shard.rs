//! One shard of the gateway: a codec, its micro-batcher, and the encoded
//! store for the clusters hashed onto it.
//!
//! A shard is the unit of both parallelism and memory accounting. It owns:
//!
//! * **its codec** — no cross-shard sharing, so encode/decode never
//!   contends on model state;
//! * **the pending micro-batch** — raw frames accumulated across pushes
//!   (possibly from several clusters; rows are independent, so one flush
//!   serves them all) and flushed as **one** `encode_batch` call;
//! * **reusable workspaces** — the encode output and decode input
//!   matrices are `Matrix::reset` per call, so the steady-state ingest
//!   path (push → flush → encode) performs no allocation; a pull's
//!   decoded rows are *moved* into the reply (the reply must own its
//!   payload), costing one allocation per pull and zero extra copies;
//! * **the encoded store** — flat per-cluster ring of code rows awaiting
//!   a pull, drained oldest-first in push order.
//!
//! The in-flight budget (`pending rows + stored rows ≤ capacity`) is
//! enforced at enqueue time: a shard's memory is bounded no matter how
//! fast clients push or how rarely they pull.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use orco_obs::{Span, SpanKind, Tracer};
use orco_tensor::{MatView, Matrix};
use orcodcs::{Codec, FrameDims, OrcoError};

use crate::stats::{FlushReason, ServeStats};

pub(crate) struct ShardCore {
    /// This shard's index in the gateway (labels stats and trace spans).
    index: usize,
    codec: Box<dyn Codec>,
    dims: FrameDims,
    /// Pending raw frames, row-major, `dims.input` wide.
    pending_data: Vec<f32>,
    /// The cluster of each pending row (routes codes after the flush).
    pending_clusters: Vec<u64>,
    /// The trace id of each pending row (0 = untraced), parallel to
    /// `pending_clusters`.
    pending_traces: Vec<u64>,
    /// Enqueue time of the oldest pending row; meaningful only while
    /// `pending_clusters` is non-empty.
    oldest_enqueue_s: f64,
    /// Reused `encode_batch` output.
    codes_ws: Matrix,
    /// Reused `decode_batch` input / output.
    decode_in_ws: Matrix,
    decode_out_ws: Matrix,
    /// Encoded rows awaiting pull, flat per cluster (`dims.code` per row).
    stores: BTreeMap<u64, VecDeque<f32>>,
    /// The trace id of each stored row, parallel to `stores` (one entry
    /// per row, not per f32), so deliveries can close the causal chain.
    store_traces: BTreeMap<u64, VecDeque<u64>>,
    /// Total rows across `stores`.
    stored_rows: usize,
}

impl ShardCore {
    pub(crate) fn new(index: usize, codec: Box<dyn Codec>) -> Self {
        let dims = codec.frame_dims();
        Self {
            index,
            codec,
            dims,
            pending_data: Vec::new(),
            pending_clusters: Vec::new(),
            pending_traces: Vec::new(),
            oldest_enqueue_s: 0.0,
            codes_ws: Matrix::zeros(0, 0),
            decode_in_ws: Matrix::zeros(0, 0),
            decode_out_ws: Matrix::zeros(0, 0),
            stores: BTreeMap::new(),
            store_traces: BTreeMap::new(),
            stored_rows: 0,
        }
    }

    pub(crate) fn dims(&self) -> FrameDims {
        self.dims
    }

    pub(crate) fn pending_rows(&self) -> usize {
        self.pending_clusters.len()
    }

    /// Rows currently charged against the shard's capacity budget.
    pub(crate) fn in_flight(&self) -> usize {
        self.pending_rows() + self.stored_rows
    }

    pub(crate) fn oldest_enqueue_s(&self) -> f64 {
        self.oldest_enqueue_s
    }

    /// Whether the pending micro-batch holds rows for `cluster`. Scans at
    /// most `batch_max_frames` entries — cheap, and it lets a pull flush
    /// only when the puller would otherwise miss its own frames, instead
    /// of collapsing *other* clusters' half-built batches.
    pub(crate) fn has_pending_for(&self, cluster: u64) -> bool {
        self.pending_clusters.contains(&cluster)
    }

    /// Whether the pending batch has outlived the flush deadline.
    pub(crate) fn deadline_due(&self, now_s: f64, deadline_s: f64) -> bool {
        self.pending_rows() > 0 && now_s - self.oldest_enqueue_s >= deadline_s
    }

    /// Encoded rows currently stored for `cluster` (awaiting pull or
    /// streaming delivery).
    pub(crate) fn stored_rows_for(&self, cluster: u64) -> usize {
        self.stores.get(&cluster).map_or(0, |s| s.len() / self.dims.code)
    }

    /// Appends a push to the pending micro-batch, or refuses it when the
    /// in-flight budget would be exceeded (the caller replies `Busy`).
    pub(crate) fn try_enqueue(
        &mut self,
        cluster: u64,
        trace: u64,
        frames: &Matrix,
        now_s: f64,
        capacity: usize,
    ) -> bool {
        let rows = frames.rows();
        if self.in_flight() + rows > capacity {
            return false;
        }
        if self.pending_clusters.is_empty() {
            self.oldest_enqueue_s = now_s;
        }
        self.pending_data.extend_from_slice(frames.as_slice());
        self.pending_clusters.extend(std::iter::repeat_n(cluster, rows));
        self.pending_traces.extend(std::iter::repeat_n(trace, rows));
        true
    }

    /// Encodes the entire pending micro-batch in ONE `encode_batch` call
    /// and files the code rows into their clusters' stores. No-op when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates codec shape errors (impossible for frames admitted by
    /// the gateway's width check, but surfaced rather than unwrapped).
    // orco-lint: region(no-alloc)
    pub(crate) fn flush(
        &mut self,
        now_s: f64,
        reason: FlushReason,
        stats: &ServeStats,
        tracer: &Tracer,
    ) -> Result<(), OrcoError> {
        let rows = self.pending_rows();
        if rows == 0 {
            return Ok(());
        }
        let view = MatView::new(rows, self.dims.input, &self.pending_data)?;
        self.codec.encode_batch(view, &mut self.codes_ws)?;
        for (r, &cluster) in self.pending_clusters.iter().enumerate() {
            self.stores.entry(cluster).or_default().extend(self.codes_ws.row(r).iter().copied());
            // Untraced rows (trace 0) still file an entry so the parallel
            // queues stay row-aligned with the code store.
            self.store_traces.entry(cluster).or_default().push_back(self.pending_traces[r]);
        }
        self.stored_rows += rows;
        stats.record_flush(self.index, rows as u64, now_s - self.oldest_enqueue_s, reason);
        if tracer.enabled() {
            // One Flush + Store span per contiguous (trace, cluster) run.
            // Pushes append rows contiguously, so runs are push-granular.
            let mut r = 0;
            while r < rows {
                let (trace, cluster) = (self.pending_traces[r], self.pending_clusters[r]);
                let mut end = r + 1;
                while end < rows
                    && self.pending_traces[end] == trace
                    && self.pending_clusters[end] == cluster
                {
                    end += 1;
                }
                if trace != 0 {
                    let base = Span {
                        trace_id: trace,
                        kind: SpanKind::Flush,
                        cluster_id: cluster,
                        shard: self.index as u16,
                        rows: (end - r) as u32,
                        at_s: now_s,
                        detail: reason.as_str(),
                    };
                    tracer.record(base);
                    tracer.record(Span { kind: SpanKind::Store, detail: "", ..base });
                }
                r = end;
            }
        }
        self.pending_data.clear();
        self.pending_clusters.clear();
        self.pending_traces.clear();
        Ok(())
    }
    // orco-lint: endregion

    /// Decodes up to `max` of the cluster's oldest stored codes in ONE
    /// `decode_batch` call and returns the reconstructions in push order.
    /// Returns an empty matrix when the cluster has nothing stored.
    /// `streamed` selects which stats counter books the delivery
    /// (client pull vs streaming fan-out).
    ///
    /// # Errors
    ///
    /// Propagates codec shape errors.
    pub(crate) fn pull(
        &mut self,
        cluster: u64,
        max: usize,
        now_s: f64,
        stats: &ServeStats,
        tracer: &Tracer,
        streamed: bool,
    ) -> Result<Matrix, OrcoError> {
        let code = self.dims.code;
        let avail = self.stores.get(&cluster).map_or(0, |s| s.len() / code);
        let k = avail.min(max);
        if k == 0 {
            return Ok(Matrix::zeros(0, self.dims.input));
        }
        self.decode_in_ws.reset(k, code);
        {
            let mut dst = self.decode_in_ws.as_view_mut();
            let slice = dst.as_mut_slice();
            let store = self.stores.get_mut(&cluster).expect("store is non-empty");
            for (i, v) in store.drain(..k * code).enumerate() {
                slice[i] = v;
            }
            if store.is_empty() {
                self.stores.remove(&cluster);
            }
        }
        let traces: Vec<u64> = {
            let queue = self.store_traces.get_mut(&cluster).expect("trace queue is row-aligned");
            let drained = queue.drain(..k).collect();
            if queue.is_empty() {
                self.store_traces.remove(&cluster);
            }
            drained
        };
        self.stored_rows -= k;
        self.codec.decode_batch(self.decode_in_ws.as_view(), &mut self.decode_out_ws)?;
        if streamed {
            stats.record_streamed(self.index, k as u64, (k * self.dims.input * 4) as u64);
        } else {
            stats.record_pull(self.index, k as u64, (k * self.dims.input * 4) as u64);
        }
        if tracer.enabled() {
            // One delivery span per contiguous run of the same trace id,
            // mirroring the push-granular grouping on the ingest side.
            let kind = if streamed { SpanKind::Stream } else { SpanKind::Pull };
            let mut r = 0;
            while r < k {
                let trace = traces[r];
                let mut end = r + 1;
                while end < k && traces[end] == trace {
                    end += 1;
                }
                if trace != 0 {
                    tracer.record(Span {
                        trace_id: trace,
                        kind,
                        cluster_id: cluster,
                        shard: self.index as u16,
                        rows: (end - r) as u32,
                        at_s: now_s,
                        detail: "",
                    });
                }
                r = end;
            }
        }
        // Move the decoded rows into the reply instead of cloning them;
        // the reply owns the buffer and the next decode_batch regrows the
        // workspace. One allocation either way, but no second memcpy.
        Ok(std::mem::replace(&mut self.decode_out_ws, Matrix::zeros(0, 0)))
    }
}
