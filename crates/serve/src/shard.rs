//! One shard of the gateway: a codec, its micro-batcher, and the encoded
//! store for the clusters hashed onto it.
//!
//! A shard is the unit of both parallelism and memory accounting. It owns:
//!
//! * **its codec** — no cross-shard sharing, so encode/decode never
//!   contends on model state;
//! * **the pending micro-batch** — raw frames accumulated across pushes
//!   (possibly from several clusters; rows are independent, so one flush
//!   serves them all) and flushed as **one** `encode_batch` call;
//! * **reusable workspaces** — the encode output and decode input
//!   matrices are `Matrix::reset` per call, so the steady-state ingest
//!   path (push → flush → encode) performs no allocation; a pull's
//!   decoded rows are *moved* into the reply (the reply must own its
//!   payload), costing one allocation per pull and zero extra copies;
//! * **the encoded store** — flat per-cluster ring of code rows awaiting
//!   a pull, drained oldest-first in push order.
//!
//! The in-flight budget (`pending rows + stored rows ≤ capacity`) is
//! enforced at enqueue time: a shard's memory is bounded no matter how
//! fast clients push or how rarely they pull.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use orco_obs::{Span, SpanKind, Tracer};
use orco_tensor::{MatView, Matrix};
use orcodcs::{Codec, EncoderCheckpoint, FineTuneMonitor, FrameDims, OrcoError};

use crate::stats::{FlushReason, ServeStats};

/// Deterministic sampling of decoded reconstructions through a
/// [`FineTuneMonitor`]: every `every`-th flushed row is decoded back and
/// scored against its raw frame, so the gateway notices a drifting field
/// distribution from the data it is already serving. The sample schedule
/// is a pure function of the row sequence — no wall clock, no RNG — so
/// drift trips replay bit-identically under the DES harness.
pub(crate) struct DriftProbe {
    monitor: FineTuneMonitor,
    /// Sample every `every`-th flushed row (≥ 1).
    every: u64,
    /// Rows seen since the probe was created or reset.
    seen: u64,
    /// The monitor's windowed error as of the latest sample; survives
    /// the trip acknowledgement so the rollback guard reads a stable
    /// value.
    last_windowed: Option<f32>,
}

impl DriftProbe {
    pub(crate) fn new(every: u64, threshold: f32, window: usize) -> Self {
        Self {
            monitor: FineTuneMonitor::new(threshold, window),
            every: every.max(1),
            seen: 0,
            last_windowed: None,
        }
    }

    /// Forgets the previous model's error history (called at every
    /// cutover/rollback so the guard judges only the new model).
    fn reset(&mut self) {
        self.monitor.acknowledge();
        self.last_windowed = None;
    }
}

pub(crate) struct ShardCore {
    /// This shard's index in the gateway (labels stats and trace spans).
    index: usize,
    codec: Box<dyn Codec>,
    /// Id of the model version the active codec serves.
    version: u64,
    /// Retired codecs kept alive to decode rows they encoded and to
    /// serve as the rollback target. Keyed by version id; an entry is
    /// dropped once its stored rows drain, except the most recently
    /// retired one (the rollback target), which is always kept.
    retired: BTreeMap<u64, Box<dyn Codec>>,
    /// The most recently retired version id (the rollback target).
    last_retired: Option<u64>,
    /// Stored rows per producing version; drives retired-codec dropping.
    rows_by_version: BTreeMap<u64, usize>,
    /// Decoded-sample drift monitor (None = drift detection disabled).
    drift: Option<DriftProbe>,
    /// Reused 1-row workspaces for drift sampling.
    drift_in_ws: Matrix,
    drift_out_ws: Matrix,
    dims: FrameDims,
    /// Pending raw frames, row-major, `dims.input` wide.
    pending_data: Vec<f32>,
    /// The cluster of each pending row (routes codes after the flush).
    pending_clusters: Vec<u64>,
    /// The trace id of each pending row (0 = untraced), parallel to
    /// `pending_clusters`.
    pending_traces: Vec<u64>,
    /// Enqueue time of the oldest pending row; meaningful only while
    /// `pending_clusters` is non-empty.
    oldest_enqueue_s: f64,
    /// Reused `encode_batch` output.
    codes_ws: Matrix,
    /// Reused `decode_batch` input / output.
    decode_in_ws: Matrix,
    decode_out_ws: Matrix,
    /// Encoded rows awaiting pull, flat per cluster (`dims.code` per row).
    stores: BTreeMap<u64, VecDeque<f32>>,
    /// The trace id of each stored row, parallel to `stores` (one entry
    /// per row, not per f32), so deliveries can close the causal chain.
    store_traces: BTreeMap<u64, VecDeque<u64>>,
    /// The model version that encoded each stored row, parallel to
    /// `store_traces`, so a pull decodes every row with the codec that
    /// produced it even while a hot-swap is draining.
    store_versions: BTreeMap<u64, VecDeque<u64>>,
    /// Total rows across `stores`.
    stored_rows: usize,
}

impl ShardCore {
    pub(crate) fn new(index: usize, codec: Box<dyn Codec>, drift: Option<DriftProbe>) -> Self {
        let dims = codec.frame_dims();
        Self {
            index,
            codec,
            version: 0,
            retired: BTreeMap::new(),
            last_retired: None,
            rows_by_version: BTreeMap::new(),
            drift,
            drift_in_ws: Matrix::zeros(0, 0),
            drift_out_ws: Matrix::zeros(0, 0),
            dims,
            pending_data: Vec::new(),
            pending_clusters: Vec::new(),
            pending_traces: Vec::new(),
            oldest_enqueue_s: 0.0,
            codes_ws: Matrix::zeros(0, 0),
            decode_in_ws: Matrix::zeros(0, 0),
            decode_out_ws: Matrix::zeros(0, 0),
            stores: BTreeMap::new(),
            store_traces: BTreeMap::new(),
            store_versions: BTreeMap::new(),
            stored_rows: 0,
        }
    }

    /// Derives a staged codec from the active one by grafting the
    /// checkpoint's encoder onto a copy (decoder and all other state
    /// carry over bit-identically).
    pub(crate) fn stage_from_active(
        &self,
        checkpoint: &EncoderCheckpoint,
    ) -> Result<Box<dyn Codec>, OrcoError> {
        self.codec.with_encoder(checkpoint)
    }

    /// The drift monitor's current windowed error (None while the
    /// window is refilling or drift detection is disabled). The
    /// rollback guard compares this against its threshold.
    pub(crate) fn drift_windowed_error(&self) -> Option<f32> {
        self.drift.as_ref().and_then(|p| p.last_windowed)
    }

    /// Cuts the shard over to `codec` as version `id` at a flush
    /// boundary: the pending micro-batch flushes under the *old* codec
    /// first (so no flush ever mixes model versions and no frame is
    /// dropped), then the old codec is retired — kept alive to decode
    /// its stored rows and as the rollback target.
    pub(crate) fn install_codec(
        &mut self,
        id: u64,
        codec: Box<dyn Codec>,
        now_s: f64,
        stats: &ServeStats,
        tracer: &Tracer,
    ) -> Result<(), OrcoError> {
        self.flush(now_s, FlushReason::Swap, stats, tracer)?;
        let old = std::mem::replace(&mut self.codec, codec);
        let old_id = std::mem::replace(&mut self.version, id);
        self.retire(old_id, old);
        if let Some(probe) = &mut self.drift {
            probe.reset();
        }
        Ok(())
    }

    /// Reverts to retired version `id` (the rollback path). Returns
    /// false when that version is no longer retained. Like
    /// [`Self::install_codec`], the cutover happens at a flush boundary.
    pub(crate) fn rollback_to(
        &mut self,
        id: u64,
        now_s: f64,
        stats: &ServeStats,
        tracer: &Tracer,
    ) -> Result<bool, OrcoError> {
        if !self.retired.contains_key(&id) {
            return Ok(false);
        }
        self.flush(now_s, FlushReason::Swap, stats, tracer)?;
        let target = self.retired.remove(&id).expect("checked above");
        let old = std::mem::replace(&mut self.codec, target);
        let old_id = std::mem::replace(&mut self.version, id);
        self.retire(old_id, old);
        if let Some(probe) = &mut self.drift {
            probe.reset();
        }
        Ok(true)
    }

    /// Retires a codec, dropping the previously retired one if its
    /// stored rows have fully drained (the newest retiree replaces it
    /// as the rollback target).
    fn retire(&mut self, id: u64, codec: Box<dyn Codec>) {
        if let Some(prev) = self.last_retired.replace(id) {
            if prev != id && !self.rows_by_version.contains_key(&prev) {
                self.retired.remove(&prev);
            }
        }
        self.retired.insert(id, codec);
    }

    pub(crate) fn dims(&self) -> FrameDims {
        self.dims
    }

    pub(crate) fn pending_rows(&self) -> usize {
        self.pending_clusters.len()
    }

    /// Rows currently charged against the shard's capacity budget.
    pub(crate) fn in_flight(&self) -> usize {
        self.pending_rows() + self.stored_rows
    }

    pub(crate) fn oldest_enqueue_s(&self) -> f64 {
        self.oldest_enqueue_s
    }

    /// Whether the pending micro-batch holds rows for `cluster`. Scans at
    /// most `batch_max_frames` entries — cheap, and it lets a pull flush
    /// only when the puller would otherwise miss its own frames, instead
    /// of collapsing *other* clusters' half-built batches.
    pub(crate) fn has_pending_for(&self, cluster: u64) -> bool {
        self.pending_clusters.contains(&cluster)
    }

    /// Whether the pending batch has outlived the flush deadline.
    pub(crate) fn deadline_due(&self, now_s: f64, deadline_s: f64) -> bool {
        self.pending_rows() > 0 && now_s - self.oldest_enqueue_s >= deadline_s
    }

    /// Encoded rows currently stored for `cluster` (awaiting pull or
    /// streaming delivery).
    pub(crate) fn stored_rows_for(&self, cluster: u64) -> usize {
        self.stores.get(&cluster).map_or(0, |s| s.len() / self.dims.code)
    }

    /// Appends a push to the pending micro-batch, or refuses it when the
    /// in-flight budget would be exceeded (the caller replies `Busy`).
    pub(crate) fn try_enqueue(
        &mut self,
        cluster: u64,
        trace: u64,
        frames: &Matrix,
        now_s: f64,
        capacity: usize,
    ) -> bool {
        let rows = frames.rows();
        if self.in_flight() + rows > capacity {
            return false;
        }
        if self.pending_clusters.is_empty() {
            self.oldest_enqueue_s = now_s;
        }
        self.pending_data.extend_from_slice(frames.as_slice());
        self.pending_clusters.extend(std::iter::repeat_n(cluster, rows));
        self.pending_traces.extend(std::iter::repeat_n(trace, rows));
        true
    }

    /// Encodes the entire pending micro-batch in ONE `encode_batch` call
    /// and files the code rows into their clusters' stores. No-op when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates codec shape errors (impossible for frames admitted by
    /// the gateway's width check, but surfaced rather than unwrapped).
    // orco-lint: region(no-alloc)
    pub(crate) fn flush(
        &mut self,
        now_s: f64,
        reason: FlushReason,
        stats: &ServeStats,
        tracer: &Tracer,
    ) -> Result<(), OrcoError> {
        let rows = self.pending_rows();
        if rows == 0 {
            return Ok(());
        }
        let view = MatView::new(rows, self.dims.input, &self.pending_data)?;
        self.codec.encode_batch(view, &mut self.codes_ws)?;
        self.sample_drift(rows, stats)?;
        for (r, &cluster) in self.pending_clusters.iter().enumerate() {
            self.stores.entry(cluster).or_default().extend(self.codes_ws.row(r).iter().copied());
            // Untraced rows (trace 0) still file an entry so the parallel
            // queues stay row-aligned with the code store.
            self.store_traces.entry(cluster).or_default().push_back(self.pending_traces[r]);
            self.store_versions.entry(cluster).or_default().push_back(self.version);
        }
        self.stored_rows += rows;
        *self.rows_by_version.entry(self.version).or_insert(0) += rows;
        stats.record_flush(self.index, rows as u64, now_s - self.oldest_enqueue_s, reason);
        if tracer.enabled() {
            // One Flush + Store span per contiguous (trace, cluster) run.
            // Pushes append rows contiguously, so runs are push-granular.
            let mut r = 0;
            while r < rows {
                let (trace, cluster) = (self.pending_traces[r], self.pending_clusters[r]);
                let mut end = r + 1;
                while end < rows
                    && self.pending_traces[end] == trace
                    && self.pending_clusters[end] == cluster
                {
                    end += 1;
                }
                if trace != 0 {
                    let base = Span {
                        trace_id: trace,
                        kind: SpanKind::Flush,
                        cluster_id: cluster,
                        shard: self.index as u16,
                        rows: (end - r) as u32,
                        at_s: now_s,
                        detail: reason.as_str(),
                    };
                    tracer.record(base);
                    tracer.record(Span { kind: SpanKind::Store, detail: "", ..base });
                }
                r = end;
            }
        }
        self.pending_data.clear();
        self.pending_clusters.clear();
        self.pending_traces.clear();
        Ok(())
    }
    // orco-lint: endregion

    /// Feeds every `every`-th row of the just-encoded batch through a
    /// decode and scores the reconstruction against the raw frame,
    /// recording the error into the drift monitor. Runs between
    /// `encode_batch` and the pending-buffer clear, so both the raw row
    /// (`pending_data`) and its code (`codes_ws`) are still live. Trips
    /// surface as `drift_trips`/`drift` in [`ServeStats`].
    fn sample_drift(&mut self, rows: usize, stats: &ServeStats) -> Result<(), OrcoError> {
        let Some(probe) = &mut self.drift else {
            return Ok(());
        };
        for r in 0..rows {
            probe.seen += 1;
            if !probe.seen.is_multiple_of(probe.every) {
                continue;
            }
            self.drift_in_ws.reset(1, self.dims.code);
            self.drift_in_ws.as_view_mut().as_mut_slice().copy_from_slice(self.codes_ws.row(r));
            self.codec.decode_batch(self.drift_in_ws.as_view(), &mut self.drift_out_ws)?;
            let raw = &self.pending_data[r * self.dims.input..(r + 1) * self.dims.input];
            let recon = self.drift_out_ws.row(0);
            let mse = raw
                .iter()
                .zip(recon)
                .map(|(a, b)| {
                    let d = a - b;
                    d * d
                })
                .sum::<f32>()
                / self.dims.input as f32;
            probe.monitor.record(mse);
            probe.last_windowed = probe.monitor.windowed_error();
            if probe.monitor.should_retrain() {
                stats.record_drift_trip();
                probe.monitor.acknowledge();
            }
        }
        Ok(())
    }

    /// Decodes up to `max` of the cluster's oldest stored codes in ONE
    /// `decode_batch` call and returns `(producing version, rows)` in
    /// push order. A delivery never mixes model versions: it is capped
    /// at the oldest contiguous same-version run, and each row is
    /// decoded by the codec that encoded it — mid-swap, old rows drain
    /// through the retired codec while new rows queue behind them.
    /// Returns an empty matrix (tagged with the active version) when
    /// the cluster has nothing stored. `streamed` selects which stats
    /// counter books the delivery (client pull vs streaming fan-out).
    ///
    /// # Errors
    ///
    /// Propagates codec shape errors.
    pub(crate) fn pull(
        &mut self,
        cluster: u64,
        max: usize,
        now_s: f64,
        stats: &ServeStats,
        tracer: &Tracer,
        streamed: bool,
    ) -> Result<(u64, Matrix), OrcoError> {
        let code = self.dims.code;
        let (run_version, run_len) = match self.store_versions.get(&cluster) {
            Some(q) => {
                let head = *q.front().expect("version queue never left empty");
                (head, q.iter().take_while(|v| **v == head).count())
            }
            None => (self.version, 0),
        };
        let k = run_len.min(max);
        if k == 0 {
            return Ok((self.version, Matrix::zeros(0, self.dims.input)));
        }
        self.decode_in_ws.reset(k, code);
        {
            let mut dst = self.decode_in_ws.as_view_mut();
            let slice = dst.as_mut_slice();
            let store = self.stores.get_mut(&cluster).expect("store is non-empty");
            for (i, v) in store.drain(..k * code).enumerate() {
                slice[i] = v;
            }
            if store.is_empty() {
                self.stores.remove(&cluster);
            }
        }
        let traces: Vec<u64> = {
            let queue = self.store_traces.get_mut(&cluster).expect("trace queue is row-aligned");
            let drained = queue.drain(..k).collect();
            if queue.is_empty() {
                self.store_traces.remove(&cluster);
            }
            drained
        };
        {
            let queue =
                self.store_versions.get_mut(&cluster).expect("version queue is row-aligned");
            queue.drain(..k);
            if queue.is_empty() {
                self.store_versions.remove(&cluster);
            }
        }
        self.stored_rows -= k;
        let remaining = self
            .rows_by_version
            .get_mut(&run_version)
            .expect("per-version row count is flush-maintained");
        *remaining -= k;
        if *remaining == 0 {
            self.rows_by_version.remove(&run_version);
            // Drained retirees are dropped — except the rollback target.
            if run_version != self.version && self.last_retired != Some(run_version) {
                self.retired.remove(&run_version);
            }
        }
        let codec = if run_version == self.version {
            &mut self.codec
        } else {
            self.retired.get_mut(&run_version).expect("retired codec retained while rows stored")
        };
        codec.decode_batch(self.decode_in_ws.as_view(), &mut self.decode_out_ws)?;
        if streamed {
            stats.record_streamed(self.index, k as u64, (k * self.dims.input * 4) as u64);
        } else {
            stats.record_pull(self.index, k as u64, (k * self.dims.input * 4) as u64);
        }
        if tracer.enabled() {
            // One delivery span per contiguous run of the same trace id,
            // mirroring the push-granular grouping on the ingest side.
            let kind = if streamed { SpanKind::Stream } else { SpanKind::Pull };
            let mut r = 0;
            while r < k {
                let trace = traces[r];
                let mut end = r + 1;
                while end < k && traces[end] == trace {
                    end += 1;
                }
                if trace != 0 {
                    tracer.record(Span {
                        trace_id: trace,
                        kind,
                        cluster_id: cluster,
                        shard: self.index as u16,
                        rows: (end - r) as u32,
                        at_s: now_s,
                        detail: "",
                    });
                }
                r = end;
            }
        }
        // Move the decoded rows into the reply instead of cloning them;
        // the reply owns the buffer and the next decode_batch regrows the
        // workspace. One allocation either way, but no second memcpy.
        Ok((run_version, std::mem::replace(&mut self.decode_out_ws, Matrix::zeros(0, 0))))
    }
}
