//! Per-connection outbox for server-pushed frames.
//!
//! Streaming pulls need the server to hand a frame to a connection that
//! is not currently asking for one. With no async runtime, each
//! connection owns an [`Outbox`] — a condvar-guarded queue of encoded
//! frames. Producers (shard flushers, the request handler) push; the
//! connection's writer (a dedicated thread on TCP, the poll loop on
//! loopback/DES) drains. The queue carries *encoded* frames so the
//! encoding cost is paid once even when a batch fans out to many
//! subscribers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Interior state guarded by the outbox mutex.
struct State {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// A condvar-guarded queue of encoded frames bound for one connection.
pub struct Outbox {
    state: Mutex<State>,
    cv: Condvar,
}

impl Default for Outbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Outbox {
    /// Creates an empty, open outbox.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State { frames: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues one encoded frame and wakes the writer. Frames pushed
    /// after [`close`](Self::close) are dropped.
    pub fn push_frame(&self, frame: Vec<u8>) {
        let mut st = self.state.lock().expect("outbox lock");
        if st.closed {
            return;
        }
        st.frames.push_back(frame);
        drop(st);
        self.cv.notify_all();
    }

    /// Pops the next frame without blocking. `None` means "nothing
    /// queued right now" — check [`is_closed`](Self::is_closed) to
    /// distinguish empty from finished.
    pub fn try_next(&self) -> Option<Vec<u8>> {
        self.state.lock().expect("outbox lock").frames.pop_front()
    }

    /// Blocks up to `timeout` for the next frame. `None` means the
    /// outbox closed or the timeout elapsed with nothing queued.
    pub fn wait_next(&self, timeout: Duration) -> Option<Vec<u8>> {
        let mut st = self.state.lock().expect("outbox lock");
        loop {
            if let Some(frame) = st.frames.pop_front() {
                return Some(frame);
            }
            if st.closed {
                return None;
            }
            let (next, res) = self.cv.wait_timeout(st, timeout).expect("outbox lock");
            st = next;
            if res.timed_out() {
                return st.frames.pop_front();
            }
        }
    }

    /// Marks the outbox finished and wakes any blocked writer. Already
    /// queued frames stay drainable; new pushes are dropped.
    pub fn close(&self) {
        self.state.lock().expect("outbox lock").closed = true;
        self.cv.notify_all();
    }

    /// True once [`close`](Self::close) has run.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("outbox lock").closed
    }

    /// Frames currently queued (diagnostics only; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().expect("outbox lock").frames.len()
    }

    /// True when nothing is queued (diagnostics only; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn frames_drain_in_order() {
        let o = Outbox::new();
        o.push_frame(vec![1]);
        o.push_frame(vec![2]);
        assert_eq!(o.try_next(), Some(vec![1]));
        assert_eq!(o.try_next(), Some(vec![2]));
        assert_eq!(o.try_next(), None);
    }

    #[test]
    fn close_wakes_a_blocked_waiter_and_drops_new_pushes() {
        let o = Arc::new(Outbox::new());
        let o2 = Arc::clone(&o);
        let h = std::thread::spawn(move || o2.wait_next(Duration::from_secs(30)));
        // Give the waiter a moment to block, then close.
        std::thread::sleep(Duration::from_millis(10));
        o.close();
        assert_eq!(h.join().unwrap(), None);
        o.push_frame(vec![9]);
        assert_eq!(o.try_next(), None);
    }

    #[test]
    fn queued_frames_survive_close() {
        let o = Outbox::new();
        o.push_frame(vec![7]);
        o.close();
        assert_eq!(o.wait_next(Duration::from_millis(1)), Some(vec![7]));
        assert_eq!(o.wait_next(Duration::from_millis(1)), None);
    }
}
