//! The serving-statistics registry and its wire snapshot.
//!
//! Every shard and connection thread records into one shared
//! [`ServeStats`]: lock-free atomic counters for the hot-path tallies,
//! plus a sorted-on-insert latency ledger in the style of
//! `orco_wsn::accounting::TrafficAccounting` — p50/p99 come from the same
//! [`percentile_of_sorted`] convention as the WSN simulator's delivery
//! latencies, so percentiles mean the same thing across every report in
//! the workspace.
//!
//! A [`StatsSnapshot`] is the registry frozen at one instant; it travels
//! in [`crate::protocol::Message::StatsReply`] with the same fixed
//! little-endian encoding as every other payload. Under a
//! [`crate::Clock::manual`] clock the snapshot is a pure function of the
//! message schedule — byte-identical across runs and thread counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use orco_wsn::accounting::percentile_of_sorted;

use crate::protocol::{put_f64, put_u16, put_u64, Cursor, WireError};

/// Why a micro-batch was flushed. Each reason has its own counter in
/// [`StatsSnapshot`], so `deadline_flushes` means *deadline* flushes —
/// shutdown drains and read-your-writes pulls no longer masquerade as
/// size flushes (they did before this enum existed, inflating the
/// size-flush count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The pending batch reached `batch_max_frames`.
    Size,
    /// The pending batch outlived `batch_deadline`.
    Deadline,
    /// A `PullDecoded` flushed the puller's own pending frames
    /// (read-your-writes).
    Pull,
    /// Shutdown drained the batcher.
    Drain,
}

/// Shared, thread-safe registry of serving counters.
///
/// Counter updates are `Relaxed` atomics; a snapshot taken while pushes
/// are in flight is internally consistent per counter but not
/// transactional across counters (totals may straddle an in-progress
/// push). Under the deterministic loopback transport there is no
/// concurrency and snapshots are exact.
#[derive(Debug)]
pub struct ServeStats {
    shards: u16,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    pushes: AtomicU64,
    pulls: AtomicU64,
    busy_rejections: AtomicU64,
    batches: AtomicU64,
    size_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    pull_flushes: AtomicU64,
    drain_flushes: AtomicU64,
    max_batch_rows: AtomicU64,
    queue_depth: AtomicU64,
    stored_codes: AtomicU64,
    streamed_rows: AtomicU64,
    redirects: AtomicU64,
    latencies: Mutex<LatencyLedger>,
}

/// Cap on retained latency samples: the ledger must stay bounded on a
/// gateway that flushes forever (same pillar as the bounded queues).
const LATENCY_SAMPLE_CAP: usize = 4096;

/// Bounded flush-latency ledger. Samples are kept ascending-sorted on
/// insert (the `TrafficAccounting` convention, O(1) percentile reads);
/// when the cap is reached the sorted sample is decimated to every other
/// order statistic — which preserves the distribution's shape — and the
/// recording stride doubles, so memory and insert cost stay O(cap) no
/// matter how long the gateway runs. The policy is a pure function of the
/// flush sequence, so determinism under the loopback transport survives.
#[derive(Debug, Default)]
struct LatencyLedger {
    /// Retained per-flush latencies (oldest frame's enqueue → flush),
    /// ascending.
    samples: Vec<f64>,
    /// Record every `stride`-th flush (doubles at each decimation).
    stride: u64,
    /// Flushes observed (drives the stride phase).
    seen: u64,
}

impl LatencyLedger {
    fn record(&mut self, latency_s: f64) {
        if self.stride == 0 {
            self.stride = 1;
        }
        self.seen += 1;
        if !self.seen.is_multiple_of(self.stride) {
            return;
        }
        let idx = self.samples.partition_point(|v| *v <= latency_s);
        self.samples.insert(idx, latency_s);
        if self.samples.len() >= LATENCY_SAMPLE_CAP {
            let mut keep = false;
            self.samples.retain(|_| {
                keep = !keep;
                keep
            });
            self.stride *= 2;
        }
    }
}

impl ServeStats {
    /// Creates an empty registry for a gateway with `shards` shards.
    #[must_use]
    pub fn new(shards: u16) -> Self {
        Self {
            shards,
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            pushes: AtomicU64::new(0),
            pulls: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            size_flushes: AtomicU64::new(0),
            deadline_flushes: AtomicU64::new(0),
            pull_flushes: AtomicU64::new(0),
            drain_flushes: AtomicU64::new(0),
            max_batch_rows: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            stored_codes: AtomicU64::new(0),
            streamed_rows: AtomicU64::new(0),
            redirects: AtomicU64::new(0),
            latencies: Mutex::new(LatencyLedger::default()),
        }
    }

    /// Records an accepted push of `rows` frames carrying `bytes` of
    /// frame payload.
    pub fn record_push(&self, rows: u64, bytes: u64) {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        self.frames_in.fetch_add(rows, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        self.queue_depth.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records a push rejected with `Busy`.
    pub fn record_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one micro-batch flush of `rows` frames, `latency_s` after
    /// its oldest frame was enqueued, for the given [`FlushReason`].
    pub fn record_flush(&self, rows: u64, latency_s: f64, reason: FlushReason) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let counter = match reason {
            FlushReason::Size => &self.size_flushes,
            FlushReason::Deadline => &self.deadline_flushes,
            FlushReason::Pull => &self.pull_flushes,
            FlushReason::Drain => &self.drain_flushes,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        self.max_batch_rows.fetch_max(rows, Ordering::Relaxed);
        self.queue_depth.fetch_sub(rows, Ordering::Relaxed);
        self.stored_codes.fetch_add(rows, Ordering::Relaxed);
        self.latencies.lock().expect("stats lock").record(latency_s);
    }

    /// Records a pull that returned `rows` decoded frames carrying
    /// `bytes` of frame payload.
    pub fn record_pull(&self, rows: u64, bytes: u64) {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        self.frames_out.fetch_add(rows, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        self.stored_codes.fetch_sub(rows, Ordering::Relaxed);
    }

    /// Records `rows` decoded frames pushed to streaming subscribers
    /// (carrying `bytes` of frame payload).
    pub fn record_streamed(&self, rows: u64, bytes: u64) {
        self.streamed_rows.fetch_add(rows, Ordering::Relaxed);
        self.frames_out.fetch_add(rows, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        self.stored_codes.fetch_sub(rows, Ordering::Relaxed);
    }

    /// Records a push bounced with a `Redirect` to the current owner.
    pub fn record_redirect(&self) {
        self.redirects.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the registry into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let lats = self.latencies.lock().expect("stats lock");
        StatsSnapshot {
            shards: self.shards,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            pushes: self.pushes.load(Ordering::Relaxed),
            pulls: self.pulls.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            size_flushes: self.size_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            pull_flushes: self.pull_flushes.load(Ordering::Relaxed),
            drain_flushes: self.drain_flushes.load(Ordering::Relaxed),
            max_batch_rows: self.max_batch_rows.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            stored_codes: self.stored_codes.load(Ordering::Relaxed),
            streamed_rows: self.streamed_rows.load(Ordering::Relaxed),
            redirects: self.redirects.load(Ordering::Relaxed),
            batch_latency_p50_s: percentile_of_sorted(&lats.samples, 0.5),
            batch_latency_p99_s: percentile_of_sorted(&lats.samples, 0.99),
        }
    }
}

/// The registry frozen at one instant; the payload of
/// [`crate::protocol::Message::StatsReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Number of worker shards.
    pub shards: u16,
    /// Raw frames accepted into micro-batchers.
    pub frames_in: u64,
    /// Decoded frames returned to clients.
    pub frames_out: u64,
    /// Frame-payload bytes accepted (rows × frame width × 4).
    pub bytes_in: u64,
    /// Frame-payload bytes returned.
    pub bytes_out: u64,
    /// `PushFrames` requests accepted.
    pub pushes: u64,
    /// `PullDecoded` requests served.
    pub pulls: u64,
    /// Pushes rejected with `Busy` (backpressure events).
    pub busy_rejections: u64,
    /// Micro-batches flushed (each is ONE `encode_batch` call).
    pub batches: u64,
    /// Flushes triggered by the batch reaching `batch_max_frames`.
    pub size_flushes: u64,
    /// Flushes forced by the batch deadline.
    pub deadline_flushes: u64,
    /// Read-your-writes flushes triggered by a puller's own pending rows.
    pub pull_flushes: u64,
    /// Flushes performed while draining for shutdown.
    pub drain_flushes: u64,
    /// Rows of the largest single flush — evidence of micro-batching.
    pub max_batch_rows: u64,
    /// Rows currently pending in micro-batchers (gauge).
    pub queue_depth: u64,
    /// Encoded rows stored awaiting a pull (gauge).
    pub stored_codes: u64,
    /// Decoded rows delivered via streaming subscriptions.
    pub streamed_rows: u64,
    /// Pushes bounced with a `Redirect` to the cluster's current owner.
    pub redirects: u64,
    /// Median flush latency, seconds (0 when nothing flushed).
    pub batch_latency_p50_s: f64,
    /// 99th-percentile flush latency, seconds (0 when nothing flushed).
    pub batch_latency_p99_s: f64,
}

impl StatsSnapshot {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        put_u16(out, self.shards);
        put_u64(out, self.frames_in);
        put_u64(out, self.frames_out);
        put_u64(out, self.bytes_in);
        put_u64(out, self.bytes_out);
        put_u64(out, self.pushes);
        put_u64(out, self.pulls);
        put_u64(out, self.busy_rejections);
        put_u64(out, self.batches);
        put_u64(out, self.size_flushes);
        put_u64(out, self.deadline_flushes);
        put_u64(out, self.pull_flushes);
        put_u64(out, self.drain_flushes);
        put_u64(out, self.max_batch_rows);
        put_u64(out, self.queue_depth);
        put_u64(out, self.stored_codes);
        put_u64(out, self.streamed_rows);
        put_u64(out, self.redirects);
        put_f64(out, self.batch_latency_p50_s);
        put_f64(out, self.batch_latency_p99_s);
    }

    pub(crate) fn decode_from(cur: &mut Cursor<'_>) -> Result<Self, WireError> {
        Ok(Self {
            shards: cur.u16()?,
            frames_in: cur.u64()?,
            frames_out: cur.u64()?,
            bytes_in: cur.u64()?,
            bytes_out: cur.u64()?,
            pushes: cur.u64()?,
            pulls: cur.u64()?,
            busy_rejections: cur.u64()?,
            batches: cur.u64()?,
            size_flushes: cur.u64()?,
            deadline_flushes: cur.u64()?,
            pull_flushes: cur.u64()?,
            drain_flushes: cur.u64()?,
            max_batch_rows: cur.u64()?,
            queue_depth: cur.u64()?,
            stored_codes: cur.u64()?,
            streamed_rows: cur.u64()?,
            redirects: cur.u64()?,
            batch_latency_p50_s: cur.f64()?,
            batch_latency_p99_s: cur.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track_lifecycle() {
        let s = ServeStats::new(2);
        s.record_push(4, 4 * 784 * 4);
        s.record_push(2, 2 * 784 * 4);
        s.record_busy();
        let snap = s.snapshot();
        assert_eq!(snap.frames_in, 6);
        assert_eq!(snap.queue_depth, 6);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.batches, 0);

        s.record_flush(6, 0.010, FlushReason::Size);
        s.record_pull(6, 6 * 784 * 4);
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.stored_codes, 0);
        assert_eq!(snap.frames_out, 6);
        assert_eq!(snap.max_batch_rows, 6);
        assert_eq!(snap.batch_latency_p50_s, 0.010);
    }

    #[test]
    fn flush_reasons_count_separately() {
        let s = ServeStats::new(1);
        s.record_flush(4, 0.001, FlushReason::Size);
        s.record_flush(2, 0.006, FlushReason::Deadline);
        s.record_flush(1, 0.002, FlushReason::Pull);
        s.record_flush(3, 0.001, FlushReason::Drain);
        let snap = s.snapshot();
        assert_eq!(snap.batches, 4);
        assert_eq!(snap.size_flushes, 1);
        assert_eq!(snap.deadline_flushes, 1);
        assert_eq!(snap.pull_flushes, 1);
        assert_eq!(snap.drain_flushes, 1);
        assert_eq!(
            snap.size_flushes + snap.deadline_flushes + snap.pull_flushes + snap.drain_flushes,
            snap.batches,
            "every flush has exactly one reason"
        );
    }

    #[test]
    fn latency_ledger_stays_bounded() {
        let s = ServeStats::new(1);
        for i in 0..(LATENCY_SAMPLE_CAP as u64 * 6) {
            s.record_flush(1, (i % 1000) as f64 * 0.001, FlushReason::Size);
        }
        let lats = s.latencies.lock().unwrap();
        assert!(lats.samples.len() < LATENCY_SAMPLE_CAP, "ledger must stay under the cap");
        assert!(lats.stride > 1, "stride must grow after decimation");
        drop(lats);
        // Percentiles still reflect the (uniform 0..1s) distribution.
        let snap = s.snapshot();
        assert!((snap.batch_latency_p50_s - 0.5).abs() < 0.05, "p50 {}", snap.batch_latency_p50_s);
        assert!((snap.batch_latency_p99_s - 0.99).abs() < 0.05, "p99 {}", snap.batch_latency_p99_s);
    }

    #[test]
    fn latency_percentiles_follow_wsn_convention() {
        let s = ServeStats::new(1);
        for i in 1..=100 {
            let reason = if i % 10 == 0 { FlushReason::Deadline } else { FlushReason::Size };
            s.record_flush(1, f64::from(i) * 0.001, reason);
        }
        let snap = s.snapshot();
        assert_eq!(snap.deadline_flushes, 10);
        assert!((snap.batch_latency_p50_s - 0.050).abs() < 0.0015);
        assert!((snap.batch_latency_p99_s - 0.099).abs() < 0.0015);
    }
}
