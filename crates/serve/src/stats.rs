//! The serving-statistics registry and its wire snapshot.
//!
//! Every shard and connection thread records into one shared
//! [`ServeStats`], built on the typed primitives of [`orco_obs`]:
//! lock-free [`Counter`]s for the hot-path tallies, [`Gauge`]s that
//! clamp at zero instead of wrapping (a pull racing a flush recording
//! can momentarily read low, never ~`u64::MAX`), a log2-bucketed
//! [`Histogram`] carrying the full flush-latency distribution, and a
//! per-shard counter row so hot-shard skew is visible. The bounded
//! sorted-on-insert latency ledger stays as the compatibility read:
//! p50/p99 come from the same [`percentile_of_sorted`] convention as
//! the WSN simulator's delivery latencies, so percentiles mean the same
//! thing across every report in the workspace.
//!
//! A [`StatsSnapshot`] is the registry frozen at one instant; it travels
//! in [`crate::protocol::Message::StatsReply`] (and piggybacked on
//! `Heartbeat`) with the same fixed little-endian encoding as every
//! other payload. Under a [`crate::Clock::manual`] clock the snapshot is
//! a pure function of the message schedule — byte-identical across runs
//! and thread counts.

use std::sync::Mutex;

use orco_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use orco_wsn::accounting::percentile_of_sorted;

use crate::protocol::{put_f64, put_u16, put_u64, Cursor, WireError};

/// Upper bound on the shard count a [`StatsSnapshot`] may carry on the
/// wire (bounds the per-shard rows before any allocation, like
/// `MAX_MEMBERS` bounds membership lists).
pub const MAX_SHARDS: usize = 1024;

/// Worst-case encoded size of one [`StatsSnapshot`]: shard count,
/// 22 u64 counters, a drift flag byte, 2 f64 percentiles, and up to
/// [`MAX_SHARDS`] per-shard rows of 3 u64 each.
pub(crate) const SNAPSHOT_CAP: usize = 2 + 22 * 8 + 1 + 2 * 8 + MAX_SHARDS * 24;

/// Why a micro-batch was flushed. Each reason has its own counter in
/// [`StatsSnapshot`], so `deadline_flushes` means *deadline* flushes —
/// shutdown drains and read-your-writes pulls no longer masquerade as
/// size flushes (they did before this enum existed, inflating the
/// size-flush count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The pending batch reached `batch_max_frames`.
    Size,
    /// The pending batch outlived `batch_deadline`.
    Deadline,
    /// A `PullDecoded` flushed the puller's own pending frames
    /// (read-your-writes).
    Pull,
    /// Shutdown drained the batcher.
    Drain,
    /// A codec hot-swap flushed the batch so no flush straddles two
    /// model versions (the zero-drop cutover boundary).
    Swap,
}

impl FlushReason {
    /// Stable lowercase name used in trace spans and metric labels.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Deadline => "deadline",
            FlushReason::Pull => "pull",
            FlushReason::Drain => "drain",
            FlushReason::Swap => "swap",
        }
    }
}

/// Per-shard counter row: enough to see skew, small enough to ship on
/// every heartbeat.
#[derive(Debug, Default)]
struct ShardCounters {
    frames_in: Counter,
    frames_out: Counter,
    batches: Counter,
}

/// Shared, thread-safe registry of serving counters.
///
/// Counter updates are `Relaxed` atomics; a snapshot taken while pushes
/// are in flight is internally consistent per counter but not
/// transactional across counters (totals may straddle an in-progress
/// push). Under the deterministic loopback transport there is no
/// concurrency and snapshots are exact.
#[derive(Debug)]
pub struct ServeStats {
    shards: u16,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    pushes: Counter,
    pulls: Counter,
    busy_rejections: Counter,
    batches: Counter,
    size_flushes: Counter,
    deadline_flushes: Counter,
    pull_flushes: Counter,
    drain_flushes: Counter,
    swap_flushes: Counter,
    max_batch_rows: Gauge,
    queue_depth: Gauge,
    stored_codes: Gauge,
    streamed_rows: Counter,
    redirects: Counter,
    active_version: Gauge,
    drift_trips: Counter,
    swaps: Counter,
    rollbacks: Counter,
    drift: Gauge,
    per_shard: Vec<ShardCounters>,
    flush_latency: Histogram,
    latencies: Mutex<LatencyLedger>,
}

/// Cap on retained latency samples: the ledger must stay bounded on a
/// gateway that flushes forever (same pillar as the bounded queues).
const LATENCY_SAMPLE_CAP: usize = 4096;

/// Bounded flush-latency ledger. Samples are kept ascending-sorted on
/// insert (the `TrafficAccounting` convention, O(1) percentile reads);
/// when the cap is reached the sorted sample is decimated to every other
/// order statistic — which preserves the distribution's shape — and the
/// recording stride doubles, so memory and insert cost stay O(cap) no
/// matter how long the gateway runs. The policy is a pure function of the
/// flush sequence, so determinism under the loopback transport survives.
#[derive(Debug, Default)]
struct LatencyLedger {
    /// Retained per-flush latencies (oldest frame's enqueue → flush),
    /// ascending.
    samples: Vec<f64>,
    /// Record every `stride`-th flush (doubles at each decimation).
    stride: u64,
    /// Flushes observed (drives the stride phase).
    seen: u64,
}

impl LatencyLedger {
    fn record(&mut self, latency_s: f64) {
        if self.stride == 0 {
            self.stride = 1;
        }
        self.seen += 1;
        if !self.seen.is_multiple_of(self.stride) {
            return;
        }
        let idx = self.samples.partition_point(|v| *v <= latency_s);
        self.samples.insert(idx, latency_s);
        if self.samples.len() >= LATENCY_SAMPLE_CAP {
            let mut keep = false;
            self.samples.retain(|_| {
                keep = !keep;
                keep
            });
            self.stride *= 2;
        }
    }
}

impl ServeStats {
    /// Creates an empty registry for a gateway with `shards` shards.
    #[must_use]
    pub fn new(shards: u16) -> Self {
        Self {
            shards,
            frames_in: Counter::new(),
            frames_out: Counter::new(),
            bytes_in: Counter::new(),
            bytes_out: Counter::new(),
            pushes: Counter::new(),
            pulls: Counter::new(),
            busy_rejections: Counter::new(),
            batches: Counter::new(),
            size_flushes: Counter::new(),
            deadline_flushes: Counter::new(),
            pull_flushes: Counter::new(),
            drain_flushes: Counter::new(),
            swap_flushes: Counter::new(),
            max_batch_rows: Gauge::new(),
            queue_depth: Gauge::new(),
            stored_codes: Gauge::new(),
            streamed_rows: Counter::new(),
            redirects: Counter::new(),
            active_version: Gauge::new(),
            drift_trips: Counter::new(),
            swaps: Counter::new(),
            rollbacks: Counter::new(),
            drift: Gauge::new(),
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
            flush_latency: Histogram::new(),
            latencies: Mutex::new(LatencyLedger::default()),
        }
    }

    fn shard(&self, shard: usize) -> &ShardCounters {
        &self.per_shard[shard]
    }

    /// Records an accepted push of `rows` frames carrying `bytes` of
    /// frame payload into `shard`.
    pub fn record_push(&self, shard: usize, rows: u64, bytes: u64) {
        self.pushes.inc();
        self.frames_in.add(rows);
        self.bytes_in.add(bytes);
        self.queue_depth.add(rows);
        self.shard(shard).frames_in.add(rows);
    }

    /// Records a push rejected with `Busy`.
    pub fn record_busy(&self) {
        self.busy_rejections.inc();
    }

    /// Records one micro-batch flush of `rows` frames on `shard`,
    /// `latency_s` after its oldest frame was enqueued, for the given
    /// [`FlushReason`].
    pub fn record_flush(&self, shard: usize, rows: u64, latency_s: f64, reason: FlushReason) {
        self.batches.inc();
        let counter = match reason {
            FlushReason::Size => &self.size_flushes,
            FlushReason::Deadline => &self.deadline_flushes,
            FlushReason::Pull => &self.pull_flushes,
            FlushReason::Drain => &self.drain_flushes,
            FlushReason::Swap => &self.swap_flushes,
        };
        counter.inc();
        self.max_batch_rows.max_assign(rows);
        self.queue_depth.sub(rows);
        self.stored_codes.add(rows);
        self.shard(shard).batches.inc();
        self.flush_latency.record_secs(latency_s);
        self.latencies.lock().expect("stats lock").record(latency_s);
    }

    /// Records a pull from `shard` that returned `rows` decoded frames
    /// carrying `bytes` of frame payload.
    pub fn record_pull(&self, shard: usize, rows: u64, bytes: u64) {
        self.pulls.inc();
        self.frames_out.add(rows);
        self.bytes_out.add(bytes);
        // Clamped: a pull racing a flush recording reads low, never wraps.
        self.stored_codes.sub(rows);
        self.shard(shard).frames_out.add(rows);
    }

    /// Records `rows` decoded frames pushed from `shard` to streaming
    /// subscribers (carrying `bytes` of frame payload).
    pub fn record_streamed(&self, shard: usize, rows: u64, bytes: u64) {
        self.streamed_rows.add(rows);
        self.frames_out.add(rows);
        self.bytes_out.add(bytes);
        self.stored_codes.sub(rows);
        self.shard(shard).frames_out.add(rows);
    }

    /// Records a push bounced with a `Redirect` to the current owner.
    pub fn record_redirect(&self) {
        self.redirects.inc();
    }

    /// Publishes the id of the model version currently encoding flushes.
    pub fn set_active_version(&self, id: u64) {
        self.active_version.set(id);
    }

    /// Records the drift monitor tripping on the active model, and
    /// raises the drift flag until [`Self::set_drift`] clears it.
    pub fn record_drift_trip(&self) {
        self.drift_trips.inc();
        self.drift.set(1);
    }

    /// Sets or clears the drift flag (cleared when a swap installs a
    /// fresh model or the monitor is acknowledged).
    pub fn set_drift(&self, drifting: bool) {
        self.drift.set(u64::from(drifting));
    }

    /// Records a completed codec hot-swap (cutover to a new version).
    pub fn record_swap(&self) {
        self.swaps.inc();
    }

    /// Records a guard-triggered rollback to the prior model version.
    pub fn record_rollback(&self) {
        self.rollbacks.inc();
    }

    /// Freezes the registry into a snapshot.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let lats = self.latencies.lock().expect("stats lock");
        StatsSnapshot {
            shards: self.shards,
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            pushes: self.pushes.get(),
            pulls: self.pulls.get(),
            busy_rejections: self.busy_rejections.get(),
            batches: self.batches.get(),
            size_flushes: self.size_flushes.get(),
            deadline_flushes: self.deadline_flushes.get(),
            pull_flushes: self.pull_flushes.get(),
            drain_flushes: self.drain_flushes.get(),
            swap_flushes: self.swap_flushes.get(),
            max_batch_rows: self.max_batch_rows.get(),
            queue_depth: self.queue_depth.get(),
            stored_codes: self.stored_codes.get(),
            streamed_rows: self.streamed_rows.get(),
            redirects: self.redirects.get(),
            active_version: self.active_version.get(),
            drift_trips: self.drift_trips.get(),
            swaps: self.swaps.get(),
            rollbacks: self.rollbacks.get(),
            drift: self.drift.get() != 0,
            batch_latency_p50_s: percentile_of_sorted(&lats.samples, 0.5),
            batch_latency_p99_s: percentile_of_sorted(&lats.samples, 0.99),
            per_shard: self
                .per_shard
                .iter()
                .map(|s| ShardRow {
                    frames_in: s.frames_in.get(),
                    frames_out: s.frames_out.get(),
                    batches: s.batches.get(),
                })
                .collect(),
        }
    }

    /// The full flush-latency distribution (the p50/p99 snapshot fields
    /// are the bounded-ledger compatibility read; this is the shape).
    #[must_use]
    pub fn flush_latency_histogram(&self) -> HistogramSnapshot {
        self.flush_latency.snapshot()
    }

    /// Fills `reg` with every series this registry tracks, in a fixed
    /// order, so the rendered exposition is byte-stable for a given
    /// counter state.
    pub fn fill_registry(&self, reg: &mut Registry) {
        let snap = self.snapshot();
        reg.set_int("orco_shards", u64::from(snap.shards));
        reg.set_int("orco_frames_in_total", snap.frames_in);
        reg.set_int("orco_frames_out_total", snap.frames_out);
        reg.set_int("orco_bytes_in_total", snap.bytes_in);
        reg.set_int("orco_bytes_out_total", snap.bytes_out);
        reg.set_int("orco_pushes_total", snap.pushes);
        reg.set_int("orco_pulls_total", snap.pulls);
        reg.set_int("orco_busy_rejections_total", snap.busy_rejections);
        reg.set_int("orco_batches_total", snap.batches);
        reg.set_int(
            Registry::label("orco_flushes_total", &[("reason", "size")]),
            snap.size_flushes,
        );
        reg.set_int(
            Registry::label("orco_flushes_total", &[("reason", "deadline")]),
            snap.deadline_flushes,
        );
        reg.set_int(
            Registry::label("orco_flushes_total", &[("reason", "pull")]),
            snap.pull_flushes,
        );
        reg.set_int(
            Registry::label("orco_flushes_total", &[("reason", "drain")]),
            snap.drain_flushes,
        );
        reg.set_int(
            Registry::label("orco_flushes_total", &[("reason", "swap")]),
            snap.swap_flushes,
        );
        reg.set_int("orco_max_batch_rows", snap.max_batch_rows);
        reg.set_int("orco_queue_depth", snap.queue_depth);
        reg.set_int("orco_stored_codes", snap.stored_codes);
        reg.set_int("orco_streamed_rows_total", snap.streamed_rows);
        reg.set_int("orco_redirects_total", snap.redirects);
        reg.set_int("orco_active_model_version", snap.active_version);
        reg.set_int("orco_drift_trips_total", snap.drift_trips);
        reg.set_int("orco_model_swaps_total", snap.swaps);
        reg.set_int("orco_model_rollbacks_total", snap.rollbacks);
        reg.set_int("orco_drift_flag", u64::from(snap.drift));
        reg.set_float("orco_batch_latency_p50_s", snap.batch_latency_p50_s);
        reg.set_float("orco_batch_latency_p99_s", snap.batch_latency_p99_s);
        for (i, row) in snap.per_shard.iter().enumerate() {
            let shard = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard)];
            reg.set_int(Registry::label("orco_shard_frames_in_total", labels), row.frames_in);
            reg.set_int(Registry::label("orco_shard_frames_out_total", labels), row.frames_out);
            reg.set_int(Registry::label("orco_shard_batches_total", labels), row.batches);
        }
        reg.set_histogram("orco_flush_latency_ns", &self.flush_latency_histogram());
    }
}

/// One shard's counters inside a [`StatsSnapshot`]: enough to see
/// hot-shard skew from any scrape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardRow {
    /// Raw frames this shard accepted.
    pub frames_in: u64,
    /// Decoded frames this shard delivered (pulls + streams).
    pub frames_out: u64,
    /// Micro-batches this shard flushed.
    pub batches: u64,
}

/// The registry frozen at one instant; the payload of
/// [`crate::protocol::Message::StatsReply`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Number of worker shards (also the length of `per_shard`).
    pub shards: u16,
    /// Raw frames accepted into micro-batchers.
    pub frames_in: u64,
    /// Decoded frames returned to clients.
    pub frames_out: u64,
    /// Frame-payload bytes accepted (rows × frame width × 4).
    pub bytes_in: u64,
    /// Frame-payload bytes returned.
    pub bytes_out: u64,
    /// `PushFrames` requests accepted.
    pub pushes: u64,
    /// `PullDecoded` requests served.
    pub pulls: u64,
    /// Pushes rejected with `Busy` (backpressure events).
    pub busy_rejections: u64,
    /// Micro-batches flushed (each is ONE `encode_batch` call).
    pub batches: u64,
    /// Flushes triggered by the batch reaching `batch_max_frames`.
    pub size_flushes: u64,
    /// Flushes forced by the batch deadline.
    pub deadline_flushes: u64,
    /// Read-your-writes flushes triggered by a puller's own pending rows.
    pub pull_flushes: u64,
    /// Flushes performed while draining for shutdown.
    pub drain_flushes: u64,
    /// Flushes forced by a codec hot-swap cutover boundary.
    pub swap_flushes: u64,
    /// Rows of the largest single flush — evidence of micro-batching.
    pub max_batch_rows: u64,
    /// Rows currently pending in micro-batchers (gauge).
    pub queue_depth: u64,
    /// Encoded rows stored awaiting a pull (gauge).
    pub stored_codes: u64,
    /// Decoded rows delivered via streaming subscriptions.
    pub streamed_rows: u64,
    /// Pushes bounced with a `Redirect` to the cluster's current owner.
    pub redirects: u64,
    /// Id of the model version currently encoding flushes (gauge).
    pub active_version: u64,
    /// Times the drift monitor tripped on decoded-sample error.
    pub drift_trips: u64,
    /// Codec hot-swaps completed (activations that took effect).
    pub swaps: u64,
    /// Guard-triggered rollbacks to the prior model version.
    pub rollbacks: u64,
    /// Whether the drift monitor currently flags the active model.
    pub drift: bool,
    /// Median flush latency, seconds (0 when nothing flushed).
    pub batch_latency_p50_s: f64,
    /// 99th-percentile flush latency, seconds (0 when nothing flushed).
    pub batch_latency_p99_s: f64,
    /// Per-shard counter rows, one per shard in shard order.
    pub per_shard: Vec<ShardRow>,
}

impl StatsSnapshot {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            self.per_shard.len() == usize::from(self.shards) && self.per_shard.len() <= MAX_SHARDS,
            "snapshot per-shard rows must match the shard count (≤ MAX_SHARDS)"
        );
        put_u16(out, self.shards);
        put_u64(out, self.frames_in);
        put_u64(out, self.frames_out);
        put_u64(out, self.bytes_in);
        put_u64(out, self.bytes_out);
        put_u64(out, self.pushes);
        put_u64(out, self.pulls);
        put_u64(out, self.busy_rejections);
        put_u64(out, self.batches);
        put_u64(out, self.size_flushes);
        put_u64(out, self.deadline_flushes);
        put_u64(out, self.pull_flushes);
        put_u64(out, self.drain_flushes);
        put_u64(out, self.swap_flushes);
        put_u64(out, self.max_batch_rows);
        put_u64(out, self.queue_depth);
        put_u64(out, self.stored_codes);
        put_u64(out, self.streamed_rows);
        put_u64(out, self.redirects);
        put_u64(out, self.active_version);
        put_u64(out, self.drift_trips);
        put_u64(out, self.swaps);
        put_u64(out, self.rollbacks);
        out.push(u8::from(self.drift));
        put_f64(out, self.batch_latency_p50_s);
        put_f64(out, self.batch_latency_p99_s);
        for row in &self.per_shard {
            put_u64(out, row.frames_in);
            put_u64(out, row.frames_out);
            put_u64(out, row.batches);
        }
    }

    pub(crate) fn decode_from(cur: &mut Cursor<'_>) -> Result<Self, WireError> {
        let shards = cur.u16()?;
        if usize::from(shards) > MAX_SHARDS {
            return Err(WireError::Corrupt { detail: "snapshot shard count exceeds MAX_SHARDS" });
        }
        let mut snap = Self {
            shards,
            frames_in: cur.u64()?,
            frames_out: cur.u64()?,
            bytes_in: cur.u64()?,
            bytes_out: cur.u64()?,
            pushes: cur.u64()?,
            pulls: cur.u64()?,
            busy_rejections: cur.u64()?,
            batches: cur.u64()?,
            size_flushes: cur.u64()?,
            deadline_flushes: cur.u64()?,
            pull_flushes: cur.u64()?,
            drain_flushes: cur.u64()?,
            swap_flushes: cur.u64()?,
            max_batch_rows: cur.u64()?,
            queue_depth: cur.u64()?,
            stored_codes: cur.u64()?,
            streamed_rows: cur.u64()?,
            redirects: cur.u64()?,
            active_version: cur.u64()?,
            drift_trips: cur.u64()?,
            swaps: cur.u64()?,
            rollbacks: cur.u64()?,
            drift: match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Corrupt { detail: "drift flag is not 0 or 1" }),
            },
            batch_latency_p50_s: cur.f64()?,
            batch_latency_p99_s: cur.f64()?,
            per_shard: Vec::with_capacity(usize::from(shards)),
        };
        for _ in 0..shards {
            snap.per_shard.push(ShardRow {
                frames_in: cur.u64()?,
                frames_out: cur.u64()?,
                batches: cur.u64()?,
            });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track_lifecycle() {
        let s = ServeStats::new(2);
        s.record_push(0, 4, 4 * 784 * 4);
        s.record_push(1, 2, 2 * 784 * 4);
        s.record_busy();
        let snap = s.snapshot();
        assert_eq!(snap.frames_in, 6);
        assert_eq!(snap.queue_depth, 6);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.batches, 0);

        s.record_flush(0, 6, 0.010, FlushReason::Size);
        s.record_pull(0, 6, 6 * 784 * 4);
        let snap = s.snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.stored_codes, 0);
        assert_eq!(snap.frames_out, 6);
        assert_eq!(snap.max_batch_rows, 6);
        assert_eq!(snap.batch_latency_p50_s, 0.010);
    }

    #[test]
    fn per_shard_rows_split_the_rollup() {
        let s = ServeStats::new(2);
        s.record_push(0, 5, 100);
        s.record_push(1, 1, 20);
        s.record_flush(0, 5, 0.001, FlushReason::Size);
        s.record_pull(0, 5, 100);
        s.record_streamed(1, 1, 20);
        let snap = s.snapshot();
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0], ShardRow { frames_in: 5, frames_out: 5, batches: 1 });
        assert_eq!(snap.per_shard[1], ShardRow { frames_in: 1, frames_out: 1, batches: 0 });
        // The global rollup is exactly the per-shard sum.
        assert_eq!(snap.frames_in, snap.per_shard.iter().map(|r| r.frames_in).sum::<u64>());
        assert_eq!(snap.frames_out, snap.per_shard.iter().map(|r| r.frames_out).sum::<u64>());
    }

    #[test]
    fn racing_gauge_decrements_clamp_instead_of_wrapping() {
        // The drill for the historical underflow: a pull recorded before
        // the flush that stored its rows used to wrap stored_codes to
        // ~u64::MAX. The clamped gauge reads 0 instead, and the snapshot
        // never reports a wrapped gauge.
        let s = ServeStats::new(1);
        s.record_push(0, 4, 64);
        s.record_pull(0, 4, 64); // races ahead of record_flush
        let snap = s.snapshot();
        assert_eq!(snap.stored_codes, 0, "wrapped gauge leaked into the snapshot");
        s.record_flush(0, 4, 0.001, FlushReason::Pull);
        assert_eq!(s.snapshot().stored_codes, 4, "late flush recording still lands");
        // Same hazard on queue_depth: a flush recorded before its push.
        let s = ServeStats::new(1);
        s.record_flush(0, 3, 0.001, FlushReason::Size);
        assert_eq!(s.snapshot().queue_depth, 0);
        assert!(s.snapshot().queue_depth < u64::MAX / 2, "gauge must never wrap");
    }

    #[test]
    fn flush_reasons_count_separately() {
        let s = ServeStats::new(1);
        s.record_flush(0, 4, 0.001, FlushReason::Size);
        s.record_flush(0, 2, 0.006, FlushReason::Deadline);
        s.record_flush(0, 1, 0.002, FlushReason::Pull);
        s.record_flush(0, 3, 0.001, FlushReason::Drain);
        s.record_flush(0, 2, 0.001, FlushReason::Swap);
        let snap = s.snapshot();
        assert_eq!(snap.batches, 5);
        assert_eq!(snap.size_flushes, 1);
        assert_eq!(snap.deadline_flushes, 1);
        assert_eq!(snap.pull_flushes, 1);
        assert_eq!(snap.drain_flushes, 1);
        assert_eq!(snap.swap_flushes, 1);
        assert_eq!(
            snap.size_flushes
                + snap.deadline_flushes
                + snap.pull_flushes
                + snap.drain_flushes
                + snap.swap_flushes,
            snap.batches,
            "every flush has exactly one reason"
        );
    }

    #[test]
    fn rollout_telemetry_tracks_lifecycle() {
        let s = ServeStats::new(1);
        s.set_active_version(3);
        assert_eq!(s.snapshot().active_version, 3);
        assert!(!s.snapshot().drift);
        s.record_drift_trip();
        let snap = s.snapshot();
        assert_eq!(snap.drift_trips, 1);
        assert!(snap.drift, "a trip raises the drift flag");
        s.record_swap();
        s.set_active_version(4);
        s.set_drift(false);
        s.record_rollback();
        let snap = s.snapshot();
        assert_eq!((snap.swaps, snap.rollbacks, snap.active_version), (1, 1, 4));
        assert!(!snap.drift, "swap clears the drift flag");
        let mut reg = Registry::new();
        s.fill_registry(&mut reg);
        let text = reg.render();
        assert!(text.contains("orco_active_model_version 4"), "scrape:\n{text}");
        assert!(text.contains("orco_drift_trips_total 1"), "scrape:\n{text}");
        assert!(text.contains("orco_model_rollbacks_total 1"), "scrape:\n{text}");
    }

    #[test]
    fn latency_ledger_stays_bounded() {
        let s = ServeStats::new(1);
        for i in 0..(LATENCY_SAMPLE_CAP as u64 * 6) {
            s.record_flush(0, 1, (i % 1000) as f64 * 0.001, FlushReason::Size);
        }
        let lats = s.latencies.lock().unwrap();
        assert!(lats.samples.len() < LATENCY_SAMPLE_CAP, "ledger must stay under the cap");
        assert!(lats.stride > 1, "stride must grow after decimation");
        drop(lats);
        // Percentiles still reflect the (uniform 0..1s) distribution.
        let snap = s.snapshot();
        assert!((snap.batch_latency_p50_s - 0.5).abs() < 0.05, "p50 {}", snap.batch_latency_p50_s);
        assert!((snap.batch_latency_p99_s - 0.99).abs() < 0.05, "p99 {}", snap.batch_latency_p99_s);
        // The histogram keeps every sample (no decimation): full count.
        assert_eq!(s.flush_latency_histogram().count, LATENCY_SAMPLE_CAP as u64 * 6);
    }

    #[test]
    fn latency_percentiles_follow_wsn_convention() {
        let s = ServeStats::new(1);
        for i in 1..=100 {
            let reason = if i % 10 == 0 { FlushReason::Deadline } else { FlushReason::Size };
            s.record_flush(0, 1, f64::from(i) * 0.001, reason);
        }
        let snap = s.snapshot();
        assert_eq!(snap.deadline_flushes, 10);
        assert!((snap.batch_latency_p50_s - 0.050).abs() < 0.0015);
        assert!((snap.batch_latency_p99_s - 0.099).abs() < 0.0015);
    }

    #[test]
    fn exposition_is_byte_stable_and_carries_shard_labels() {
        let s = ServeStats::new(2);
        s.record_push(1, 3, 60);
        s.record_flush(1, 3, 0.004, FlushReason::Size);
        let mut reg = Registry::new();
        s.fill_registry(&mut reg);
        let text = reg.render();
        assert!(text.contains("orco_shard_frames_in_total{shard=\"1\"} 3"), "scrape:\n{text}");
        assert!(text.contains("orco_shard_frames_in_total{shard=\"0\"} 0"), "scrape:\n{text}");
        assert!(text.contains("orco_flushes_total{reason=\"size\"} 1"), "scrape:\n{text}");
        assert!(text.contains("orco_flush_latency_ns_count 1"), "scrape:\n{text}");
        let mut again = Registry::new();
        s.fill_registry(&mut again);
        assert_eq!(text, again.render(), "same state must scrape to identical bytes");
    }
}
