//! # orco-serve
//!
//! The serving layer of the OrcoDCS reproduction: a **sharded
//! edge-ingestion gateway** that exposes the batched codec data plane
//! ([`orcodcs::Codec::encode_batch`] / `decode_batch`) as a network
//! service over a length-prefixed binary wire protocol.
//!
//! The paper's pipeline ends at the edge server; this crate is what a
//! production deployment puts in front of it. Sensor clusters push raw
//! frames ([`protocol::Message::PushFrames`]); the gateway routes each
//! cluster to a shard by deterministic hash, micro-batches frames across
//! pushes, and encodes every flush as **one** `encode_batch` call — the
//! 4–6× batched-over-per-frame win measured in
//! `BENCH_frame_throughput.json` becomes a serving-throughput win
//! (measured in `BENCH_serve_throughput.json`). Consumers drain decoded
//! reconstructions with [`protocol::Message::PullDecoded`]; operators
//! read [`StatsSnapshot`]s off the same wire.
//!
//! Design pillars:
//!
//! * **std-only.** `std::net::TcpListener` + `std::thread`; no async
//!   runtime. The protocol is request/reply and the work is CPU-bound —
//!   threads per connection and per shard are the honest model.
//! * **Sharded ownership.** Each shard owns its codec and its reusable
//!   workspaces; the steady-state ingest path (push → flush → encode)
//!   performs no allocation, and nothing contends across shards.
//! * **Bounded memory, explicit backpressure.** A shard's in-flight rows
//!   (pending + stored) never exceed [`GatewayConfig::queue_capacity`];
//!   beyond it clients get [`protocol::Message::Busy`], never an
//!   unbounded buffer.
//! * **Deterministic by construction.** The [`Loopback`] transport plus
//!   [`Clock::manual`] make a full gateway run — stats included — a pure
//!   function of the message schedule, bit-identical at any
//!   `ORCO_THREADS` setting (regression-tested). The TCP face is the
//!   same dispatch path behind a real clock and real sockets.
//!
//! ## Quickstart (in-process loopback)
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use orco_serve::{Clock, Client, Gateway, GatewayConfig, Loopback, PushOutcome};
//! use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};
//! use orco_datasets::DatasetKind;
//! use orco_tensor::Matrix;
//!
//! let config = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
//! let gateway = Arc::new(Gateway::new(
//!     GatewayConfig { shards: 2, batch_max_frames: 8, ..GatewayConfig::default() },
//!     Clock::manual(Duration::from_micros(100)),
//!     |_| Box::new(AsymmetricAutoencoder::new(&config).expect("valid config")) as Box<dyn Codec>,
//! )?);
//!
//! let mut client = Client::connect(&Loopback::new(Arc::clone(&gateway)))?;
//! let info = client.hello(1)?;
//! assert_eq!(info.frame_dim, 784);
//!
//! // Push a round of frames for cluster 7, then read back reconstructions.
//! let frames = Matrix::zeros(8, 784);
//! assert_eq!(client.push(7, frames.as_view())?, PushOutcome::Accepted(8));
//! let decoded = client.pull(7, 64)?;
//! assert_eq!(decoded.shape(), (8, 784));
//! assert_eq!(client.stats()?.batches, 1); // one flush, ONE encode_batch
//! # Ok::<(), orcodcs::OrcoError>(())
//! ```
//!
//! For the TCP face, see [`TcpServer`], the `edge_gateway` example
//! (workspace root), and the `loadgen` binary in the `orco-fleet` crate.
//!
//! ## Serving under fire (DES transport + chaos gauntlet)
//!
//! The third transport, [`DesNet`], runs the same wire path over
//! [`orco_sim`]'s deterministic impaired links: scripted loss, latency,
//! jitter, and partitions under virtual time, with a stop-and-wait ARQ
//! and server-side dedup providing exactly-once delivery, and a
//! record→replay trace that reproduces any run bit-identically from its
//! log. See [`des_transport`] for a quickstart, [`scenarios`] for the
//! five-scenario chaos gauntlet ([`run_scenario`] / [`replay_scenario`]),
//! and the `chaos` CLI in the `orco-rollout` crate
//! (`cargo run -p orco-rollout --bin chaos -- --quick`).
//!
//! ## Fleets
//!
//! Everything above scales past one gateway: [`Service`] abstracts the
//! server side of the wire (the gateway implements it; so does the
//! `orco-fleet` directory), [`FleetView`] is the epoch'd cluster→gateway
//! assignment every party computes locally by rendezvous hashing, and a
//! gateway handed a view ([`Gateway::set_fleet_view`]) answers pushes for
//! clusters it does not own with [`Message::Redirect`] instead of silently
//! misrouting. [`auth`] adds a shared-secret MAC on `Hello`/`Register`.
//! The directory, fleet client, and fleet chaos scenarios live in the
//! `orco-fleet` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod backoff;
pub mod client;
pub mod clock;
pub mod des_transport;
pub mod fleet_view;
pub mod gateway;
pub mod outbox;
pub mod protocol;
pub mod scenarios;
pub mod service;
mod shard;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use backoff::Backoff;
pub use client::{Client, GatewayInfo, PushOutcome, VersionInfo};
pub use clock::Clock;
pub use des_transport::{DesConfig, DesConnection, DesNet, DesTransport, NetEvent};
pub use fleet_view::FleetView;
pub use gateway::{Gateway, GatewayConfig};
pub use outbox::Outbox;
pub use protocol::{
    ErrorCode, GatewayEntry, GatewayStats, Message, ModelVersion, WireError, MAX_LABEL,
    PROTOCOL_VERSION,
};
pub use scenarios::{
    replay_scenario, run_scenario, RunLog, ScenarioError, ScenarioOutcome, GAUNTLET,
};
pub use service::Service;
pub use stats::{FlushReason, ServeStats, ShardRow, StatsSnapshot};
pub use tcp::TcpServer;
pub use transport::{Connection, Loopback, LoopbackConnection, Tcp, TcpConnection, Transport};
