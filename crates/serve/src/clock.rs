//! The gateway's notion of time.
//!
//! Micro-batch deadlines and latency percentiles need a clock, but a
//! wall clock would make the loopback gateway nondeterministic — the same
//! message schedule would measure different latencies on every run. The
//! gateway therefore reads time through [`Clock`]:
//!
//! * [`Clock::real`] — monotonic wall time ([`Instant`]-based). Used by
//!   the TCP server, where deadlines must track actual elapsed time.
//! * [`Clock::manual`] — a virtual clock that advances by a fixed
//!   quantum every dispatched message and never consults the OS. Under
//!   it, the same message schedule produces **byte-identical** stats and
//!   flush decisions on every run, at any thread count — the loopback
//!   determinism regression in `tests/gateway_loopback.rs` pins this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic clock: real wall time or a deterministic virtual one.
#[derive(Debug)]
pub enum Clock {
    /// Monotonic wall time measured from construction.
    Real {
        /// Construction instant; `now_s` is seconds elapsed since it.
        epoch: Instant,
    },
    /// Deterministic virtual time: advances by `quantum_ns` per
    /// dispatched message, never by the OS clock.
    Virtual {
        /// Current virtual time in nanoseconds.
        nanos: AtomicU64,
        /// Nanoseconds added per dispatched message.
        quantum_ns: u64,
    },
}

impl Clock {
    /// A monotonic wall clock starting at zero now.
    #[must_use]
    pub fn real() -> Self {
        // The one blessed OS-clock read in library code: every other
        // consumer goes through a `Clock` value (orco-lint `wall-clock`
        // allows this file; clippy's disallowed-methods backstop is
        // waived here for the same reason).
        #[allow(clippy::disallowed_methods)]
        Clock::Real { epoch: Instant::now() }
    }

    /// A deterministic virtual clock advancing `quantum` per dispatched
    /// message.
    #[must_use]
    pub fn manual(quantum: Duration) -> Self {
        Clock::Virtual { nanos: AtomicU64::new(0), quantum_ns: quantum.as_nanos() as u64 }
    }

    /// Seconds since the clock's epoch.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        match self {
            Clock::Real { epoch } => epoch.elapsed().as_secs_f64(),
            // SeqCst: virtual time is the DES's global order; a reader
            // must never see time move backwards relative to any tick
            // it already observed through another thread.
            Clock::Virtual { nanos, .. } => nanos.load(Ordering::SeqCst) as f64 * 1e-9,
        }
    }

    /// Whether this is the wall clock (the TCP server requires it; its
    /// deadline-flusher threads sleep in real time).
    #[must_use]
    pub fn is_real(&self) -> bool {
        matches!(self, Clock::Real { .. })
    }

    /// Advances a virtual clock by one message quantum; no-op on a real
    /// clock (wall time advances itself).
    pub(crate) fn tick(&self) {
        if let Clock::Virtual { nanos, quantum_ns } = self {
            // SeqCst: ticks participate in the same total order the
            // now_s readers rely on (see now_s).
            nanos.fetch_add(*quantum_ns, Ordering::SeqCst);
        }
    }

    /// Advances a virtual clock by `dt` (no-op on a real clock). Lets
    /// tests and benchmarks force a batch deadline to expire without
    /// sleeping.
    pub fn advance(&self, dt: Duration) {
        if let Clock::Virtual { nanos, .. } = self {
            // SeqCst: same total order as tick/now_s.
            nanos.fetch_add(dt.as_nanos() as u64, Ordering::SeqCst);
        }
    }

    /// Advances a virtual clock to absolute time `t` since its epoch
    /// (no-op on a real clock, and never moves a virtual clock
    /// backwards). This is how an external discrete-event scheduler — the
    /// DES transport — slaves the gateway's clock to simulated time.
    pub fn advance_to(&self, t: Duration) {
        if let Clock::Virtual { nanos, .. } = self {
            // SeqCst: the DES scheduler's advances join the same total
            // order as tick/now_s, and fetch_max keeps time monotone.
            nanos.fetch_max(t.as_nanos() as u64, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_ticks_deterministically() {
        let c = Clock::manual(Duration::from_millis(2));
        assert_eq!(c.now_s(), 0.0);
        c.tick();
        c.tick();
        assert!((c.now_s() - 0.004).abs() < 1e-12);
        c.advance(Duration::from_millis(10));
        assert!((c.now_s() - 0.014).abs() < 1e-12);
        assert!(!c.is_real());
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = Clock::manual(Duration::ZERO);
        c.advance_to(Duration::from_millis(5));
        assert!((c.now_s() - 0.005).abs() < 1e-12);
        c.advance_to(Duration::from_millis(3)); // never backwards
        assert!((c.now_s() - 0.005).abs() < 1e-12);
        c.advance_to(Duration::from_millis(8));
        assert!((c.now_s() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        assert!(c.is_real());
        let a = c.now_s();
        c.tick(); // no-op
        let b = c.now_s();
        assert!(b >= a);
    }
}
