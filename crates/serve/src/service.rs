//! The server-side dispatch abstraction shared by every ORCO endpoint.
//!
//! PR 5's transports were hard-wired to [`Gateway`]; the fleet adds a
//! second server that speaks the same wire protocol — the directory —
//! and both must run behind the TCP acceptor, the loopback transport,
//! and the DES simulator. [`Service`] is the seam: one frame-in /
//! frame-out dispatch method plus the small lifecycle surface the
//! transports need (clock, shutdown flag, background workers, virtual
//! time advancement).

use std::sync::Arc;

use crate::clock::Clock;
use crate::gateway::Gateway;
use crate::outbox::Outbox;

/// A wire-protocol endpoint the transports can host: the gateway, the
/// fleet directory, or anything else that maps request frames to reply
/// frames.
pub trait Service: Send + Sync {
    /// Handles one raw request frame and encodes the reply into `reply`
    /// (cleared first). Malformed frames must produce an encoded
    /// `ErrorReply`, never silence. `outbox` is the connection's
    /// server-push channel when the transport has one (TCP, loopback);
    /// services that stream register it on `Subscribe`.
    fn handle_frame(&self, frame: &[u8], reply: &mut Vec<u8>, outbox: Option<&Arc<Outbox>>);

    /// The clock this service schedules against.
    fn clock(&self) -> &Clock;

    /// Whether a `Shutdown` has been accepted.
    fn is_shutting_down(&self) -> bool;

    /// Hook run by virtual-time schedulers (the DES transport) after
    /// advancing the clock: deadline sweeps, heartbeat-timeout checks.
    fn on_time_advance(&self) {}

    /// Number of background worker threads the TCP server should spawn.
    fn worker_count(&self) -> usize {
        0
    }

    /// Body of background worker `idx` (must return once
    /// [`Service::is_shutting_down`] turns true).
    fn run_worker(&self, _idx: usize) {}
}

impl Service for Gateway {
    fn handle_frame(&self, frame: &[u8], reply: &mut Vec<u8>, outbox: Option<&Arc<Outbox>>) {
        self.handle_bytes_with_outbox(frame, reply, outbox);
    }

    fn clock(&self) -> &Clock {
        Gateway::clock(self)
    }

    fn is_shutting_down(&self) -> bool {
        Gateway::is_shutting_down(self)
    }

    fn on_time_advance(&self) {
        self.sweep_deadlines();
        self.pump_streams();
    }

    fn worker_count(&self) -> usize {
        self.config().shards
    }

    fn run_worker(&self, idx: usize) {
        self.run_deadline_flusher(idx);
    }
}
