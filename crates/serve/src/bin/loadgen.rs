//! TCP load generator for an `orco-serve` gateway.
//!
//! Spawns N client threads, each owning one cluster: every client pushes
//! M synthetic frames (`--rows-per-push` per message), then drains its
//! decoded reconstructions in `--pull-chunk` chunks, honoring `Busy`
//! backpressure with a capped-exponential, deterministically-jittered
//! backoff (per-client seed from `--seed`, so N clients never retry in
//! lockstep). At the end one control connection prints the gateway's
//! stats snapshot and (with `--shutdown`) asks the gateway to exit.
//!
//! Pair it with the `edge_gateway` example:
//!
//! ```sh
//! cargo run --release --example edge_gateway &
//! cargo run --release -p orco-serve --bin loadgen -- --clients 2 --frames 64 --shutdown
//! ```

use std::time::{Duration, Instant};

use orco_serve::{Backoff, Client, PushOutcome, Tcp, TcpConnection};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::OrcoError;

struct Args {
    addr: String,
    clients: usize,
    frames: usize,
    rows_per_push: usize,
    pull_chunk: u32,
    shutdown: bool,
    connect_timeout: Duration,
    seed: u64,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            addr: "127.0.0.1:7117".into(),
            clients: 2,
            frames: 64,
            rows_per_push: 1,
            pull_chunk: 64,
            shutdown: false,
            connect_timeout: Duration::from_secs(10),
            seed: 0xC0FFEE,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr"),
                "--clients" => args.clients = value("--clients").parse().expect("usize"),
                "--frames" => args.frames = value("--frames").parse().expect("usize"),
                "--rows-per-push" => {
                    args.rows_per_push = value("--rows-per-push").parse().expect("usize");
                }
                "--pull-chunk" => args.pull_chunk = value("--pull-chunk").parse().expect("u32"),
                "--connect-timeout-s" => {
                    args.connect_timeout =
                        Duration::from_secs(value("--connect-timeout-s").parse().expect("u64"));
                }
                "--shutdown" => args.shutdown = true,
                "--seed" => args.seed = value("--seed").parse().expect("u64"),
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: loadgen [--addr HOST:PORT] [--clients N] \
                         [--frames M] [--rows-per-push R] [--pull-chunk K] \
                         [--connect-timeout-s S] [--seed N] [--shutdown]"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(args.clients > 0 && args.frames > 0 && args.rows_per_push > 0);
        assert!(args.pull_chunk > 0);
        args
    }
}

/// Dials until the gateway answers or the timeout elapses — the gateway
/// may still be starting when loadgen launches (CI runs them in
/// parallel).
fn connect_with_retry(
    transport: &Tcp,
    timeout: Duration,
) -> Result<Client<TcpConnection>, OrcoError> {
    let start = Instant::now();
    loop {
        match Client::connect(transport) {
            Ok(client) => return Ok(client),
            Err(_) if start.elapsed() < timeout => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
}

fn run_client(args: &Args, id: usize) -> Result<(usize, usize), OrcoError> {
    let transport = Tcp::new(args.addr.clone());
    let mut client = connect_with_retry(&transport, args.connect_timeout)?;
    let info = client.hello(id as u64)?;
    let cluster = 1000 + id as u64;
    let mut rng = OrcoRng::from_seed_u64(args.seed ^ id as u64);
    let frames =
        Matrix::from_fn(args.frames, info.frame_dim as usize, |_, _| rng.uniform(0.0, 1.0));
    // Per-client seed: N clients hitting the same saturated shard back
    // off on decorrelated schedules instead of retrying in lockstep.
    let mut backoff =
        Backoff::new(Duration::from_millis(1), Duration::from_millis(64), args.seed ^ id as u64);

    let mut pushed = 0usize;
    let mut pulled = 0usize;
    while pushed < args.frames {
        let hi = (pushed + args.rows_per_push).min(args.frames);
        match client.push(cluster, frames.view_rows(pushed..hi))? {
            PushOutcome::Accepted(n) => {
                pushed += n as usize;
                backoff.reset();
            }
            PushOutcome::Busy { .. } => {
                // Backpressure: drain some decoded output, then retry
                // after a jittered, exponentially growing wait.
                pulled += client.pull(cluster, args.pull_chunk)?.rows();
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
    while pulled < args.frames {
        let got = client.pull(cluster, args.pull_chunk)?.rows();
        if got == 0 {
            std::thread::sleep(backoff.next_delay());
            continue;
        }
        pulled += got;
        backoff.reset();
    }
    Ok((pushed, pulled))
}

fn main() {
    let args = Args::parse();
    println!(
        "loadgen: {} client(s) x {} frames -> {} (rows/push {}, pull chunk {})",
        args.clients, args.frames, args.addr, args.rows_per_push, args.pull_chunk
    );

    let start = Instant::now();
    let args_ref = &args;
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..args.clients).map(|id| scope.spawn(move || run_client(args_ref, id))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = 0usize;
    for (id, r) in results.iter().enumerate() {
        match r {
            Ok((pushed, pulled)) => {
                println!("  client {id}: pushed {pushed}, pulled {pulled}");
                total += pulled;
            }
            Err(e) => {
                eprintln!("  client {id} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "loadgen: {total} frames served end-to-end in {elapsed:.3}s ({:.0} frames/s)",
        total as f64 / elapsed
    );

    let transport = Tcp::new(args.addr.clone());
    let mut control = connect_with_retry(&transport, args.connect_timeout).expect("control conn");
    match control.stats() {
        Ok(s) => println!(
            "gateway stats: frames_in={} frames_out={} batches={} (max batch {}) \
             flushes size/deadline/pull/drain={}/{}/{}/{} busy={} p50={:.6}s p99={:.6}s",
            s.frames_in,
            s.frames_out,
            s.batches,
            s.max_batch_rows,
            s.size_flushes,
            s.deadline_flushes,
            s.pull_flushes,
            s.drain_flushes,
            s.busy_rejections,
            s.batch_latency_p50_s,
            s.batch_latency_p99_s
        ),
        Err(e) => eprintln!("stats request failed: {e}"),
    }
    if args.shutdown {
        control.shutdown().expect("shutdown accepted");
        println!("loadgen: gateway shutdown requested");
    }
}
