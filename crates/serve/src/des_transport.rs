//! The DES transport: the serving layer's client↔gateway wire run over
//! [`orco_sim::NetSim`]'s deterministic impaired links.
//!
//! [`Loopback`](crate::Loopback) exercises the full codec-and-protocol
//! path, but its request/reply exchange is instantaneous and infallible —
//! precisely the property that hides liveness bugs. [`DesNet`] puts the
//! scheduler back in: every request and reply frame becomes a payload on
//! a simulated unidirectional link, subject to scripted loss, latency,
//! jitter (a reordering window), and partitions, all under virtual time.
//! `Busy` retries, deadline flushing, retransmission, and reconnects stop
//! being timing-dependent races and become reproducible discrete-event
//! experiments: a run is a pure function of its seed and script, and the
//! recorded [`SendRecord`] trace replays it **bit-identically** even
//! after the RNG or link parameters drift.
//!
//! ## Exactly-once under fire
//!
//! Frames are carried by a stop-and-wait ARQ with per-**session**
//! sequence numbers:
//!
//! * the client assigns each request a fresh sequence number and
//!   retransmits it on a capped-exponential RTO until the matching reply
//!   arrives or `max_attempts` is exhausted ([`NetEvent::GaveUp`]);
//! * the gateway side keeps, per session, the last sequence it executed
//!   and the reply it produced: a duplicate of that sequence re-sends the
//!   cached reply **without re-executing** the request, and anything
//!   staler is dropped. A retransmitted `PushFrames` therefore never
//!   double-enqueues, no matter how the links reorder or duplicate.
//! * sessions outlive connections: [`DesNet::reconnect`] abandons a
//!   connection's links (packets in flight on them die) but keeps the
//!   session's sequence state and re-offers the outstanding request on
//!   the new links — exactly-once holds across connection death. The
//!   fleet failover form, [`DesNet::reconnect_to`], resumes the session
//!   against a *different* endpoint.
//!
//! ## Endpoints
//!
//! A net hosts one or more server **endpoints** — any [`Service`]: the
//! gateway of [`DesNet::new`] is endpoint 0; fleet scenarios use
//! [`DesNet::new_multi`] + [`DesNet::add_service`] to stand up a
//! directory and several gateways behind one simulation, and
//! [`DesNet::kill_endpoint`] to crash one mid-run (requests to it vanish;
//! ARQ give-up and missed heartbeats are the only tells).
//!
//! ## Time
//!
//! Every service must run a virtual [`Clock`](crate::Clock) (quantum zero
//! is the natural choice); [`DesNet`] slaves each endpoint's clock to
//! simulated time with [`crate::Clock::advance_to`] before delivering
//! each event and then calls [`Service::on_time_advance`], so micro-batch
//! deadlines and heartbeat sweeps fire from the passage of *simulated*
//! time — including on shards no packet happens to touch.
//!
//! ## Quickstart
//!
//! ```
//! use std::rc::Rc;
//! use std::sync::Arc;
//! use std::time::Duration;
//! use orco_serve::{Clock, DesConfig, DesNet, Gateway, GatewayConfig, Message};
//! use orco_sim::{LinkParams, NetScenario};
//! use orco_tensor::Matrix;
//! use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};
//! use orco_datasets::DatasetKind;
//!
//! let config = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16);
//! let gateway = Arc::new(Gateway::new(
//!     GatewayConfig::default(),
//!     Clock::manual(Duration::ZERO), // DES time is the only time
//!     |_| Box::new(AsymmetricAutoencoder::new(&config).expect("valid")) as Box<dyn Codec>,
//! )?);
//!
//! // A 5%-lossy 2ms link; the ARQ hides the loss.
//! let net = DesNet::new(
//!     Arc::clone(&gateway),
//!     DesConfig {
//!         link: LinkParams { delay_s: 0.002, jitter_s: 0.001, loss_prob: 0.05 },
//!         ..DesConfig::default()
//!     },
//!     42,
//! );
//! let conn = net.connect();
//! let seq = net.submit(conn, &Message::PushFrames { cluster_id: 7, trace: 1, frames: Matrix::zeros(4, 784) });
//! net.pump_until_idle();
//! assert!(matches!(net.take_reply(conn, seq), Some(Message::PushAck { accepted: 4 })));
//! # Ok::<(), orcodcs::OrcoError>(())
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use orco_sim::{LinkParams, NetScenario, NetSim, SendRecord};
use orcodcs::OrcoError;

use crate::gateway::Gateway;
use crate::protocol::Message;
use crate::service::Service;
use crate::transport::{Connection, Transport};

/// Link and ARQ parameters of a [`DesNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesConfig {
    /// Base parameters of every link (script windows override them).
    pub link: LinkParams,
    /// Initial retransmission timeout.
    pub rto: Duration,
    /// Ceiling of the per-retry doubled RTO.
    pub rto_cap: Duration,
    /// Transmission attempts (first send included) before
    /// [`NetEvent::GaveUp`].
    pub max_attempts: u32,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            link: LinkParams::ideal(),
            rto: Duration::from_millis(10),
            rto_cap: Duration::from_millis(160),
            max_attempts: 8,
        }
    }
}

/// A client-visible event surfaced by [`DesNet::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// The reply to request `seq` arrived on `conn`; collect it with
    /// [`DesNet::take_reply`].
    Reply {
        /// Connection the reply arrived on.
        conn: usize,
        /// Sequence number of the completed request.
        seq: u64,
    },
    /// Request `seq` exhausted its attempts; the connection is dead until
    /// [`DesNet::reconnect`], which re-offers the request.
    GaveUp {
        /// Connection the request was in flight on.
        conn: usize,
        /// Sequence number of the abandoned request.
        seq: u64,
    },
    /// A timer scheduled with [`DesNet::schedule_wakeup`] fired.
    Wakeup {
        /// The caller's token, returned verbatim.
        token: u64,
    },
    /// No events are pending: simulated time can go no further.
    Idle,
}

#[derive(Debug, Clone)]
enum Packet {
    /// Request frame traveling client → gateway.
    Up { conn: usize, seq: u64, bytes: Vec<u8> },
    /// Reply frame traveling gateway → client.
    Down { conn: usize, seq: u64, bytes: Vec<u8> },
    /// Client-side retransmission timer for `seq` on `session`.
    Rto { session: usize, seq: u64 },
    /// Caller-scheduled timer.
    Wakeup { token: u64 },
}

#[derive(Debug)]
struct Outstanding {
    seq: u64,
    bytes: Vec<u8>,
    /// Transmissions so far (first send included).
    attempts: u32,
    /// Next RTO to arm, seconds.
    rto_s: f64,
    gave_up: bool,
}

#[derive(Debug, Default)]
struct Session {
    /// Sequence number the next [`DesNet::submit`] will take.
    next_seq: u64,
    /// Highest sequence whose reply reached the client.
    completed: u64,
    outstanding: Option<Outstanding>,
    /// Connection currently carrying this session.
    conn: usize,
    /// Replies delivered but not yet taken, by sequence.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Gateway side: last sequence executed, and its cached reply frame.
    srv_last_seq: u64,
    srv_last_reply: Vec<u8>,
}

#[derive(Debug)]
struct ConnState {
    session: usize,
    /// The server endpoint this connection dials.
    endpoint: usize,
    /// Client → server link index.
    up: usize,
    /// Server → client link index.
    down: usize,
    /// Dead connections drop every packet addressed to them.
    alive: bool,
}

/// One server behind the simulated network: a gateway or the fleet
/// directory.
struct EndpointState {
    svc: Arc<dyn Service>,
    /// Killed endpoints silently drop every request delivered to them —
    /// the DES model of a crashed process (clients only learn via ARQ
    /// give-up; the directory only learns via missed heartbeats).
    alive: bool,
}

struct Inner {
    cfg: DesConfig,
    sim: NetSim<Packet>,
    endpoints: Vec<EndpointState>,
    /// The gateway passed to [`DesNet::new`], kept typed for the legacy
    /// single-gateway accessor; `None` for multi-endpoint nets.
    primary: Option<Arc<Gateway>>,
    sessions: Vec<Session>,
    conns: Vec<ConnState>,
}

/// A deterministic impaired network binding DES clients to one gateway.
///
/// Cheaply cloneable (`Rc`-shared); deliberately single-threaded — the
/// whole point is that every run is one totally-ordered event sequence.
#[derive(Clone)]
pub struct DesNet {
    inner: Rc<RefCell<Inner>>,
}

impl std::fmt::Debug for DesNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("DesNet")
            .field("cfg", &inner.cfg)
            .field("sessions", &inner.sessions.len())
            .field("conns", &inner.conns.len())
            .field("now_s", &inner.sim.now_s())
            .finish_non_exhaustive()
    }
}

impl DesNet {
    /// Binds a DES network to `gateway`, drawing link impairments from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the gateway runs a real clock — simulated links need a
    /// virtual one ([`crate::Clock::manual`], quantum zero recommended so
    /// DES time is the only time that passes).
    #[must_use]
    pub fn new(gateway: Arc<Gateway>, cfg: DesConfig, seed: u64) -> Self {
        let net = Self::new_multi(cfg, seed);
        net.inner.borrow_mut().primary = Some(Arc::clone(&gateway));
        let ep = net.add_service(gateway);
        debug_assert_eq!(ep, 0);
        net
    }

    /// Builds a DES network with no endpoints yet — the multi-server form
    /// used by fleet scenarios. Register servers with
    /// [`DesNet::add_service`] and dial them with [`DesNet::connect_to`].
    #[must_use]
    pub fn new_multi(cfg: DesConfig, seed: u64) -> Self {
        Self {
            inner: Rc::new(RefCell::new(Inner {
                cfg,
                sim: NetSim::new(seed),
                endpoints: Vec::new(),
                primary: None,
                sessions: Vec::new(),
                conns: Vec::new(),
            })),
        }
    }

    /// Registers another server endpoint (a gateway or the fleet
    /// directory) behind the simulated network; returns its endpoint id
    /// for [`DesNet::connect_to`].
    ///
    /// # Panics
    ///
    /// Panics if the service runs a real clock — simulated links need a
    /// virtual one ([`crate::Clock::manual`], quantum zero recommended so
    /// DES time is the only time that passes).
    pub fn add_service(&self, svc: Arc<dyn Service>) -> usize {
        assert!(
            !svc.clock().is_real(),
            "DesNet requires services on a virtual clock (Clock::manual); a real clock \
             would race simulated time"
        );
        let mut inner = self.inner.borrow_mut();
        inner.endpoints.push(EndpointState { svc, alive: true });
        inner.endpoints.len() - 1
    }

    /// The gateway this network serves.
    ///
    /// # Panics
    ///
    /// Panics on a [`DesNet::new_multi`] network — there, endpoints are
    /// plain services with no distinguished gateway.
    #[must_use]
    pub fn gateway(&self) -> Arc<Gateway> {
        Arc::clone(
            self.inner
                .borrow()
                .primary
                .as_ref()
                .expect("DesNet::gateway on a multi-endpoint net (built with new_multi)"),
        )
    }

    /// Marks endpoint `ep` crashed: every request delivered to it from now
    /// on is silently dropped (sends still draw loss/latency verdicts, so
    /// recorded traces replay identically). Clients learn only through ARQ
    /// give-up; the directory through missed heartbeats.
    ///
    /// # Panics
    ///
    /// Panics on an unknown endpoint id.
    pub fn kill_endpoint(&self, ep: usize) {
        let mut inner = self.inner.borrow_mut();
        assert!(ep < inner.endpoints.len(), "kill_endpoint on unknown endpoint {ep}");
        inner.endpoints[ep].alive = false;
    }

    /// Whether endpoint `ep` is still alive.
    #[must_use]
    pub fn endpoint_alive(&self, ep: usize) -> bool {
        self.inner.borrow().endpoints[ep].alive
    }

    /// Current simulated time, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.inner.borrow().sim.now_s()
    }

    /// Opens a fresh session on a fresh connection to endpoint 0 (an
    /// uplink/downlink pair at the configured base [`LinkParams`]);
    /// returns the connection id.
    pub fn connect(&self) -> usize {
        self.connect_to(0)
    }

    /// Opens a fresh session on a fresh connection to endpoint `ep`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown endpoint id. (Connecting to a *dead* endpoint
    /// is allowed — real dialers cannot tell either; the ARQ will give
    /// up.)
    pub fn connect_to(&self, ep: usize) -> usize {
        let mut inner = self.inner.borrow_mut();
        assert!(ep < inner.endpoints.len(), "connect_to unknown endpoint {ep}");
        let link = inner.cfg.link;
        let up = inner.sim.add_link(link);
        let down = inner.sim.add_link(link);
        let session = inner.sessions.len();
        let conn = inner.conns.len();
        inner.sessions.push(Session { conn, ..Session::default() });
        inner.conns.push(ConnState { session, endpoint: ep, up, down, alive: true });
        inner.conns.len() - 1
    }

    /// Kills `conn` and opens a replacement carrying the **same session**:
    /// packets in flight on the old links die, but sequence state
    /// survives, and an outstanding request (gave-up or not) is re-offered
    /// on the new links with a fresh attempt budget. Returns the new
    /// connection id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown connection id.
    pub fn reconnect(&self, conn: usize) -> usize {
        let ep = self.inner.borrow().conns[conn].endpoint;
        self.reconnect_to(conn, ep)
    }

    /// Like [`DesNet::reconnect`], but the replacement connection dials
    /// endpoint `ep` — the failover primitive: the session (and its
    /// client-side sequence state) resumes against a **new server**. When
    /// the endpoint actually changes, the server-side dedup memory is
    /// reset — the new server has never seen this session, so whatever is
    /// re-offered or submitted next executes there (the scenario layer's
    /// delivered-watermark bookkeeping makes that exactly-once end to
    /// end).
    ///
    /// # Panics
    ///
    /// Panics on an unknown connection or endpoint id.
    pub fn reconnect_to(&self, conn: usize, ep: usize) -> usize {
        let mut inner = self.inner.borrow_mut();
        assert!(conn < inner.conns.len(), "reconnect on unknown connection {conn}");
        assert!(ep < inner.endpoints.len(), "reconnect_to unknown endpoint {ep}");
        inner.conns[conn].alive = false;
        let link = inner.cfg.link;
        let up = inner.sim.add_link(link);
        let down = inner.sim.add_link(link);
        let session = inner.conns[conn].session;
        let moved = inner.conns[conn].endpoint != ep;
        inner.conns.push(ConnState { session, endpoint: ep, up, down, alive: true });
        let new_conn = inner.conns.len() - 1;
        let s = &mut inner.sessions[session];
        s.conn = new_conn;
        if moved {
            // A different server answers now; it holds no cached reply
            // for this session.
            s.srv_last_seq = 0;
            s.srv_last_reply.clear();
        }
        if let Some(mut out) = inner.sessions[session].outstanding.take() {
            out.attempts = 0;
            out.rto_s = inner.cfg.rto.as_secs_f64();
            out.gave_up = false;
            inner.sessions[session].outstanding = Some(out);
            inner.transmit_outstanding(session);
        }
        new_conn
    }

    /// Drops `conn`'s outstanding request without a reply (stale timers
    /// become no-ops). Failover drivers use this before re-pushing from a
    /// delivered watermark on a new owner, where re-offering the old
    /// frame verbatim would be wrong.
    pub fn cancel_outstanding(&self, conn: usize) {
        let mut inner = self.inner.borrow_mut();
        let session = inner.conns[conn].session;
        inner.sessions[session].outstanding = None;
    }

    /// The uplink (client → gateway) link index of `conn`, for
    /// [`NetScenario`] scripting.
    #[must_use]
    pub fn uplink(&self, conn: usize) -> usize {
        self.inner.borrow().conns[conn].up
    }

    /// The downlink (gateway → client) link index of `conn`.
    #[must_use]
    pub fn downlink(&self, conn: usize) -> usize {
        self.inner.borrow().conns[conn].down
    }

    /// Merges an impairment script into the simulation. Link indices come
    /// from [`DesNet::uplink`]/[`DesNet::downlink`], so open connections
    /// first.
    pub fn script(&self, scenario: &NetScenario) {
        self.inner.borrow_mut().sim.script(scenario);
    }

    /// The impairment trace recorded so far — the run's event log.
    #[must_use]
    pub fn trace(&self) -> Vec<SendRecord> {
        self.inner.borrow().sim.trace().to_vec()
    }

    /// Switches the simulation into replay mode: subsequent sends consume
    /// `trace` instead of drawing randomness. Start replay before any
    /// traffic and drive the identical schedule.
    pub fn begin_replay(&self, trace: Vec<SendRecord>) {
        self.inner.borrow_mut().sim.begin_replay(trace);
    }

    /// Submits a request on `conn`, assigning it the session's next
    /// sequence number; the frame is transmitted immediately and the RTO
    /// armed. Returns the sequence to pass to [`DesNet::take_reply`].
    ///
    /// # Panics
    ///
    /// Panics if the session already has a request outstanding (the ARQ
    /// is stop-and-wait: one request per session at a time) or the
    /// connection is dead.
    pub fn submit(&self, conn: usize, msg: &Message) -> u64 {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.conns[conn].alive, "submit on dead connection {conn} (reconnect first)");
        let session = inner.conns[conn].session;
        assert!(
            inner.sessions[session].outstanding.is_none(),
            "submit while a request is outstanding: the DES ARQ is stop-and-wait"
        );
        let mut bytes = Vec::new();
        msg.encode_into(&mut bytes);
        let rto_s = inner.cfg.rto.as_secs_f64();
        let s = &mut inner.sessions[session];
        s.next_seq += 1;
        let seq = s.next_seq;
        s.outstanding = Some(Outstanding { seq, bytes, attempts: 0, rto_s, gave_up: false });
        inner.transmit_outstanding(session);
        seq
    }

    /// Schedules a [`NetEvent::Wakeup`] `dt` from now — the hook backoff
    /// sleeps and scenario actors hang their timers on.
    pub fn schedule_wakeup(&self, dt: Duration, token: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.sim.schedule_in(dt.as_secs_f64(), 0, Packet::Wakeup { token });
    }

    /// Advances the simulation to the next client-visible event and
    /// returns it ([`NetEvent::Idle`] when the queue is empty). Internal
    /// events — frame arrivals, retransmissions — are processed silently.
    pub fn poll(&self) -> NetEvent {
        let mut inner = self.inner.borrow_mut();
        loop {
            let Some((t, packet)) = inner.sim.next() else {
                return NetEvent::Idle;
            };
            // Slave every live endpoint's clock to simulated time and let
            // overdue work (micro-batch deadlines, heartbeat-timeout
            // sweeps) run before the event acts.
            for ep in &inner.endpoints {
                if ep.alive {
                    ep.svc.clock().advance_to(Duration::from_secs_f64(t));
                    ep.svc.on_time_advance();
                }
            }
            match packet {
                Packet::Up { conn, seq, bytes } => inner.deliver_up(conn, seq, &bytes),
                Packet::Down { conn, seq, bytes } => {
                    if let Some(ev) = inner.deliver_down(conn, seq, bytes) {
                        return ev;
                    }
                }
                Packet::Rto { session, seq } => {
                    if let Some(ev) = inner.fire_rto(session, seq) {
                        return ev;
                    }
                }
                Packet::Wakeup { token } => return NetEvent::Wakeup { token },
            }
        }
    }

    /// Runs [`DesNet::poll`] until the event queue drains. Convenient for
    /// tests that submit a batch of work and want the dust settled.
    pub fn pump_until_idle(&self) {
        while self.poll() != NetEvent::Idle {}
    }

    /// Takes the decoded reply to request `seq` on `conn`, if delivered.
    #[must_use]
    pub fn take_reply(&self, conn: usize, seq: u64) -> Option<Message> {
        let mut inner = self.inner.borrow_mut();
        let session = inner.conns[conn].session;
        let bytes = inner.sessions[session].ready.remove(&seq)?;
        Some(Message::decode(&bytes).expect("gateway produced an undecodable frame"))
    }
}

impl Inner {
    /// (Re)transmits the session's outstanding request on its current
    /// connection and arms the next RTO.
    fn transmit_outstanding(&mut self, session: usize) {
        let conn = self.sessions[session].conn;
        let up = self.conns[conn].up;
        let out = self.sessions[session].outstanding.as_mut().expect("outstanding set");
        out.attempts += 1;
        let seq = out.seq;
        let bytes = out.bytes.clone();
        let rto_s = out.rto_s;
        self.sim.send(up, up as u64, Packet::Up { conn, seq, bytes });
        self.sim.schedule_in(rto_s, 0, Packet::Rto { session, seq });
    }

    /// A request frame reached its server endpoint: dedup, execute, reply.
    fn deliver_up(&mut self, conn: usize, seq: u64, bytes: &[u8]) {
        if !self.conns[conn].alive {
            return; // the connection died while the frame was in flight
        }
        if !self.endpoints[self.conns[conn].endpoint].alive {
            return; // crashed server: the request vanishes, no reply ever
        }
        let session = self.conns[conn].session;
        if seq == self.sessions[session].srv_last_seq {
            // Duplicate of the last executed request: re-send the cached
            // reply, do NOT re-execute (a retransmitted push must not
            // double-enqueue).
            let reply = self.sessions[session].srv_last_reply.clone();
            self.send_down(conn, seq, reply);
            return;
        }
        if seq < self.sessions[session].srv_last_seq {
            return; // stale straggler from a reordering window
        }
        let mut reply = Vec::new();
        self.endpoints[self.conns[conn].endpoint].svc.handle_frame(bytes, &mut reply, None);
        let s = &mut self.sessions[session];
        s.srv_last_seq = seq;
        s.srv_last_reply = reply.clone();
        self.send_down(conn, seq, reply);
    }

    fn send_down(&mut self, conn: usize, seq: u64, bytes: Vec<u8>) {
        let down = self.conns[conn].down;
        self.sim.send(down, down as u64, Packet::Down { conn, seq, bytes });
    }

    /// A reply frame reached the client: complete the outstanding request
    /// exactly once.
    fn deliver_down(&mut self, conn: usize, seq: u64, bytes: Vec<u8>) -> Option<NetEvent> {
        if !self.conns[conn].alive {
            return None;
        }
        let session = self.conns[conn].session;
        let s = &mut self.sessions[session];
        if seq <= s.completed {
            return None; // duplicate reply (the request was retransmitted)
        }
        s.completed = seq;
        if s.outstanding.as_ref().is_some_and(|o| o.seq == seq) {
            s.outstanding = None;
        }
        s.ready.insert(seq, bytes);
        Some(NetEvent::Reply { conn, seq })
    }

    /// The RTO for (`session`, `seq`) fired: retransmit with a doubled
    /// timeout, or give up at the attempt cap.
    fn fire_rto(&mut self, session: usize, seq: u64) -> Option<NetEvent> {
        let cfg = self.cfg;
        let out = self.sessions[session].outstanding.as_mut()?;
        if out.seq != seq || out.gave_up {
            return None; // completed or already abandoned; stale timer
        }
        if out.attempts >= cfg.max_attempts {
            out.gave_up = true;
            return Some(NetEvent::GaveUp { conn: self.sessions[session].conn, seq });
        }
        out.rto_s = (out.rto_s * 2.0).min(cfg.rto_cap.as_secs_f64());
        self.transmit_outstanding(session);
        None
    }
}

/// [`Transport`] adapter over a [`DesNet`]: each [`Transport::connect`]
/// opens a DES connection whose blocking [`Connection::request`] drives
/// the simulation until the reply lands (or the ARQ gives up, which
/// surfaces as [`OrcoError::Io`]).
///
/// Useful for running *existing* [`crate::Client`]-based code over
/// impaired links unchanged; scenario drivers that juggle many clients
/// should use the non-blocking [`DesNet`] API directly.
#[derive(Debug, Clone)]
pub struct DesTransport {
    net: DesNet,
}

impl DesTransport {
    /// Wraps `net` as a [`Transport`].
    #[must_use]
    pub fn new(net: DesNet) -> Self {
        Self { net }
    }

    /// The underlying network (for scripting and traces).
    #[must_use]
    pub fn net(&self) -> &DesNet {
        &self.net
    }
}

impl Transport for DesTransport {
    type Conn = DesConnection;

    fn connect(&self) -> Result<Self::Conn, OrcoError> {
        Ok(DesConnection { net: self.net.clone(), conn: self.net.connect() })
    }
}

/// A blocking DES connection: one request at a time, pumped to completion.
#[derive(Debug)]
pub struct DesConnection {
    net: DesNet,
    conn: usize,
}

impl DesConnection {
    /// The connection id inside the [`DesNet`] (for link scripting).
    #[must_use]
    pub fn conn_id(&self) -> usize {
        self.conn
    }
}

impl Connection for DesConnection {
    fn request(&mut self, msg: &Message) -> Result<Message, OrcoError> {
        let seq = self.net.submit(self.conn, msg);
        loop {
            match self.net.poll() {
                NetEvent::Reply { conn, seq: got } if conn == self.conn && got == seq => {
                    return Ok(self
                        .net
                        .take_reply(conn, seq)
                        .expect("reply announced but not stored"));
                }
                NetEvent::GaveUp { conn, seq: got } if conn == self.conn && got == seq => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("DES ARQ gave up on request seq {seq} (link too impaired)"),
                    )
                    .into());
                }
                NetEvent::Idle => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "DES queue drained with the request still outstanding",
                    )
                    .into());
                }
                // Replies for other connections are stashed by poll();
                // wakeups belong to whoever scheduled them.
                _ => {}
            }
        }
    }
}
