//! HMAC-style shared-secret authentication for `Hello` / `Register`.
//!
//! The fleet has no TLS and no dependency budget for real crypto, so
//! connection auth is a keyed MAC built from the primitives the
//! workspace already ships: the ChaCha8 core behind
//! [`OrcoRng`] as the PRF and FNV-1a for message
//! absorption. The construction mirrors HMAC's two-pass shape —
//! `MAC(k, m) = PRF(k ⊕ opad, PRF(k ⊕ ipad, m))` — so the outer pass
//! prevents the length-extension-style tricks a single naive
//! `hash(key ‖ msg)` would allow.
//!
//! **This is deployment hygiene, not peer-reviewed cryptography**: the
//! 64-bit tag and non-constant-time comparison are fine for keeping
//! misconfigured or garbled peers out of a fleet, not for adversaries
//! with oracle access. The property test in this module (and the wider
//! suite in `tests/auth_property.rs`) pins the contract the serving
//! layer relies on: flipping any bit of the message or tag never
//! authenticates under the same secret.

use orco_tensor::{fnv1a64, OrcoRng};

/// Inner-pad constant (HMAC's classic `0x36` byte, repeated).
const IPAD: u64 = 0x3636_3636_3636_3636;

/// Outer-pad constant (HMAC's classic `0x5c` byte, repeated).
const OPAD: u64 = 0x5c5c_5c5c_5c5c_5c5c;

/// One PRF pass: absorb `data` into a ChaCha8 stream keyed by
/// `key ⊕ fnv1a64(data)` and emit the first 64 output bits. ChaCha8
/// does the mixing; FNV only compresses the message into the seed.
fn prf64(key: u64, data: &[u8]) -> u64 {
    OrcoRng::from_seed_u64(key ^ fnv1a64(data)).next_u64()
}

/// Two-pass keyed MAC over an arbitrary byte message.
#[must_use]
pub fn mac64(secret: u64, message: &[u8]) -> u64 {
    let inner = prf64(secret ^ IPAD, message);
    prf64(secret ^ OPAD, &inner.to_le_bytes())
}

/// MAC for a client [`Hello`](crate::Message::Hello): binds the
/// client id and the caller-chosen nonce.
#[must_use]
pub fn hello_mac(secret: u64, client_id: u64, nonce: u64) -> u64 {
    let mut msg = [0u8; 17];
    msg[0] = 0x01; // domain-separates Hello from Register
    msg[1..9].copy_from_slice(&client_id.to_le_bytes());
    msg[9..17].copy_from_slice(&nonce.to_le_bytes());
    mac64(secret, &msg)
}

/// MAC for a gateway [`Register`](crate::Message::Register): binds the
/// gateway id, its advertised dial address, and the nonce.
#[must_use]
pub fn register_mac(secret: u64, gateway_id: u64, addr: &str, nonce: u64) -> u64 {
    let mut msg = Vec::with_capacity(21 + addr.len());
    msg.push(0x02); // domain-separates Register from Hello
    msg.extend_from_slice(&gateway_id.to_le_bytes());
    msg.extend_from_slice(&nonce.to_le_bytes());
    msg.extend_from_slice(&(addr.len() as u32).to_le_bytes());
    msg.extend_from_slice(addr.as_bytes());
    mac64(secret, &msg)
}

/// MAC for the rollout control plane
/// ([`RolloutPropose`](crate::Message::RolloutPropose) /
/// [`ActivateVersion`](crate::Message::ActivateVersion)): binds the
/// model version id and the nonce. Staging or activating codec weights
/// is the most privileged operation a gateway accepts, so it reuses the
/// registration-grade construction under its own domain tag.
#[must_use]
pub fn rollout_mac(secret: u64, version_id: u64, nonce: u64) -> u64 {
    let mut msg = [0u8; 17];
    msg[0] = 0x03; // domain-separates rollout from Hello/Register
    msg[1..9].copy_from_slice(&version_id.to_le_bytes());
    msg[9..17].copy_from_slice(&nonce.to_le_bytes());
    mac64(secret, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic_and_key_dependent() {
        assert_eq!(hello_mac(7, 1, 2), hello_mac(7, 1, 2));
        assert_ne!(hello_mac(7, 1, 2), hello_mac(8, 1, 2));
        assert_ne!(hello_mac(7, 1, 2), hello_mac(7, 2, 2));
        assert_ne!(hello_mac(7, 1, 2), hello_mac(7, 1, 3));
    }

    #[test]
    fn hello_and_register_domains_are_separated() {
        // Same (id, nonce) under the two constructions must not collide:
        // a captured Hello tag is useless as a Register credential.
        assert_ne!(hello_mac(7, 1, 2), register_mac(7, 1, "", 2));
        assert_ne!(hello_mac(7, 1, 2), rollout_mac(7, 1, 2));
        assert_ne!(register_mac(7, 1, "", 2), rollout_mac(7, 1, 2));
    }

    #[test]
    fn single_bit_flips_never_authenticate() {
        let secret = 0xDEAD_BEEF_CAFE_F00D;
        let (client, nonce) = (42, 777);
        let tag = hello_mac(secret, client, nonce);
        for bit in 0..64 {
            assert_ne!(hello_mac(secret, client ^ (1 << bit), nonce), tag);
            assert_ne!(hello_mac(secret, client, nonce ^ (1 << bit)), tag);
        }
    }
}
