//! Property tests over the wire protocol: arbitrary messages round-trip
//! bit-identically, and every malformed frame is rejected with a typed
//! [`WireError`] — never a panic, never a silent misparse.

use orco_serve::protocol::{Message, HEADER_LEN};
use orco_serve::{
    ErrorCode, GatewayEntry, GatewayStats, ModelVersion, ShardRow, StatsSnapshot, WireError,
    MAX_LABEL,
};
use orco_tensor::Matrix;
use proptest::prelude::*;
use proptest::BoxedStrategy;

/// Matrices whose element *bit patterns* span the full u32 range —
/// including NaNs, infinities, and denormals — because the wire contract
/// is bit-identity, not numeric equality.
fn any_bits_matrix() -> BoxedStrategy<Matrix> {
    (0usize..4, 0usize..6)
        .prop_flat_map(|(r, c)| {
            prop::collection::vec(0u32..=u32::MAX, r * c).prop_map(move |bits| {
                Matrix::from_vec(r, c, bits.into_iter().map(f32::from_bits).collect())
                    .expect("length matches")
            })
        })
        .boxed()
}

/// Matrices of ordinary finite floats, for value-level equality checks.
fn finite_matrix() -> BoxedStrategy<Matrix> {
    (1usize..4, 1usize..6)
        .prop_flat_map(|(r, c)| {
            prop::collection::vec(-1.0e3f32..1.0e3, r * c)
                .prop_map(move |data| Matrix::from_vec(r, c, data).expect("length matches"))
        })
        .boxed()
}

/// Latency percentiles over the full u64 bit space — NaNs, infinities,
/// and denormals included — because the wire contract is bit-identity.
fn any_f64_bits() -> BoxedStrategy<f64> {
    any::<u64>().prop_map(f64::from_bits).boxed()
}

fn any_shard_rows() -> BoxedStrategy<Vec<ShardRow>> {
    prop::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(frames_in, frames_out, batches)| {
            ShardRow { frames_in, frames_out, batches }
        }),
        0..8,
    )
    .boxed()
}

fn any_snapshot() -> BoxedStrategy<StatsSnapshot> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (any_f64_bits(), any_f64_bits(), any_shard_rows()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(|(a, b, c, d, e, f)| StatsSnapshot {
            shards: d.2.len() as u16,
            frames_in: a.0,
            frames_out: a.1,
            bytes_in: a.2,
            bytes_out: a.3,
            pushes: a.4,
            pulls: b.0,
            busy_rejections: b.1,
            batches: b.2,
            size_flushes: e.0,
            deadline_flushes: b.3,
            pull_flushes: e.1,
            drain_flushes: e.2,
            swap_flushes: f.0,
            max_batch_rows: b.4,
            queue_depth: c.0,
            stored_codes: c.1,
            batch_latency_p50_s: d.0,
            batch_latency_p99_s: d.1,
            streamed_rows: e.3,
            redirects: e.4,
            active_version: f.1,
            drift_trips: f.2,
            swaps: f.3,
            rollbacks: f.4,
            drift: f.5,
            per_shard: d.2,
        })
        .boxed()
}

fn any_gateway_stats() -> BoxedStrategy<Vec<GatewayStats>> {
    prop::collection::vec(
        (any::<u64>(), 0u8..2, any_snapshot()).prop_map(|(id, alive, snapshot)| GatewayStats {
            id,
            alive: alive == 1,
            snapshot,
        }),
        0..4,
    )
    .boxed()
}

/// Gateway addresses: short printable ASCII, within `MAX_ADDR`.
fn any_addr() -> BoxedStrategy<String> {
    prop::collection::vec(0x20u8..=0x7e, 0..32)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii is utf-8"))
        .boxed()
}

fn any_members() -> BoxedStrategy<Vec<GatewayEntry>> {
    prop::collection::vec(
        (any::<u64>(), any_addr()).prop_map(|(id, addr)| GatewayEntry { id, addr }),
        0..6,
    )
    .boxed()
}

/// Model versions: any id/dims, labels up to the wire's `MAX_LABEL`.
fn any_model_version() -> BoxedStrategy<ModelVersion> {
    (
        any::<u64>(),
        prop::collection::vec(0x20u8..=0x7e, 0..MAX_LABEL),
        0u32..=u32::MAX,
        0u32..=u32::MAX,
    )
        .prop_map(|(id, bytes, frame_dim, code_dim)| ModelVersion {
            id,
            label: String::from_utf8(bytes).expect("printable ascii is utf-8"),
            frame_dim,
            code_dim,
        })
        .boxed()
}

/// `Option<ModelVersion>` via a presence flag (the proptest shim has no
/// `prop::option` module).
fn maybe_model_version() -> BoxedStrategy<Option<ModelVersion>> {
    (any::<bool>(), any_model_version()).prop_map(|(some, v)| some.then_some(v)).boxed()
}

fn any_message() -> BoxedStrategy<Message> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(client_id, nonce, mac)| Message::Hello { client_id, nonce, mac }),
        (0u16..=u16::MAX, 0u16..=u16::MAX, 0u32..=u32::MAX, 0u32..=u32::MAX, any::<u64>())
            .prop_map(|(version, shards, frame_dim, code_dim, active_version)| {
                Message::HelloAck { version, shards, frame_dim, code_dim, active_version }
            }),
        (any::<u64>(), any::<u64>(), any_bits_matrix()).prop_map(|(cluster_id, trace, frames)| {
            Message::PushFrames { cluster_id, trace, frames }
        }),
        (0u32..=u32::MAX).prop_map(|accepted| Message::PushAck { accepted }),
        (0u32..=u32::MAX, 0u32..=u32::MAX)
            .prop_map(|(queued, capacity)| Message::Busy { queued, capacity }),
        (any::<u64>(), 0u32..=u32::MAX, any::<u64>()).prop_map(
            |(cluster_id, max_frames, trace)| Message::PullDecoded {
                cluster_id,
                max_frames,
                trace
            }
        ),
        (any::<u64>(), any::<u64>(), any_bits_matrix()).prop_map(
            |(cluster_id, version, frames)| Message::Decoded { cluster_id, version, frames }
        ),
        Just(Message::StatsRequest),
        any_snapshot().prop_map(Message::StatsReply),
        Just(Message::Shutdown),
        Just(Message::ShutdownAck),
        (0usize..5, prop::collection::vec(0u8..=127, 0..24)).prop_map(|(code, bytes)| {
            let code = [
                ErrorCode::BadRequest,
                ErrorCode::Shape,
                ErrorCode::ShuttingDown,
                ErrorCode::Internal,
                ErrorCode::Unauthorized,
            ][code];
            let detail = String::from_utf8(bytes).expect("ascii is utf-8");
            Message::ErrorReply { code, detail }
        }),
        (any::<u64>(), any::<u64>(), any_addr())
            .prop_map(|(cluster_id, epoch, addr)| Message::Redirect { cluster_id, epoch, addr }),
        Just(Message::DirectoryQuery),
        (any::<u64>(), any_members())
            .prop_map(|(epoch, members)| Message::DirectoryReply { epoch, members }),
        (any::<u64>(), any_addr(), any::<u64>(), any::<u64>()).prop_map(
            |(gateway_id, addr, nonce, mac)| Message::Register { gateway_id, addr, nonce, mac }
        ),
        (any::<u64>(), any_members())
            .prop_map(|(epoch, members)| Message::RegisterAck { epoch, members }),
        (any::<u64>(), any::<u64>()).prop_map(|(gateway_id, epoch)| Message::Heartbeat {
            gateway_id,
            epoch,
            stats: None
        }),
        (any::<u64>(), any::<u64>(), any_snapshot()).prop_map(|(gateway_id, epoch, snap)| {
            Message::Heartbeat { gateway_id, epoch, stats: Some(snap) }
        }),
        (any::<u64>(), any_members())
            .prop_map(|(epoch, members)| Message::HeartbeatAck { epoch, members }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(cluster_id, trace)| Message::Subscribe { cluster_id, trace }),
        (any::<u64>(), 0u32..=u32::MAX)
            .prop_map(|(cluster_id, backlog)| Message::SubscribeAck { cluster_id, backlog }),
        any::<u64>().prop_map(|cluster_id| Message::Unsubscribe { cluster_id }),
        (any::<u64>(), any::<u64>(), any_bits_matrix()).prop_map(
            |(cluster_id, version, frames)| Message::StreamFrames { cluster_id, version, frames }
        ),
        Just(Message::MetricsRequest),
        any_addr().prop_map(|text| Message::MetricsReply { text }),
        Just(Message::FleetStatsQuery),
        (any::<u64>(), any::<u64>(), any_gateway_stats()).prop_map(
            |(epoch, evictions, gateways)| Message::FleetStatsReply { epoch, evictions, gateways }
        ),
        (any_model_version(), any_bits_matrix(), any_bits_matrix(), any::<u64>(), any::<u64>())
            .prop_map(|(version, weight, bias, nonce, mac)| Message::RolloutPropose {
                version,
                weight,
                bias,
                nonce,
                mac
            }),
        (any::<u64>(), any::<bool>(), any_addr()).prop_map(|(version_id, accepted, detail)| {
            Message::RolloutAck { version_id, accepted, detail }
        }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(version_id, nonce, mac)| {
            Message::ActivateVersion { version_id, nonce, mac }
        }),
        Just(Message::VersionQuery),
        (
            any_model_version(),
            maybe_model_version(),
            maybe_model_version(),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(|(active, staged, prior, rollbacks, drift)| Message::VersionReply {
                active,
                staged,
                prior,
                rollbacks,
                drift
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes, for every
    /// message kind and any f32 bit pattern (NaNs included).
    #[test]
    fn roundtrip_is_bit_identical(msg in any_message()) {
        let frame = msg.encode();
        let decoded = Message::decode(&frame).expect("own encoding decodes");
        prop_assert_eq!(decoded.kind(), msg.kind());
        prop_assert_eq!(decoded.encode(), frame, "re-encoding changed bytes");
    }

    /// For finite payloads the decoded *value* equals the original too.
    #[test]
    fn roundtrip_preserves_values(cluster_id in any::<u64>(), trace in any::<u64>(), frames in finite_matrix()) {
        let msg = Message::PushFrames { cluster_id, trace, frames: frames.clone() };
        let decoded = Message::decode(&msg.encode()).expect("own encoding decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// A `StatsSnapshot` survives the wire over *any* f64 bit pattern in
    /// its latency percentiles — NaNs and infinities included — compared
    /// at the bit level, with the per-shard rows intact.
    #[test]
    fn stats_snapshot_roundtrips_any_f64_bits(snap in any_snapshot()) {
        let frame = Message::StatsReply(snap.clone()).encode();
        let decoded = Message::decode(&frame).expect("own encoding decodes");
        match decoded {
            Message::StatsReply(got) => {
                prop_assert_eq!(
                    got.batch_latency_p50_s.to_bits(),
                    snap.batch_latency_p50_s.to_bits(),
                    "p50 bits changed on the wire"
                );
                prop_assert_eq!(
                    got.batch_latency_p99_s.to_bits(),
                    snap.batch_latency_p99_s.to_bits(),
                    "p99 bits changed on the wire"
                );
                prop_assert_eq!(got.per_shard, snap.per_shard);
                prop_assert_eq!(got.shards, snap.shards);
            }
            other => prop_assert!(false, "decoded to {:?}", other.kind()),
        }
    }

    /// Every strict prefix of a valid frame is rejected with a typed
    /// error — truncation can never misparse.
    #[test]
    fn every_truncation_rejected(msg in any_message(), frac in 0.0f64..1.0) {
        let frame = msg.encode();
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assume!(cut < frame.len());
        let err = Message::decode(&frame[..cut]).expect_err("truncated frame must not decode");
        prop_assert!(
            matches!(
                err,
                WireError::Truncated { .. } | WireError::LengthMismatch { .. }
            ),
            "unexpected error for cut at {}: {:?}", cut, err
        );
    }

    /// Flipping any single header byte is caught by a typed error or, at
    /// worst (a corrupted length that still fits), a clean parse of the
    /// same kind — never a panic.
    #[test]
    fn corrupt_headers_never_panic(msg in any_message(), byte in 0usize..HEADER_LEN, bit in 0u8..8) {
        let mut frame = msg.encode();
        frame[byte] ^= 1 << bit;
        let _ = Message::decode(&frame); // must return, not panic
    }

    /// Appending garbage after a frame is a length mismatch.
    #[test]
    fn trailing_garbage_rejected(msg in any_message(), extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut frame = msg.encode();
        frame.extend_from_slice(&extra);
        let err = Message::decode(&frame).expect_err("trailing bytes must not decode");
        prop_assert!(matches!(err, WireError::LengthMismatch { .. }), "got {:?}", err);
    }
}
