//! The serving layer's liveness contract, property-tested: **every
//! `PushAck`'d frame becomes pullable within `batch_deadline`** of
//! virtual (or real) time passing — under arbitrary interleavings of
//! pushes and pulls, on all three transports (in-process loopback,
//! DES-impaired links, real TCP).
//!
//! This is the contract the deadline-starvation bug violated: a batch
//! parked on a shard no later request touched was stuck forever. The
//! sweep-on-dispatch/advance fix makes the bound hold regardless of
//! which shard subsequent traffic lands on.

use std::sync::Arc;
use std::time::Duration;

use orco_serve::{
    Client, Clock, Connection, DesConfig, DesNet, DesTransport, Gateway, GatewayConfig, Loopback,
    PushOutcome, Tcp, TcpServer,
};
use orco_sim::LinkParams;
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, GradCompression, OrcoConfig};
use proptest::prelude::*;
use proptest::BoxedStrategy;

const DEADLINE: Duration = Duration::from_millis(5);
const CLUSTERS: [u64; 4] = [3, 19, 42, 1001];
const DIM: usize = 32;

fn codec_config() -> OrcoConfig {
    OrcoConfig {
        input_dim: DIM,
        latent_dim: 8,
        decoder_layers: 1,
        noise_variance: 0.1,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-2,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: GradCompression::default(),
        seed: 11,
    }
}

fn gateway(clock: Clock) -> Arc<Gateway> {
    let cfg = codec_config();
    Arc::new(
        Gateway::new(
            GatewayConfig {
                shards: 2,
                batch_max_frames: 8,
                batch_deadline: DEADLINE,
                queue_capacity: 4096,
                auth_secret: None,
                trace_capacity: 4096,
                ..GatewayConfig::default()
            },
            clock,
            move |_| {
                Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid config")) as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    )
}

/// One step of a schedule: push `rows` frames to a cluster, or pull a
/// chunk from it.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push { cluster: usize, rows: usize },
    Pull { cluster: usize },
}

fn any_schedule() -> BoxedStrategy<Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..CLUSTERS.len(), 1usize..5)
                .prop_map(|(cluster, rows)| Op::Push { cluster, rows }),
            (0usize..CLUSTERS.len()).prop_map(|cluster| Op::Pull { cluster }),
        ],
        1..40,
    )
    .boxed()
}

/// Runs `schedule` through a client, then advances virtual time past the
/// deadline and asserts every acked frame is pullable.
fn assert_liveness<C: Connection>(
    gw: &Gateway,
    client: &mut Client<C>,
    schedule: &[Op],
    seed: u64,
) {
    let mut rng = OrcoRng::from_seed_u64(seed);
    let mut acked = [0usize; CLUSTERS.len()];
    let mut pulled = [0usize; CLUSTERS.len()];
    for op in schedule {
        match *op {
            Op::Push { cluster, rows } => {
                let frames = Matrix::from_fn(rows, DIM, |_, _| rng.uniform(0.0, 1.0));
                match client.push(CLUSTERS[cluster], frames.as_view()).expect("push") {
                    PushOutcome::Accepted(n) => acked[cluster] += n as usize,
                    PushOutcome::Busy { .. } => {} // nothing admitted, nothing owed
                    PushOutcome::Redirected { .. } => unreachable!("no fleet view installed"),
                }
            }
            Op::Pull { cluster } => {
                pulled[cluster] += client.pull(CLUSTERS[cluster], 3).expect("pull").rows();
            }
        }
    }

    // Let the deadline pass with NO further traffic, then sweep: every
    // acked-but-undelivered frame must now be stored and pullable.
    gw.advance_clock(DEADLINE + Duration::from_millis(1));
    for (i, &cluster) in CLUSTERS.iter().enumerate() {
        while pulled[i] < acked[i] {
            let got = client.pull(cluster, 64).expect("pull").rows();
            prop_assert!(
                got > 0,
                "cluster {cluster}: {} acked frames never became pullable (deadline \
                 starvation); schedule = {schedule:?}",
                acked[i] - pulled[i]
            );
            pulled[i] += got;
        }
        prop_assert_eq!(
            pulled[i],
            acked[i],
            "cluster {} delivered more rows than were acked (duplication)",
            cluster
        );
    }
    let snap = gw.stats();
    prop_assert_eq!(snap.queue_depth, 0);
    prop_assert_eq!(snap.stored_codes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Liveness on the in-process loopback transport (virtual clock).
    #[test]
    fn acked_frames_pullable_within_deadline_loopback(schedule in any_schedule(), seed in any::<u64>()) {
        let gw = gateway(Clock::manual(Duration::from_micros(100)));
        let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
        assert_liveness(&gw, &mut client, &schedule, seed);
    }

    /// Liveness over DES-impaired links: 10% loss, jittered delays. The
    /// ARQ masks the impairments; the deadline bound must survive them.
    #[test]
    fn acked_frames_pullable_within_deadline_des(schedule in any_schedule(), seed in any::<u64>()) {
        let gw = gateway(Clock::manual(Duration::ZERO));
        let net = DesNet::new(
            Arc::clone(&gw),
            DesConfig {
                link: LinkParams { delay_s: 0.001, jitter_s: 0.002, loss_prob: 0.1 },
                ..DesConfig::default()
            },
            seed,
        );
        let mut client = Client::connect(&DesTransport::new(net)).expect("connects");
        assert_liveness(&gw, &mut client, &schedule, seed);
    }
}

/// The same bound over real TCP with a real clock: frames parked below
/// the size threshold are flushed by the deadline-flusher threads, so a
/// pull after `deadline` (plus scheduling slack) sees them with no
/// further pushes anywhere.
#[test]
fn acked_frames_pullable_within_deadline_tcp() {
    let gw = gateway(Clock::real());
    let server = TcpServer::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("binds");
    let transport = Tcp::new(server.local_addr().to_string());
    let mut client = Client::connect(&transport).expect("connects");
    client.hello(1).expect("hello");

    let mut rng = OrcoRng::from_seed_u64(7);
    for &cluster in &CLUSTERS {
        let frames = Matrix::from_fn(3, DIM, |_, _| rng.uniform(0.0, 1.0));
        assert_eq!(client.push(cluster, frames.as_view()).expect("push"), PushOutcome::Accepted(3));
    }

    // 3 rows < batch_max_frames = 8: only the deadline can flush these.
    // Generous slack over the 5 ms deadline for CI scheduling noise.
    #[allow(clippy::disallowed_methods)]
    // orco-lint: allow(wall-clock, reason = "patience timer bounding a real TCP server; this test runs outside the DES by design")
    let patience = std::time::Instant::now();
    for &cluster in &CLUSTERS {
        let mut got = 0;
        while got < 3 {
            got += client.pull(cluster, 8).expect("pull").rows();
            if got < 3 {
                assert!(
                    patience.elapsed() < Duration::from_secs(10),
                    "cluster {cluster}: frames not flushed within 10s of a 5ms deadline"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert_eq!(got, 3);
    }
    let mut control = Client::connect(&transport).expect("control");
    control.shutdown().expect("shutdown acked");
    server.join();
}
