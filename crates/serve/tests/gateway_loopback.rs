//! End-to-end loopback gateway tests: the full wire path (encode →
//! header validation → dispatch → micro-batch → codec → reply encode)
//! exercised deterministically in-process.
//!
//! The two contracts pinned here are the serving layer's equivalents of
//! the codec batch/per-frame bit-identity contract:
//!
//! 1. **Transparency** — N clients × M frames through the sharded
//!    micro-batcher decode to output bit-identical to one direct
//!    `encode_batch` + `decode_batch` call on the same codec.
//! 2. **Determinism** — the same message schedule (same seeds, same
//!    virtual clock) produces a byte-identical `Stats` reply and
//!    byte-identical decoded frames whether the tensor kernels run on 1
//!    thread or many (`ORCO_THREADS` must not leak into served bytes).

use std::sync::Arc;
use std::time::Duration;

use orco_datasets::DatasetKind;
use orco_serve::{Client, Clock, Gateway, GatewayConfig, Loopback, Message, PushOutcome};
use orco_tensor::{parallel, Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

fn ae_config() -> OrcoConfig {
    OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16).with_seed(11)
}

fn make_codec() -> Box<dyn Codec> {
    Box::new(AsymmetricAutoencoder::new(&ae_config()).expect("valid config"))
}

fn gateway(cfg: GatewayConfig) -> Arc<Gateway> {
    Arc::new(
        Gateway::new(cfg, Clock::manual(Duration::from_micros(100)), |_| make_codec())
            .expect("valid gateway"),
    )
}

/// Random frames for one cluster, deterministic in `seed`.
fn cluster_frames(rows: usize, seed: u64) -> Matrix {
    let mut rng = OrcoRng::from_seed_u64(seed);
    Matrix::from_fn(rows, 784, |_, _| rng.uniform(0.0, 1.0))
}

/// Drives a fixed interleaved schedule — 3 clients, 5 clusters, pushes
/// of varying size — and returns the decoded frames per cluster plus the
/// final encoded stats reply.
fn run_schedule(cfg: GatewayConfig) -> (Vec<(u64, Matrix)>, Vec<u8>) {
    let gw = gateway(cfg);
    let transport = Loopback::new(Arc::clone(&gw));
    let mut clients: Vec<_> = (0..3)
        .map(|i| {
            let mut c = Client::connect(&transport).expect("loopback connects");
            c.hello(i).expect("hello");
            c
        })
        .collect();

    let clusters: [u64; 5] = [3, 19, 42, 77, 1001];
    // Interleave pushes: client (k mod 3) pushes a slice of cluster
    // (k mod 5)'s stream, sizes cycling 1..=4.
    let mut offsets = [0usize; 5];
    let frames: Vec<Matrix> = (0..5).map(|i| cluster_frames(30, 0xF00D + clusters[i])).collect();
    let mut k = 0usize;
    while offsets.iter().any(|&o| o < 30) {
        let ci = k % 5;
        let rows = 1 + k % 4;
        if offsets[ci] < 30 {
            let hi = (offsets[ci] + rows).min(30);
            let outcome = clients[k % 3]
                .push(clusters[ci], frames[ci].view_rows(offsets[ci]..hi))
                .expect("push accepted");
            assert_eq!(outcome, PushOutcome::Accepted((hi - offsets[ci]) as u32));
            offsets[ci] = hi;
        }
        k += 1;
    }

    // Drain every cluster in chunks, preserving order.
    let mut decoded = Vec::new();
    for (i, &cluster) in clusters.iter().enumerate() {
        let mut got = Matrix::zeros(0, 784);
        loop {
            let chunk = clients[i % 3].pull(cluster, 7).expect("pull");
            if chunk.rows() == 0 {
                break;
            }
            let mut stacked = Matrix::zeros(got.rows() + chunk.rows(), 784);
            for r in 0..got.rows() {
                stacked.row_mut(r).copy_from_slice(got.row(r));
            }
            for r in 0..chunk.rows() {
                stacked.row_mut(got.rows() + r).copy_from_slice(chunk.row(r));
            }
            got = stacked;
        }
        decoded.push((cluster, got));
    }

    // The stats reply as raw bytes — the determinism contract is on the
    // wire image, not just the struct.
    let stats_frame = {
        let gw_stats = gw.stats();
        Message::StatsReply(gw_stats).encode()
    };
    (decoded, stats_frame)
}

/// Contract 1: the sharded, micro-batched gateway is *transparent* — its
/// decoded output is bit-identical to direct batch calls on the codec.
#[test]
fn gateway_output_bit_identical_to_direct_batch_calls() {
    let cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 7, // odd on purpose: flushes straddle pushes
        batch_deadline: Duration::from_secs(3600),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let (decoded, _) = run_schedule(cfg);

    for (cluster, via_gateway) in decoded {
        let frames = cluster_frames(30, 0xF00D + cluster);
        let mut reference = make_codec();
        let mut codes = Matrix::zeros(0, 0);
        let mut recon = Matrix::zeros(0, 0);
        reference.encode_batch(frames.as_view(), &mut codes).expect("shapes fit");
        reference.decode_batch(codes.as_view(), &mut recon).expect("shapes fit");
        assert_eq!(
            via_gateway, recon,
            "cluster {cluster}: gateway output diverged from direct encode/decode"
        );
    }
}

/// Contract 2: same schedule ⇒ byte-identical stats reply and decoded
/// frames at any tensor-kernel thread budget.
#[test]
fn gateway_is_deterministic_across_thread_budgets() {
    let cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 8,
        batch_deadline: Duration::from_millis(2),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let (decoded_1, stats_1) = parallel::with_thread_budget(1, || run_schedule(cfg));
    let (decoded_4, stats_4) = parallel::with_thread_budget(4, || run_schedule(cfg));
    assert_eq!(stats_1, stats_4, "Stats reply bytes must not depend on ORCO_THREADS");
    assert_eq!(decoded_1, decoded_4, "decoded frames must not depend on ORCO_THREADS");
    // And the schedule actually flushed more than once per cluster.
    let reply = Message::decode(&stats_1).expect("stats frame decodes");
    let Message::StatsReply(snap) = reply else { panic!("not a stats reply") };
    assert!(snap.batches >= 5, "schedule too small to exercise batching: {snap:?}");
    assert_eq!(snap.frames_in, 150);
    assert_eq!(snap.frames_out, 150);
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.stored_codes, 0);
}

/// Backpressure: a full shard answers `Busy` without buffering; draining
/// frees the budget and the push succeeds.
#[test]
fn busy_backpressure_and_drain() {
    let cfg = GatewayConfig {
        shards: 1,
        batch_max_frames: 4,
        batch_deadline: Duration::from_secs(3600),
        queue_capacity: 8,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(6, 1);

    assert_eq!(client.push(5, frames.as_view()).unwrap(), PushOutcome::Accepted(6));
    match client.push(5, frames.as_view()).unwrap() {
        PushOutcome::Busy { queued, capacity } => {
            assert_eq!(capacity, 8);
            assert_eq!(queued, 6);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(gw.stats().busy_rejections, 1);

    // Drain, then the same push is accepted.
    assert_eq!(client.pull(5, 32).unwrap().rows(), 6);
    assert_eq!(client.push(5, frames.as_view()).unwrap(), PushOutcome::Accepted(6));
}

/// A push wider or narrower than the codec's frame draws a typed
/// rejection, not a panic or a dropped connection.
#[test]
fn wrong_frame_width_rejected() {
    let gw = gateway(GatewayConfig::default());
    let mut client = Client::connect(&Loopback::new(gw)).expect("connects");
    let bad = Matrix::zeros(3, 42);
    let err = client.push(9, bad.as_view()).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("784") && text.contains("42"), "unhelpful error: {text}");
}

/// The batch deadline flushes a lingering small batch (virtual clock;
/// the next dispatch to the shard performs the overdue flush).
#[test]
fn deadline_flushes_small_batches() {
    let cfg = GatewayConfig {
        shards: 1,
        batch_max_frames: 1000,
        batch_deadline: Duration::from_millis(5),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(3, 2);
    assert_eq!(client.push(1, frames.as_view()).unwrap(), PushOutcome::Accepted(3));
    assert_eq!(gw.stats().batches, 0, "nothing due yet");

    // Let the virtual clock pass the deadline, then touch the shard.
    gw.clock().advance(Duration::from_millis(10));
    assert_eq!(client.push(1, frames.view_rows(0..1)).unwrap(), PushOutcome::Accepted(1));
    let snap = gw.stats();
    assert_eq!(snap.deadline_flushes, 1, "overdue batch must flush before the new push joins");
    assert_eq!(snap.max_batch_rows, 3);
}

/// Regression (deadline starvation): a pending batch on shard A must
/// deadline-flush when traffic dispatches to shard B — the sweep covers
/// ALL shards, not just the one the request lands on. Before the fix, an
/// idle shard's batch waited for the next request that happened to hash
/// onto it, which under a virtual clock may never come.
#[test]
fn deadline_flush_reaches_idle_shards() {
    let cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 1000,
        batch_deadline: Duration::from_millis(5),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    // Two clusters pinned to different shards.
    let a = (0..).find(|&c| gw.shard_of(c) == 0).expect("some cluster on shard 0");
    let b = (0..).find(|&c| gw.shard_of(c) == 1).expect("some cluster on shard 1");

    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(3, 4);
    assert_eq!(client.push(a, frames.as_view()).unwrap(), PushOutcome::Accepted(3));
    assert_eq!(gw.stats().batches, 0, "nothing due yet");

    gw.clock().advance(Duration::from_millis(10));
    // Traffic for the OTHER shard must still flush shard 0's overdue batch.
    assert_eq!(client.push(b, frames.view_rows(0..1)).unwrap(), PushOutcome::Accepted(1));
    let snap = gw.stats();
    assert_eq!(snap.deadline_flushes, 1, "idle shard's batch starved past its deadline");
    assert_eq!(snap.max_batch_rows, 3);
}

/// `advance_clock` flushes overdue batches with no traffic at all — the
/// hook an external scheduler (the DES transport) drives time with.
#[test]
fn advance_clock_sweeps_deadlines_without_traffic() {
    let cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 1000,
        batch_deadline: Duration::from_millis(5),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(2, 5);
    assert_eq!(client.push(77, frames.as_view()).unwrap(), PushOutcome::Accepted(2));
    assert_eq!(gw.stats().batches, 0);

    gw.advance_clock(Duration::from_millis(6));
    let snap = gw.stats();
    assert_eq!(snap.batches, 1, "advance_clock must flush the overdue batch by itself");
    assert_eq!(snap.deadline_flushes, 1);
    assert_eq!(snap.queue_depth, 0);
}

/// Flush reasons are accounted separately on the wire: the shutdown
/// drain must not masquerade as a size flush (it used to), and a
/// read-your-writes pull flush is its own bucket.
#[test]
fn flush_reasons_are_distinguished() {
    let cfg = GatewayConfig {
        shards: 1,
        batch_max_frames: 4,
        batch_deadline: Duration::from_secs(3600),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(7, 6);

    // 3 rows stay below the size threshold; the pull flushes them
    // (read-your-writes).
    assert_eq!(client.push(9, frames.view_rows(0..3)).unwrap(), PushOutcome::Accepted(3));
    assert_eq!(client.pull(9, 32).unwrap().rows(), 3);
    // 4 rows hit batch_max_frames -> size flush on the pushing thread.
    assert_eq!(client.push(9, frames.view_rows(0..4)).unwrap(), PushOutcome::Accepted(4));
    // 2 pending rows, drained by shutdown.
    assert_eq!(client.push(9, frames.view_rows(0..2)).unwrap(), PushOutcome::Accepted(2));
    client.shutdown().expect("shutdown acked");

    let snap = gw.stats();
    assert_eq!(
        (snap.size_flushes, snap.deadline_flushes, snap.pull_flushes, snap.drain_flushes),
        (1, 0, 1, 1),
        "flush reasons misattributed: {snap:?}"
    );
    assert_eq!(snap.batches, 3);
}

/// Shutdown flushes pending work, rejects new pushes, and still serves
/// pulls of already-encoded data.
#[test]
fn shutdown_drains_and_rejects() {
    let cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 100,
        batch_deadline: Duration::from_secs(3600),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(5, 3);
    assert_eq!(client.push(2, frames.as_view()).unwrap(), PushOutcome::Accepted(5));
    client.shutdown().expect("shutdown acked");
    assert!(gw.is_shutting_down());
    assert_eq!(gw.stats().batches, 1, "shutdown must flush pending frames");

    let err = client.push(2, frames.as_view()).unwrap_err();
    assert!(err.to_string().contains("shutting down"), "got: {err}");
    assert_eq!(client.pull(2, 32).unwrap().rows(), 5, "stored codes stay pullable");
}

/// Per-shard metrics expose real skew: a hot cluster's shard carries the
/// rows while the others stay at zero, in both the stats snapshot and
/// the text exposition.
#[test]
fn per_shard_metrics_expose_hot_shard_skew() {
    let cfg = GatewayConfig {
        shards: 4,
        batch_max_frames: 8,
        batch_deadline: Duration::from_secs(3600),
        queue_capacity: 4096,
        auth_secret: None,
        trace_capacity: 4096,
        ..GatewayConfig::default()
    };
    let gw = gateway(cfg);
    let hot = 7u64;
    let hot_shard = gw.shard_of(hot);
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
    let frames = cluster_frames(24, 0xBEEF);
    for lo in (0..24).step_by(8) {
        let outcome = client.push(hot, frames.view_rows(lo..lo + 8)).expect("push");
        assert_eq!(outcome, PushOutcome::Accepted(8));
    }
    assert_eq!(client.pull(hot, 64).expect("pull").rows(), 24);

    let snap = gw.stats();
    assert_eq!(snap.per_shard.len(), 4);
    assert_eq!(snap.per_shard[hot_shard].frames_in, 24);
    assert_eq!(snap.per_shard[hot_shard].frames_out, 24);
    assert!(snap.per_shard[hot_shard].batches >= 3, "3 size flushes expected: {snap:?}");
    for (i, row) in snap.per_shard.iter().enumerate() {
        if i != hot_shard {
            assert_eq!(
                (row.frames_in, row.frames_out, row.batches),
                (0, 0, 0),
                "idle shard {i} claims traffic"
            );
        }
    }

    // The text exposition carries the same skew, one labeled series per
    // shard.
    let text = gw.metrics_text();
    assert!(
        text.contains(&format!("orco_shard_frames_in_total{{shard=\"{hot_shard}\"}} 24")),
        "hot shard series missing:\n{text}"
    );
    for i in 0..4 {
        if i != hot_shard {
            assert!(
                text.contains(&format!("orco_shard_frames_in_total{{shard=\"{i}\"}} 0")),
                "idle shard {i} series missing:\n{text}"
            );
        }
    }
    // The flush-latency distribution is exposed in full, not just as
    // percentiles.
    assert!(text.contains("orco_flush_latency_ns_count 3"), "histogram missing:\n{text}");
}

/// The trace pillar's determinism contract on the loopback path: the
/// same schedule run twice exports byte-identical traces, and every
/// delivered frame closes exactly one complete push → enqueue → flush →
/// store → pull chain.
#[test]
fn trace_export_is_deterministic_and_chains_are_complete() {
    let run = || {
        let cfg = GatewayConfig {
            shards: 2,
            batch_max_frames: 4,
            batch_deadline: Duration::from_secs(3600),
            queue_capacity: 4096,
            auth_secret: None,
            trace_capacity: 4096,
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("connects");
        client.hello(9).expect("hello");
        let frames = cluster_frames(12, 0xAB);
        for lo in (0..12).step_by(3) {
            let cluster = 40 + (lo as u64 / 3) % 2;
            let outcome = client.push(cluster, frames.view_rows(lo..lo + 3)).expect("push");
            assert_eq!(outcome, PushOutcome::Accepted(3));
        }
        let mut got = 0;
        while got < 12 {
            let chunk = client.pull(40, 32).expect("pull").rows()
                + client.pull(41, 32).expect("pull").rows();
            assert!(chunk > 0, "pulls stalled at {got}/12 rows");
            got += chunk;
        }

        let summary = orco_obs::verify_chains(gw.tracer().spans().as_slice())
            .expect("span chains conserve rows");
        assert_eq!(summary.pushed_rows, 12, "every accepted row opens a chain");
        assert_eq!(summary.delivered_rows, 12, "every delivered row closes its chain");
        assert_eq!(gw.tracer().dropped(), 0, "ring sized for the schedule");
        gw.trace_export()
    };
    let a = run();
    let b = run();
    assert!(a.starts_with("orco-trace v1"), "unexpected export header: {a}");
    assert!(a.contains("push") && a.contains("store") && a.contains("pull"), "spans missing: {a}");
    assert_eq!(a, b, "trace exports diverged across identical runs");
}
