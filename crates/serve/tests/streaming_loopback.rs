//! Streaming-pull integration tests: a subscribed connection receives
//! decoded batches pushed through its outbox (no polling), the backlog
//! stored at subscribe time is streamed immediately, streamed bytes are
//! bit-identical to what a pull would have returned, and unsubscribing
//! stops the flow.

use std::sync::Arc;
use std::time::Duration;

use orco_serve::{Client, Clock, Gateway, GatewayConfig, Loopback, PushOutcome};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

const CLUSTER: u64 = 42;
const DIM: usize = 784;

fn gateway() -> Arc<Gateway> {
    let cfg = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_seed(11);
    Arc::new(
        Gateway::new(
            GatewayConfig { batch_max_frames: 4, ..GatewayConfig::default() },
            Clock::manual(Duration::from_micros(100)),
            move |_| {
                Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid config")) as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    )
}

fn frames(rows: usize, seed: u64) -> Matrix {
    let mut rng = OrcoRng::from_seed_u64(seed);
    Matrix::from_fn(rows, DIM, |_, _| rng.uniform(0.0, 1.0))
}

fn recv_rows(client: &mut Client<impl orco_serve::Connection>, want: usize) -> Matrix {
    let mut got = Matrix::zeros(0, DIM);
    while got.rows() < want {
        let (cluster, chunk) = client
            .recv_streamed(Duration::from_secs(5))
            .expect("stream healthy")
            .expect("a delivery arrives in time");
        assert_eq!(cluster, CLUSTER);
        let mut stacked = Matrix::zeros(got.rows() + chunk.rows(), DIM);
        for r in 0..got.rows() {
            stacked.row_mut(r).copy_from_slice(got.row(r));
        }
        for r in 0..chunk.rows() {
            stacked.row_mut(got.rows() + r).copy_from_slice(chunk.row(r));
        }
        got = stacked;
    }
    got
}

/// Pushes after `Subscribe` are streamed to the subscriber without any
/// poll, in push order, and the streamed bytes match what the same
/// gateway run would have served via pulls.
#[test]
fn subscribed_connection_receives_decoded_rows_without_polling() {
    let input = frames(10, 0xBEEF);

    // Reference run: same gateway config, plain pulls.
    let reference = {
        let gw = gateway();
        let mut c = Client::connect(&Loopback::new(gw)).expect("connects");
        c.hello(0).expect("hello");
        assert_eq!(c.push(CLUSTER, input.as_view()).expect("push"), PushOutcome::Accepted(10));
        let mut got = Matrix::zeros(0, DIM);
        while got.rows() < 10 {
            let chunk = c.pull(CLUSTER, 4).expect("pull");
            if chunk.rows() == 0 {
                continue;
            }
            let mut stacked = Matrix::zeros(got.rows() + chunk.rows(), DIM);
            for r in 0..got.rows() {
                stacked.row_mut(r).copy_from_slice(got.row(r));
            }
            for r in 0..chunk.rows() {
                stacked.row_mut(got.rows() + r).copy_from_slice(chunk.row(r));
            }
            got = stacked;
        }
        got
    };

    // Streaming run: subscribe first, then push; rows arrive unasked.
    let gw = gateway();
    let mut c = Client::connect(&Loopback::new(gw)).expect("connects");
    c.hello(0).expect("hello");
    assert_eq!(c.subscribe(CLUSTER).expect("subscribe"), 0, "nothing stored yet");
    assert_eq!(c.push(CLUSTER, input.as_view()).expect("push"), PushOutcome::Accepted(10));
    let streamed = recv_rows(&mut c, 10);

    assert_eq!(streamed.rows(), 10);
    for r in 0..10 {
        assert_eq!(
            streamed.row(r),
            reference.row(r),
            "streamed row {r} must be bit-identical to the pulled row"
        );
    }
}

/// Rows already decoded and stored at subscribe time are announced as
/// backlog and streamed immediately after the ack.
#[test]
fn subscribe_streams_the_stored_backlog_first() {
    let gw = gateway();
    let mut c = Client::connect(&Loopback::new(gw)).expect("connects");
    c.hello(0).expect("hello");
    // 8 rows = two full micro-batches: decoded and stored before the
    // subscription exists.
    assert_eq!(c.push(CLUSTER, frames(8, 3).as_view()).expect("push"), PushOutcome::Accepted(8));
    let backlog = c.subscribe(CLUSTER).expect("subscribe");
    assert_eq!(backlog, 8, "stored rows must be announced as backlog");
    assert_eq!(recv_rows(&mut c, 8).rows(), 8);
}

/// After `Unsubscribe`, new pushes stay stored for pulls instead of
/// being streamed — and nothing is lost or duplicated across the switch.
#[test]
fn unsubscribe_stops_the_stream_and_rows_fall_back_to_pulls() {
    let gw = gateway();
    let mut c = Client::connect(&Loopback::new(gw)).expect("connects");
    c.hello(0).expect("hello");

    c.subscribe(CLUSTER).expect("subscribe");
    c.push(CLUSTER, frames(4, 5).as_view()).expect("push");
    assert_eq!(recv_rows(&mut c, 4).rows(), 4);

    c.unsubscribe(CLUSTER).expect("unsubscribe");
    c.push(CLUSTER, frames(4, 6).as_view()).expect("push");
    assert_eq!(
        c.recv_streamed(Duration::from_millis(50)).expect("stream healthy"),
        None,
        "no deliveries after unsubscribe"
    );
    let mut pulled = 0;
    while pulled < 4 {
        pulled += c.pull(CLUSTER, 4).expect("pull").rows();
    }
    assert_eq!(pulled, 4, "exactly the post-unsubscribe rows are stored");
}
