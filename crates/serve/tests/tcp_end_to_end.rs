//! End-to-end test of the TCP face: a real gateway on an ephemeral port,
//! concurrent clients over real sockets, deadline flushing in real time,
//! and shutdown joining every server thread.

use std::sync::Arc;
use std::time::Duration;

use orco_datasets::DatasetKind;
use orco_serve::{Client, Clock, Gateway, GatewayConfig, PushOutcome, Tcp, TcpServer};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};

#[test]
fn tcp_gateway_serves_and_shuts_down() {
    let config = OrcoConfig::for_dataset(DatasetKind::MnistLike).with_latent_dim(16).with_seed(5);
    let gateway = Arc::new(
        Gateway::new(
            GatewayConfig {
                shards: 2,
                batch_max_frames: 8,
                batch_deadline: Duration::from_millis(2),
                queue_capacity: 1024,
                auth_secret: None,
                trace_capacity: 4096,
                ..GatewayConfig::default()
            },
            Clock::real(),
            |_| {
                Box::new(AsymmetricAutoencoder::new(&config).expect("valid config"))
                    as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    );
    let server = TcpServer::spawn(Arc::clone(&gateway), "127.0.0.1:0").expect("binds");
    let transport = Tcp::new(server.local_addr().to_string());

    let handles: Vec<_> = (0..2)
        .map(|id: u64| {
            let transport = transport.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&transport).expect("connects");
                let info = client.hello(id).expect("hello");
                assert_eq!(info.frame_dim, 784);
                assert_eq!(info.code_dim, 16);
                let mut rng = OrcoRng::from_seed_u64(id);
                let frames = Matrix::from_fn(21, 784, |_, _| rng.uniform(0.0, 1.0));
                let mut pushed = 0;
                while pushed < 21 {
                    let hi = (pushed + 2).min(21);
                    match client.push(id, frames.view_rows(pushed..hi)).expect("push") {
                        PushOutcome::Accepted(n) => pushed += n as usize,
                        PushOutcome::Busy { .. } => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        PushOutcome::Redirected { .. } => {
                            unreachable!("no fleet view installed")
                        }
                    }
                }
                let mut pulled = 0;
                while pulled < 21 {
                    let got = client.pull(id, 8).expect("pull").rows();
                    if got == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    pulled += got;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // A malformed frame draws a typed ErrorReply before the connection
    // closes — the TCP face answers exactly like the loopback path.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connects");
        raw.write_all(b"XXXXgarbage-that-is-not-a-frame").expect("writes");
        let reply = orco_serve::Message::read_from(&mut raw).expect("reply frame").expect("reply");
        assert!(
            matches!(reply, orco_serve::Message::ErrorReply { .. }),
            "expected ErrorReply, got {}",
            reply.kind()
        );
    }

    let mut control = Client::connect(&transport).expect("control connects");
    let stats = control.stats().expect("stats");
    assert_eq!(stats.frames_in, 42);
    assert_eq!(stats.frames_out, 42);
    assert_eq!(stats.queue_depth, 0);
    control.shutdown().expect("shutdown acked");

    // join() returning proves the acceptor was poked awake and every
    // flusher observed the flag.
    server.join();
    assert!(gateway.is_shutting_down());
}
