//! Property tests over the shared-secret MAC and the admission gate it
//! guards: no single- or multi-bit corruption of a message or its tag
//! may ever authenticate, the `Hello` and `Register` domains are
//! separated, and a keyed gateway rejects bad MACs with a typed
//! `Unauthorized` before any stateful work.

use std::sync::Arc;
use std::time::Duration;

use orco_serve::protocol::Message;
use orco_serve::{auth, Client, Clock, ErrorCode, Gateway, GatewayConfig, Loopback};
use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig, OrcoError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Flipping any single bit of the message never verifies under the
    /// same secret — the MAC binds every message bit.
    #[test]
    fn message_bit_flips_never_authenticate(
        secret in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 1..64),
        bit in 0usize..512,
    ) {
        let tag = auth::mac64(secret, &msg);
        let mut flipped = msg.clone();
        let i = bit % (msg.len() * 8);
        flipped[i / 8] ^= 1 << (i % 8);
        prop_assert_ne!(auth::mac64(secret, &flipped), tag);
    }

    /// Flipping any single bit of the *tag* never authenticates either
    /// (trivially true, but it pins the comparison being over all 64
    /// bits — a truncated check would pass some flips).
    #[test]
    fn tag_bit_flips_never_authenticate(
        secret in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
        bit in 0u32..64,
    ) {
        let tag = auth::mac64(secret, &msg);
        prop_assert_ne!(tag ^ (1u64 << bit), tag);
    }

    /// A wrong secret — even one bit off — never verifies.
    #[test]
    fn wrong_secret_never_authenticates(
        secret in any::<u64>(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
        bit in 0u32..64,
    ) {
        prop_assert_ne!(auth::mac64(secret ^ (1 << bit), &msg), auth::mac64(secret, &msg));
    }

    /// `Hello` and `Register` MACs are domain-separated: a tag captured
    /// from one conversation never replays into the other, even over
    /// identical field values.
    #[test]
    fn hello_and_register_domains_are_separated(
        secret in any::<u64>(),
        id in any::<u64>(),
        nonce in any::<u64>(),
        addr in prop::collection::vec(0x20u8..=0x7e, 0..24),
    ) {
        let addr = String::from_utf8(addr.clone()).expect("printable ascii is utf-8");
        prop_assert_ne!(
            auth::hello_mac(secret, id, nonce),
            auth::register_mac(secret, id, &addr, nonce),
        );
    }

    /// The nonce is load-bearing: two sessions presenting the same id
    /// with different nonces never share a tag.
    #[test]
    fn distinct_nonces_draw_distinct_tags(
        secret in any::<u64>(),
        id in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(auth::hello_mac(secret, id, a), auth::hello_mac(secret, id, b));
    }
}

const SECRET: u64 = 0xD00D_8E11_0AC5_53C2;

fn keyed_gateway() -> Arc<Gateway> {
    let cfg = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
        .with_latent_dim(16)
        .with_seed(11);
    Arc::new(
        Gateway::new(
            GatewayConfig { auth_secret: Some(SECRET), ..GatewayConfig::default() },
            Clock::manual(Duration::from_micros(100)),
            move |_| {
                Box::new(AsymmetricAutoencoder::new(&cfg).expect("valid config")) as Box<dyn Codec>
            },
        )
        .expect("valid gateway"),
    )
}

/// A keyed gateway refuses an unkeyed or wrong-keyed `Hello` with a
/// typed `Unauthorized` — before any stateful work — and admits the
/// right secret.
#[test]
fn keyed_gateway_rejects_bad_hellos_with_unauthorized() {
    let gw = keyed_gateway();
    let transport = Loopback::new(Arc::clone(&gw));

    let expect_unauthorized = |result: Result<_, OrcoError>| match result {
        Err(OrcoError::Config { detail }) => {
            assert!(detail.contains("Unauthorized"), "typed rejection, got: {detail}")
        }
        other => panic!("bad MAC must be rejected, got {other:?}"),
    };

    // No secret configured on the client → zero MAC → rejected.
    let mut anon = Client::connect(&transport).expect("connects");
    expect_unauthorized(anon.hello(7).map(|_| ()));

    // Wrong secret → rejected.
    let mut wrong = Client::connect(&transport).expect("connects");
    wrong.set_auth_secret(Some(SECRET ^ 1));
    expect_unauthorized(wrong.hello(7).map(|_| ()));

    // Right secret → admitted, and the gateway's geometry comes back.
    let mut ok = Client::connect(&transport).expect("connects");
    ok.set_auth_secret(Some(SECRET));
    assert_eq!(ok.hello(7).expect("authenticates").frame_dim, 784);

    // The raw wire rejection is a typed ErrorReply, not a dropped
    // connection or a panic: replay a forged frame directly.
    let forged = Message::Hello { client_id: 7, nonce: 1, mac: 2 }.encode();
    let mut reply = Vec::new();
    orco_serve::Service::handle_frame(&*gw, &forged, &mut reply, None);
    match Message::decode(&reply).expect("typed reply") {
        Message::ErrorReply { code, .. } => assert_eq!(code, ErrorCode::Unauthorized),
        other => panic!("expected ErrorReply, got {}", other.kind()),
    }
}
