//! Regression suite for the chaos gauntlet: every scenario upholds the
//! exactly-once and liveness contracts under its scripted impairments,
//! runs are deterministic (same seed → bit-identical stats frame and
//! decoded digest), and a recorded run replays bit-identically from its
//! [`RunLog`] tape — the workflow a failing CI run hands you.

use orco_serve::{replay_scenario, run_scenario, RunLog, GAUNTLET};

const SEED: u64 = 0xC4A05;

#[test]
fn every_scenario_upholds_its_contracts() {
    for &name in &GAUNTLET {
        let out = run_scenario(name, SEED, true)
            .unwrap_or_else(|e| panic!("{name}: gauntlet scenario failed: {e}"));
        assert_eq!(out.name, name);
        let expected = out.clients * out.frames_per_client;
        assert_eq!(out.acked_rows, expected, "{name}: not every frame was acked");
        assert_eq!(
            out.delivered_rows, out.acked_rows,
            "{name}: exactly-once violated (delivered != acked)"
        );
        assert!(!out.trace.is_empty(), "{name}: impairment layer saw no sends");
    }
}

#[test]
fn flash_crowd_exercises_backpressure() {
    let out = run_scenario("flash_crowd", SEED, true).expect("runs");
    assert!(out.busy_retries > 0, "flash_crowd never tripped Busy backpressure");
}

#[test]
fn mass_reconnect_exercises_session_resumption() {
    let out = run_scenario("mass_reconnect", SEED, true).expect("runs");
    assert!(out.gave_ups >= 1, "mass_reconnect: no request ever exhausted its ARQ");
    assert!(out.reconnects >= 1, "mass_reconnect: no session was ever resumed");
    assert_eq!(out.delivered_rows, out.acked_rows, "resumption broke exactly-once");
}

/// Same name + seed + sizing twice → the wire-level stats frame, the
/// decoded-output digest, and the impairment tape are all bit-identical.
#[test]
fn runs_are_deterministic() {
    for &name in &GAUNTLET {
        let a = run_scenario(name, SEED, true).expect("first run");
        let b = run_scenario(name, SEED, true).expect("second run");
        assert_eq!(a.stats_frame, b.stats_frame, "{name}: stats frames diverged across runs");
        assert_eq!(a.decoded_fnv, b.decoded_fnv, "{name}: decoded bytes diverged across runs");
        assert_eq!(a.trace, b.trace, "{name}: impairment tapes diverged across runs");
        assert!(
            a.trace_export.starts_with("orco-trace v1"),
            "{name}: trace export missing its header"
        );
        assert_eq!(a.trace_export, b.trace_export, "{name}: trace exports diverged across runs");
    }
}

/// A recorded run replays bit-identically through the text round-trip —
/// the exact artifact-to-repro path CI failures use.
#[test]
fn recorded_runs_replay_bit_identically() {
    for &name in &GAUNTLET {
        let live = run_scenario(name, SEED, true).expect("live run");
        let log = RunLog { name: name.into(), seed: SEED, quick: true, trace: live.trace.clone() };

        let text = log.to_text();
        let parsed = RunLog::from_text(&text)
            .unwrap_or_else(|e| panic!("{name}: runlog text did not parse: {e}"));
        assert_eq!(parsed, log, "{name}: runlog text round-trip lost information");

        let replayed = replay_scenario(&parsed)
            .unwrap_or_else(|e| panic!("{name}: replay violated a contract: {e}"));
        assert_eq!(
            replayed.stats_frame, live.stats_frame,
            "{name}: replayed stats frame differs from the live run"
        );
        assert_eq!(
            replayed.decoded_fnv, live.decoded_fnv,
            "{name}: replayed decoded bytes differ from the live run"
        );
        assert_eq!(replayed.trace, live.trace, "{name}: replay rewrote the tape");
        assert_eq!(
            replayed.trace_export, live.trace_export,
            "{name}: replay did not reproduce the live run's trace export bit-for-bit"
        );
    }
}

/// A different seed draws a different impairment schedule (the scenarios
/// are genuinely randomized, not fixed scripts wearing a seed).
#[test]
fn seeds_matter() {
    let a = run_scenario("lossy_links", SEED, true).expect("seed A");
    let b = run_scenario("lossy_links", SEED ^ 0x5A5A_5A5A, true).expect("seed B");
    assert_ne!(a.trace, b.trace, "lossy_links ignored its seed");
}

#[test]
fn unknown_scenarios_are_rejected() {
    let err = run_scenario("no_such_storm", SEED, true).expect_err("must reject");
    assert!(err.to_string().contains("no_such_storm"), "error should name the scenario: {err}");
}
