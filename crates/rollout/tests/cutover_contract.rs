//! The cutover contract, pinned over the in-process loopback transport
//! (the DES twin rides `rollout_storm`): flushes before the swap are
//! bit-identical to the old codec, flushes after it to the new one, no
//! delivery ever mixes versions, and not a single row is dropped or
//! duplicated across the boundary — including through a rollback-guard
//! revert.

use std::sync::Arc;
use std::time::Duration;

use orco_rollout::{rollout_one, rollout_staged};
use orco_serve::{Client, Clock, Gateway, GatewayConfig, Loopback, ModelVersion};
use orco_tensor::{Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, EncoderCheckpoint, GradCompression, OrcoConfig};

const DIM: usize = 32;
const CODE: usize = 8;
const CLUSTER: u64 = 7;

fn codec_config(seed: u64) -> OrcoConfig {
    OrcoConfig {
        input_dim: DIM,
        latent_dim: CODE,
        decoder_layers: 1,
        noise_variance: 0.1,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-2,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: GradCompression::default(),
        seed,
    }
}

fn gateway(cfg: GatewayConfig) -> Arc<Gateway> {
    let codec_cfg = codec_config(11);
    Arc::new(
        Gateway::new(cfg, Clock::manual(Duration::from_micros(100)), move |_| {
            Box::new(AsymmetricAutoencoder::new(&codec_cfg).expect("valid config"))
                as Box<dyn Codec>
        })
        .expect("valid gateway config"),
    )
}

/// The retrain stand-in every test rolls out: a differently-seeded
/// encoder grafted onto the served decoder.
fn donor_checkpoint() -> EncoderCheckpoint {
    AsymmetricAutoencoder::new(&codec_config(99))
        .expect("valid config")
        .checkpoint()
        .expect("autoencoder codecs checkpoint")
}

fn version_one() -> ModelVersion {
    ModelVersion { id: 1, label: "retrain-99".into(), frame_dim: DIM as u32, code_dim: CODE as u32 }
}

fn stream(rows: usize) -> Matrix {
    let mut rng = OrcoRng::from_seed_u64(0xC07E);
    Matrix::from_fn(rows, DIM, |_, _| rng.uniform(0.0, 1.0))
}

/// Direct encode → decode of `frames` under the boot codec (`ckpt`
/// `None`) or the rolled-out one (`Some`): what a version-pure delivery
/// must be bit-identical to.
fn reference(ckpt: Option<&EncoderCheckpoint>, frames: &Matrix) -> Matrix {
    let codec = AsymmetricAutoencoder::new(&codec_config(11)).expect("valid config");
    let mut codec = match ckpt {
        Some(c) => codec.with_encoder(c).expect("same geometry"),
        None => Box::new(codec) as Box<dyn Codec>,
    };
    let mut codes = Matrix::zeros(0, 0);
    let mut recon = Matrix::zeros(0, 0);
    codec.encode_batch(frames.as_view(), &mut codes).expect("geometry fits");
    codec.decode_batch(codes.as_view(), &mut recon).expect("geometry fits");
    recon
}

fn rows_eq(got: &Matrix, want: &Matrix, lo: usize) {
    assert_eq!(got.cols(), want.cols());
    for r in 0..got.rows() {
        assert_eq!(
            got.row(r),
            want.row(lo + r),
            "row {} diverges from the reference codec path",
            lo + r
        );
    }
}

/// The tentpole contract: rows in flight across the swap flush under
/// the codec that accepted them, drain version-pure, and both sides are
/// bit-identical to their version's direct codec path.
#[test]
fn cutover_is_version_pure_and_bit_identical() {
    let gw = gateway(GatewayConfig {
        shards: 2,
        batch_max_frames: 64, // no size flushes: every flush below is explicit
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("loopback connects");
    let info = client.hello(1).expect("hello");
    assert_eq!(info.active_version, 0);

    let frames = stream(12);
    let ckpt = donor_checkpoint();
    let recon_v0 = reference(None, &frames);
    let recon_v1 = reference(Some(&ckpt), &frames);

    // Pre-swap: rows 0..4 flush (read-your-writes) and drain under v0.
    client.push(CLUSTER, frames.view_rows(0..4)).expect("push");
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (0, 4));
    rows_eq(&got, &recon_v0, 0);

    // Rows 4..8 are pending when the rollout lands: the swap boundary
    // must flush them under the OLD codec (zero drops, no re-encode) ...
    client.push(CLUSTER, frames.view_rows(4..8)).expect("push");
    let state = rollout_one(&mut client, version_one(), &ckpt).expect("rollout");
    assert_eq!(state.active.id, 1);
    assert_eq!(state.prior.as_ref().map(|p| p.id), Some(0));

    // ... and rows 8..12, pushed after the swap, encode under v1.
    client.push(CLUSTER, frames.view_rows(8..12)).expect("push");

    // The store now holds both generations. Deliveries stay version-pure:
    // the v0 run drains first, capped at the version boundary ...
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (0, 4), "swap-flushed rows must drain as v0 first");
    rows_eq(&got, &recon_v0, 4);

    // ... then the v1 rows, bit-identical to the new codec's direct path.
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (1, 4));
    rows_eq(&got, &recon_v1, 8);

    // Drained: nothing left, nothing duplicated, and the empty delivery
    // reports the now-active version.
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (1, 0));

    let stats = gw.stats();
    assert_eq!(stats.frames_in, 12);
    assert_eq!(stats.frames_out, 12);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.swap_flushes, 1, "exactly the pending shard flushed at the boundary");
    assert_eq!(stats.active_version, 1);
    assert_eq!((stats.queue_depth, stats.stored_codes), (0, 0));
}

/// The rollback guard: a regressing post-swap window reverts to the
/// prior codec, and even the revert drops nothing — rows encoded by the
/// bad version drain as that version.
#[test]
fn rollback_guard_reverts_without_dropping_rows() {
    let gw = gateway(GatewayConfig {
        shards: 1,
        batch_max_frames: 4,
        drift_sample_every: 1,
        drift_threshold: 1.0, // the monitor itself stays quiet
        drift_window: 4,
        rollback_guard: 0.05, // the untrained donor reconstructs far worse
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("loopback connects");
    client.hello(1).expect("hello");

    let frames = stream(8);
    let ckpt = donor_checkpoint();
    let recon_v0 = reference(None, &frames);
    let recon_v1 = reference(Some(&ckpt), &frames);

    let state = rollout_one(&mut client, version_one(), &ckpt).expect("rollout");
    assert_eq!(state.active.id, 1);

    // One full window of bad reconstructions trips the guard on the
    // size flush inside this push.
    client.push(CLUSTER, frames.view_rows(0..4)).expect("push");
    let info = client.version_info().expect("version query");
    assert_eq!(info.active.id, 0, "guard must revert to the prior version");
    assert_eq!(info.rollbacks, 1);
    assert!(info.prior.is_none(), "the demoted version is not a rollback target");

    // Zero-drop through the revert: the bad version's rows still drain,
    // tagged and bit-identical as v1 ...
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (1, 4));
    rows_eq(&got, &recon_v1, 0);

    // ... and post-revert rows encode under the restored v0.
    client.push(CLUSTER, frames.view_rows(4..8)).expect("push");
    let (v, got) = client.pull_versioned(CLUSTER, 64).expect("pull");
    assert_eq!((v, got.rows()), (0, 4));
    rows_eq(&got, &recon_v0, 4);

    let stats = gw.stats();
    assert_eq!(stats.rollbacks, 1);
    assert_eq!(stats.active_version, 0);
    assert_eq!(stats.frames_out, 8);
    assert!(!stats.drift, "a revert clears the drift latch");
}

/// Gateway refusals surface as typed errors on the client, and a staged
/// fleet walk halts at the first refusing gateway.
#[test]
fn refusals_surface_and_halt_staged_walks() {
    let gw = gateway(GatewayConfig { shards: 1, ..GatewayConfig::default() });
    let mut client = Client::connect(&Loopback::new(Arc::clone(&gw))).expect("loopback connects");
    client.hello(1).expect("hello");
    let ckpt = donor_checkpoint();

    // Wrong geometry.
    let bad = ModelVersion { id: 1, label: "bad".into(), frame_dim: 999, code_dim: CODE as u32 };
    let err = client.propose_rollout(bad, &ckpt).expect_err("geometry mismatch must refuse");
    assert!(err.to_string().contains("geometry"), "unexpected error: {err}");

    // A real rollout, then a stale re-propose of the same id.
    rollout_one(&mut client, version_one(), &ckpt).expect("rollout");
    let err =
        client.propose_rollout(version_one(), &ckpt).expect_err("replayed version id must refuse");
    assert!(err.to_string().contains("not newer"), "unexpected error: {err}");

    // Staged walk: the fresh gateway accepts, the already-rolled one
    // refuses the stale id, and the walk halts naming where.
    let fresh = gateway(GatewayConfig { shards: 1, ..GatewayConfig::default() });
    let mut fresh_client =
        Client::connect(&Loopback::new(Arc::clone(&fresh))).expect("loopback connects");
    fresh_client.hello(2).expect("hello");
    let mut fleet = [fresh_client, client];
    let err = rollout_staged(&mut fleet, &version_one(), &ckpt)
        .expect_err("the walk must halt at the stale gateway");
    assert!(err.to_string().contains("halted at gateway 1"), "unexpected error: {err}");
    assert_eq!(fresh.stats().active_version, 1, "the canary before the halt stays rolled");
}
