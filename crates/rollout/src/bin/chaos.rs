//! Chaos-gauntlet CLI: run the DES impairment scenarios — the
//! single-gateway serving gauntlet, the fleet gauntlet, *and* the
//! rollout gauntlet — verify the liveness/exactly-once contracts, and
//! prove every run replays bit-identically from its recorded log.
//!
//! ```sh
//! # CI quick mode: all scenarios + replay verification
//! cargo run --release -p orco-rollout --bin chaos -- --quick --record-dir chaos-logs
//!
//! # One scenario, full size, chosen seed
//! cargo run --release -p orco-rollout --bin chaos -- --scenario lossy_links --seed 7
//!
//! # The fleet scenario: directory + 4 gateways, mid-run kill + join
//! cargo run --release -p orco-rollout --bin chaos -- --scenario fleet_kill
//!
//! # The rollout scenario: drift mid-run, staged rollout, mid-swap kill
//! cargo run --release -p orco-rollout --bin chaos -- --scenario rollout_storm
//!
//! # Resurrect a failing run from its uploaded log
//! cargo run --release -p orco-rollout --bin chaos -- --replay chaos-logs/lossy_links.runlog
//! ```
//!
//! On any contract violation the run's log is written to `--record-dir`
//! (default `.`) and the process exits nonzero — the log is everything a
//! debugging session needs to step through the identical event sequence.

use std::path::PathBuf;
use std::process::ExitCode;

use orco_fleet::{replay_fleet_scenario, run_fleet_scenario, FleetOutcome, FLEET_GAUNTLET};
use orco_rollout::{
    replay_rollout_scenario, run_rollout_scenario, RolloutOutcome, ROLLOUT_GAUNTLET,
};
use orco_serve::{replay_scenario, run_scenario, RunLog, ScenarioOutcome, GAUNTLET};

struct Args {
    quick: bool,
    seed: u64,
    scenario: Option<String>,
    record_dir: PathBuf,
    replay: Option<PathBuf>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            quick: false,
            seed: 0xC4A05,
            scenario: None,
            record_dir: PathBuf::from("."),
            replay: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().unwrap_or_else(|| panic!("{name} requires a value"));
            match flag.as_str() {
                "--quick" => args.quick = true,
                "--full" => args.quick = false,
                "--seed" => args.seed = value("--seed").parse().expect("u64"),
                "--scenario" => args.scenario = Some(value("--scenario")),
                "--record-dir" => args.record_dir = PathBuf::from(value("--record-dir")),
                "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: chaos [--quick|--full] [--seed N] \
                         [--scenario NAME] [--record-dir DIR] [--replay FILE]"
                    );
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

fn is_fleet_scenario(name: &str) -> bool {
    FLEET_GAUNTLET.contains(&name)
}

fn is_rollout_scenario(name: &str) -> bool {
    ROLLOUT_GAUNTLET.contains(&name)
}

fn summarize(tag: &str, o: &ScenarioOutcome) {
    println!(
        "  {tag} {}: {} clients x {} frames | acked {} delivered {} | busy_retries {} \
         gave_ups {} reconnects {} | digest {:016x}",
        o.name,
        o.clients,
        o.frames_per_client,
        o.acked_rows,
        o.delivered_rows,
        o.busy_retries,
        o.gave_ups,
        o.reconnects,
        o.decoded_fnv
    );
}

fn summarize_fleet(tag: &str, o: &FleetOutcome) {
    println!(
        "  {tag} {}: {} clients x {} frames | delivered {} | redirects {} gave_ups {} \
         reconnects {} | final epoch {} | digest {:016x}",
        o.name,
        o.clients,
        o.frames_per_client,
        o.delivered_rows,
        o.redirects,
        o.gave_ups,
        o.reconnects,
        o.final_epoch,
        o.decoded_fnv
    );
}

fn summarize_rollout(tag: &str, o: &RolloutOutcome) {
    println!(
        "  {tag} {}: {} clients x {} frames | delivered {} (v0 {} / v1 {}) | drift_trips {} \
         gave_ups {} reconnects {} | final epoch {} | digest {:016x}",
        o.name,
        o.clients,
        o.frames_per_client,
        o.delivered_rows,
        o.v0_rows,
        o.v1_rows,
        o.drift_trips,
        o.gave_ups,
        o.reconnects,
        o.final_epoch,
        o.decoded_fnv
    );
}

fn persist_log(dir: &PathBuf, log: &RunLog) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{}-seed{}.runlog", log.name, log.seed));
    match std::fs::write(&path, log.to_text()) {
        Ok(()) => eprintln!("chaos: run log written to {}", path.display()),
        Err(e) => eprintln!("chaos: cannot write {}: {e}", path.display()),
    }
}

/// The text round trip must be exact, or an uploaded log is useless.
fn roundtrip_log(name: &str, args: &Args, log: &RunLog) -> Option<RunLog> {
    match RunLog::from_text(&log.to_text()) {
        Ok(l) if l == *log => Some(l),
        Ok(_) => {
            eprintln!("chaos: FAILED {name}: run log text round trip is lossy");
            persist_log(&args.record_dir, log);
            None
        }
        Err(e) => {
            eprintln!("chaos: FAILED {name}: run log does not reparse: {e}");
            persist_log(&args.record_dir, log);
            None
        }
    }
}

/// Runs one scenario live, then replays it from its own log and demands
/// a bit-identical outcome. Returns false (and persists the log) on any
/// violation.
fn run_and_verify(name: &str, args: &Args) -> bool {
    if is_fleet_scenario(name) {
        return run_and_verify_fleet(name, args);
    }
    if is_rollout_scenario(name) {
        return run_and_verify_rollout(name, args);
    }
    let outcome = match run_scenario(name, args.seed, args.quick) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: FAILED {e}");
            persist_log(&args.record_dir, &e.log);
            return false;
        }
    };
    summarize("live ", &outcome);

    let log = RunLog {
        name: outcome.name.clone(),
        seed: outcome.seed,
        quick: args.quick,
        trace: outcome.trace.clone(),
    };
    let Some(reparsed) = roundtrip_log(name, args, &log) else {
        return false;
    };
    match replay_scenario(&reparsed) {
        Ok(replayed)
            if replayed.stats_frame == outcome.stats_frame
                && replayed.decoded_fnv == outcome.decoded_fnv
                && replayed.trace_export == outcome.trace_export =>
        {
            summarize("replay", &replayed);
            true
        }
        Ok(_) => {
            eprintln!("chaos: FAILED {name}: replay diverged from the live run");
            persist_log(&args.record_dir, &log);
            false
        }
        Err(e) => {
            eprintln!("chaos: FAILED replay of {name}: {e}");
            persist_log(&args.record_dir, &e.log);
            false
        }
    }
}

/// The fleet twin of [`run_and_verify`]: same record → round-trip →
/// replay discipline, with the per-surviving-gateway stats frames in the
/// bit-identity check.
fn run_and_verify_fleet(name: &str, args: &Args) -> bool {
    let outcome = match run_fleet_scenario(name, args.seed, args.quick) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: FAILED {e}");
            persist_log(&args.record_dir, &e.log);
            return false;
        }
    };
    summarize_fleet("live ", &outcome);

    let log = RunLog {
        name: outcome.name.clone(),
        seed: outcome.seed,
        quick: args.quick,
        trace: outcome.trace.clone(),
    };
    let Some(reparsed) = roundtrip_log(name, args, &log) else {
        return false;
    };
    match replay_fleet_scenario(&reparsed) {
        Ok(replayed)
            if replayed.stats_frames == outcome.stats_frames
                && replayed.decoded_fnv == outcome.decoded_fnv
                && replayed.final_epoch == outcome.final_epoch
                && replayed.trace_export == outcome.trace_export =>
        {
            summarize_fleet("replay", &replayed);
            true
        }
        Ok(_) => {
            eprintln!("chaos: FAILED {name}: replay diverged from the live run");
            persist_log(&args.record_dir, &log);
            false
        }
        Err(e) => {
            eprintln!("chaos: FAILED replay of {name}: {e}");
            persist_log(&args.record_dir, &e.log);
            false
        }
    }
}

/// The rollout twin: the bit-identity check additionally pins the
/// per-row version tape (folded into `decoded_fnv`) and the v0/v1 split
/// — a replay that swaps at a different flush boundary fails here.
fn run_and_verify_rollout(name: &str, args: &Args) -> bool {
    let outcome = match run_rollout_scenario(name, args.seed, args.quick) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("chaos: FAILED {e}");
            persist_log(&args.record_dir, &e.log);
            return false;
        }
    };
    summarize_rollout("live ", &outcome);

    let log = RunLog {
        name: outcome.name.clone(),
        seed: outcome.seed,
        quick: args.quick,
        trace: outcome.trace.clone(),
    };
    let Some(reparsed) = roundtrip_log(name, args, &log) else {
        return false;
    };
    match replay_rollout_scenario(&reparsed) {
        Ok(replayed)
            if replayed.stats_frames == outcome.stats_frames
                && replayed.decoded_fnv == outcome.decoded_fnv
                && replayed.final_epoch == outcome.final_epoch
                && replayed.v0_rows == outcome.v0_rows
                && replayed.v1_rows == outcome.v1_rows
                && replayed.trace_export == outcome.trace_export =>
        {
            summarize_rollout("replay", &replayed);
            true
        }
        Ok(_) => {
            eprintln!("chaos: FAILED {name}: replay diverged from the live run");
            persist_log(&args.record_dir, &log);
            false
        }
        Err(e) => {
            eprintln!("chaos: FAILED replay of {name}: {e}");
            persist_log(&args.record_dir, &e.log);
            false
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();

    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("chaos: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let log = match RunLog::from_text(&text) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("chaos: malformed run log {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        println!("chaos: replaying {} (seed {}, quick {})", log.name, log.seed, log.quick);
        let replayed = if is_fleet_scenario(&log.name) {
            replay_fleet_scenario(&log).map(|o| {
                summarize_fleet("replay", &o);
            })
        } else if is_rollout_scenario(&log.name) {
            replay_rollout_scenario(&log).map(|o| {
                summarize_rollout("replay", &o);
            })
        } else {
            replay_scenario(&log).map(|o| {
                summarize("replay", &o);
            })
        };
        return match replayed {
            Ok(()) => {
                println!("chaos: replay completed cleanly");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("chaos: replay reproduced the failure: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let names: Vec<&str> = match &args.scenario {
        Some(s) => vec![s.as_str()],
        None => GAUNTLET
            .iter()
            .chain(FLEET_GAUNTLET.iter())
            .chain(ROLLOUT_GAUNTLET.iter())
            .copied()
            .collect(),
    };
    println!(
        "chaos: gauntlet of {} scenario(s), seed {}, {} mode",
        names.len(),
        args.seed,
        if args.quick { "quick" } else { "full" }
    );
    let mut ok = true;
    for name in names {
        println!("chaos: == {name} ==");
        ok &= run_and_verify(name, &args);
    }
    if ok {
        println!(
            "chaos: gauntlet clean — every run delivered exactly once and replayed bit-identically"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
