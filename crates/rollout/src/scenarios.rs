//! The rollout gauntlet: `rollout_storm` — a scripted, deterministic,
//! replayable run of a directory + 3-gateway fleet over impaired
//! [`DesNet`] links in which the field distribution **drifts mid-run**,
//! a controller notices (via the gateways' own drift monitors) and
//! performs a **staged codec rollout**, and one gateway is **killed
//! mid-swap** — after staging the new version, before activating it.
//! The run asserts the rollout design's contracts:
//!
//! * **Exactly-once across the kill.** Every client's stream is
//!   delivered back complete and unduplicated, including the clients
//!   whose owner died holding staged-but-never-activated weights.
//! * **Zero-drop, version-pure cutover.** Every delivered row is tagged
//!   with the model version that encoded it; per client the version
//!   sequence is non-decreasing (old rows drain before new rows appear,
//!   never interleaved), and each row is **bit-identical** to a direct
//!   `encode_batch` + `decode_batch` of the stream under a reference
//!   codec of that same version. The swap perturbs nothing it should
//!   not.
//! * **Drift before rollout.** The controller only ever sees the drift
//!   flag after some client pushed post-shift rows — the monitor reacts
//!   to the injected drift, not to the base distribution.
//! * **Mid-swap kill is safe.** The victim dies with version 1 staged
//!   but still serving version 0; survivors finish the rollout and end
//!   on version 1 with exactly one swap each, drained.
//!
//! The kill is triggered by rollout progress (the victim's stage ack),
//! and the drift is a deterministic function of each client's frame
//! index, so a run is a pure function of its seed; the recorded
//! [`RunLog`] replays it bit-identically ([`replay_rollout_scenario`]).

use std::sync::Arc;
use std::time::Duration;

use orco_datasets::drift::{apply_matrix, Drift};
use orco_fleet::{Directory, DirectoryConfig};
use orco_serve::fleet_view::owner_of;
use orco_serve::{
    auth, Backoff, Clock, DesConfig, DesNet, FleetView, Gateway, GatewayConfig, GatewayEntry,
    Message, ModelVersion, NetEvent, RunLog, ScenarioError,
};
use orco_sim::{LinkParams, SendRecord};
use orco_tensor::{fnv1a64, Matrix, OrcoRng};
use orcodcs::{AsymmetricAutoencoder, Codec, EncoderCheckpoint, GradCompression, OrcoConfig};

/// The rollout scenario names [`run_rollout_scenario`] accepts.
pub const ROLLOUT_GAUNTLET: [&str; 1] = ["rollout_storm"];

/// Shared secret every party in the simulated fleet is keyed with.
const SECRET: u64 = 0x0f1e_2d3c_4b5a_6978;

/// Golden-ratio multiplier shared with the TCP clients' nonce schedule.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// What a completed rollout scenario run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutOutcome {
    /// Scenario name (one of [`ROLLOUT_GAUNTLET`]).
    pub name: String,
    /// Seed the impairment randomness was drawn from.
    pub seed: u64,
    /// Client actors driven.
    pub clients: usize,
    /// Frames each client pushed (and pulled back).
    pub frames_per_client: usize,
    /// Decoded rows delivered back across all clients (must equal
    /// `clients * frames_per_client`: exactly once).
    pub delivered_rows: usize,
    /// Delivered rows encoded by the boot model (version 0).
    pub v0_rows: usize,
    /// Delivered rows encoded by the rolled-out model (version 1).
    pub v1_rows: usize,
    /// Drift-monitor trips summed over the surviving gateways.
    pub drift_trips: u64,
    /// Requests whose ARQ exhausted its attempts (the kill guarantees
    /// at least one: the activate sent to the corpse).
    pub gave_ups: usize,
    /// Data connections re-opened (same-endpoint resume or failover).
    pub reconnects: usize,
    /// The directory's epoch when the run settled.
    pub final_epoch: u64,
    /// Encoded `StatsReply` of every *surviving* gateway, ascending id —
    /// the determinism contract is on the wire image.
    pub stats_frames: Vec<Vec<u8>>,
    /// Concatenated trace exports of every surviving gateway, ascending
    /// id, each section prefixed `gateway <id>` — byte-identical between
    /// a live run and its replay.
    pub trace_export: String,
    /// FNV-1a over every delivered row's little-endian bytes *and its
    /// producing version*, client order — one u64 pinning the decoded
    /// output and the version tape together.
    pub decoded_fnv: u64,
    /// The impairment schedule the run drew (replay tape).
    pub trace: Vec<SendRecord>,
}

/// Runs one rollout gauntlet scenario live, drawing impairments from
/// `seed`. `quick` shrinks the per-client stream for CI; the topology,
/// the drift injection point, and the kill schedule are the same either
/// way.
///
/// # Errors
///
/// Returns a [`ScenarioError`] (with its replay log) when a rollout
/// contract is violated, and on an unknown scenario name.
pub fn run_rollout_scenario(
    name: &str,
    seed: u64,
    quick: bool,
) -> Result<RolloutOutcome, ScenarioError> {
    drive(name, seed, quick, None)
}

/// Re-runs a recorded rollout scenario, consuming the logged impairment
/// schedule instead of drawing randomness. A correct replay reproduces
/// the original outcome bit for bit (`stats_frames`, `decoded_fnv`,
/// trace) — including the mid-swap kill.
///
/// # Errors
///
/// As [`run_rollout_scenario`]; additionally, a replay whose send
/// sequence diverges from the tape panics with a `replay divergence`
/// diagnostic.
pub fn replay_rollout_scenario(log: &RunLog) -> Result<RolloutOutcome, ScenarioError> {
    drive(&log.name, log.seed, log.quick, Some(log.trace.clone()))
}

/// The same small, fast codec geometry as the serve and fleet gauntlets
/// — the rollout gauntlet stresses the version lifecycle, not the
/// autoencoder.
fn codec_config(seed: u64) -> OrcoConfig {
    OrcoConfig {
        input_dim: 32,
        latent_dim: 8,
        decoder_layers: 1,
        noise_variance: 0.1,
        huber_delta: 0.5,
        vector_huber: false,
        learning_rate: 1e-2,
        batch_size: 32,
        epochs: 1,
        finetune_threshold: 0.05,
        grad_compression: GradCompression::default(),
        seed,
    }
}

/// Windowed decoded-sample error separating the base distribution from
/// the drifted one for the gauntlet codec: uniform frames reconstruct
/// at a windowed MSE near 0.09, [`Drift::Bias`]-shifted frames near
/// 0.16 (measured; asserted by the `drift_threshold_separates_bands`
/// test below), so the monitor trips on the shift and only the shift.
const DRIFT_THRESHOLD: f32 = 0.125;
const DRIFT_WINDOW: usize = 8;

/// Endpoint layout: the directory is endpoint 0, gateway id `g` is
/// endpoint `g` (ids start at 1), advertised as `des:<endpoint>`.
fn ep_of_addr(addr: &str) -> usize {
    addr.strip_prefix("des:")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("non-DES gateway address {addr:?} in a DES fleet"))
}

const DIRECTORY_EP: usize = 0;
const GATEWAYS: [u64; 3] = [1, 2, 3];
/// Gateway id (== endpoint) killed mid-swap: after it acks the staged
/// version, before its activation lands.
const VICTIM: u64 = 2;

/// Heartbeat cadence; the timeout leaves room for a 3-retransmit beat.
const BEAT_EVERY: Duration = Duration::from_millis(20);
const BEAT_TIMEOUT: Duration = Duration::from_millis(120);

const ROWS_PER_PUSH: usize = 3;
const PULL_CHUNK: u32 = 8;

/// Wakeup-token namespaces (client tokens are the client index).
const TOKEN_AGENT: u64 = 1000;
const TOKEN_RELEASE: u64 = 2000;
const TOKEN_CTRL: u64 = 3000;

/// How often the controller polls `VersionQuery` while waiting for a
/// drift flag.
const PROBE_EVERY: Duration = Duration::from_millis(5);

/// Who a [`DesNet`] connection belongs to.
#[derive(Debug, Clone, Copy)]
enum Role {
    /// Gateway agent `i`'s directory connection.
    Agent(usize),
    /// Client `i`'s directory connection.
    ClientDir(usize),
    /// Client `i`'s data-plane connection.
    ClientData(usize),
    /// The rollout controller's connection to gateway index `i`.
    Ctrl(usize),
}

/// A gateway-side fleet agent, scripted as a simulation actor.
struct Agent {
    id: u64,
    ep: usize,
    gateway: Arc<Gateway>,
    conn: usize,
    alive: bool,
    epoch: u64,
}

impl Agent {
    fn install_view(&self, epoch: u64, members: Vec<GatewayEntry>) {
        self.gateway.set_fleet_view(Some(FleetView::new(Some(self.id), epoch, members)));
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    /// Waiting for the bootstrap `DirectoryReply`.
    Boot,
    /// Greeting the owner (`HelloAck` pending).
    Greet,
    /// The push-window / drain loop against the current owner.
    Stream,
    /// Parked at the hold point until the rollout releases the tail.
    Held,
    /// Owner died: waiting for a post-eviction `DirectoryReply`.
    AwaitDir,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CKind {
    Query,
    Hello,
    Push { lo: usize, hi: usize },
    Pull,
}

struct ClientActor {
    cluster: u64,
    frames: Matrix,
    /// The client parks here until the rollout completes, so the tail
    /// of every stream is guaranteed to race the swap.
    hold_at: usize,
    offset: usize,
    acked: usize,
    pulled: Vec<f32>,
    /// Producing model version of each delivered row, in pull order.
    pulled_versions: Vec<u64>,
    pulled_rows: usize,
    state: CState,
    pending: Option<(u64, CKind)>,
    dir_conn: usize,
    data_conn: Option<usize>,
    data_ep: usize,
    released: bool,
    backoff: Backoff,
    gave_ups: usize,
    reconnects: usize,
}

impl ClientActor {
    fn done(&self) -> bool {
        self.state == CState::Done
    }
}

/// Rollout-controller progress through the staged fleet walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RState {
    /// Polling `VersionQuery` round-robin until a gateway flags drift.
    WaitDrift,
    /// Walking the fleet: staging/activating on gateway index `gi`.
    Rolling {
        gi: usize,
    },
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlKind {
    Probe,
    Propose { gi: usize },
    Activate { gi: usize },
}

struct Controller {
    /// One connection per gateway, index-aligned with [`GATEWAYS`].
    conns: Vec<usize>,
    state: RState,
    pending: Option<(u64, CtrlKind)>,
    probe_next: usize,
    /// Nonce schedule for the MAC'd rollout messages (deterministic).
    nonce_seq: u64,
    /// Gateway ids the walk skipped because they died mid-swap.
    skipped: Vec<u64>,
}

impl Controller {
    fn next_nonce(&mut self) -> u64 {
        self.nonce_seq = self.nonce_seq.wrapping_add(1);
        self.nonce_seq.wrapping_mul(GOLDEN) ^ 0x726F_6C6C
    }

    fn submit_propose(
        &mut self,
        net: &DesNet,
        gi: usize,
        version: &ModelVersion,
        ckpt: &EncoderCheckpoint,
    ) {
        let nonce = self.next_nonce();
        let mac = auth::rollout_mac(SECRET, version.id, nonce);
        let seq = net.submit(
            self.conns[gi],
            &Message::RolloutPropose {
                version: version.clone(),
                weight: ckpt.weight.clone(),
                bias: ckpt.bias.clone(),
                nonce,
                mac,
            },
        );
        self.pending = Some((seq, CtrlKind::Propose { gi }));
    }

    fn submit_activate(&mut self, net: &DesNet, gi: usize, version_id: u64) {
        let nonce = self.next_nonce();
        let mac = auth::rollout_mac(SECRET, version_id, nonce);
        let seq = net.submit(self.conns[gi], &Message::ActivateVersion { version_id, nonce, mac });
        self.pending = Some((seq, CtrlKind::Activate { gi }));
    }
}

/// Picks a cluster id whose rendezvous owner under `members` is `want`,
/// scanning deterministically from `from`.
fn cluster_owned_by(members: &[GatewayEntry], want: u64, from: u64) -> u64 {
    (from..from + 10_000)
        .find(|&c| owner_of(members, c).map(|g| g.id) == Some(want))
        .expect("rendezvous hashing starves no gateway within 10k clusters")
}

fn drive(
    name: &str,
    seed: u64,
    quick: bool,
    replay: Option<Vec<SendRecord>>,
) -> Result<RolloutOutcome, ScenarioError> {
    let fail = |detail: String, trace: Vec<SendRecord>| ScenarioError {
        detail,
        log: RunLog { name: name.to_string(), seed, quick, trace },
    };
    if name != "rollout_storm" {
        return Err(fail(
            format!("unknown rollout scenario (gauntlet: {ROLLOUT_GAUNTLET:?})"),
            Vec::new(),
        ));
    }
    let frames_per_client = if quick { 24 } else { 48 };
    let shift_at = frames_per_client / 2;
    let hold_at = frames_per_client * 3 / 4;

    let des = DesConfig {
        link: LinkParams { delay_s: 0.002, jitter_s: 0.001, loss_prob: 0.02 },
        rto: Duration::from_millis(10),
        rto_cap: Duration::from_millis(80),
        max_attempts: 5,
    };
    let net = DesNet::new_multi(des, seed);
    if let Some(trace) = replay {
        net.begin_replay(trace);
    }

    let directory = Arc::new(
        Directory::new(
            DirectoryConfig {
                auth_secret: Some(SECRET),
                heartbeat_timeout: BEAT_TIMEOUT,
                sweep_interval: Duration::from_millis(100),
            },
            Clock::manual(Duration::ZERO),
        )
        .expect("valid directory config"),
    );
    let dir_ep = net.add_service(Arc::clone(&directory) as Arc<dyn orco_serve::Service>);
    assert_eq!(dir_ep, DIRECTORY_EP);

    // Three identical gateways, every one drift-monitored: each samples
    // every flushed row's decode-back error through an 8-sample window.
    let codec_cfg = codec_config(11);
    let gateway_cfg = GatewayConfig {
        shards: 2,
        batch_max_frames: 8,
        batch_deadline: Duration::from_millis(5),
        queue_capacity: 4096,
        auth_secret: Some(SECRET),
        trace_capacity: 1 << 16,
        drift_sample_every: 1,
        drift_threshold: DRIFT_THRESHOLD,
        drift_window: DRIFT_WINDOW,
        ..GatewayConfig::default()
    };
    let mut agents: Vec<Agent> = GATEWAYS
        .iter()
        .map(|&id| {
            let gateway = Arc::new(
                Gateway::new(gateway_cfg, Clock::manual(Duration::ZERO), |_| {
                    Box::new(AsymmetricAutoencoder::new(&codec_cfg).expect("valid codec"))
                        as Box<dyn Codec>
                })
                .expect("valid gateway config"),
            );
            let ep = net.add_service(Arc::clone(&gateway) as Arc<dyn orco_serve::Service>);
            assert_eq!(ep, id as usize);
            Agent { id, ep, gateway, conn: 0, alive: true, epoch: 0 }
        })
        .collect();

    let mut roles: Vec<Role> = Vec::new();
    let push_role = |roles: &mut Vec<Role>, conn: usize, role: Role| {
        assert_eq!(conn, roles.len(), "connection ids must stay dense");
        roles.push(role);
    };
    for (i, a) in agents.iter_mut().enumerate() {
        a.conn = net.connect_to(DIRECTORY_EP);
        push_role(&mut roles, a.conn, Role::Agent(i));
    }

    // Two clients per gateway under the initial membership; the victim's
    // pair exercises kill-failover mid-rollout.
    let entry = |id: u64| GatewayEntry { id, addr: format!("des:{id}") };
    let initial: Vec<GatewayEntry> = GATEWAYS.iter().copied().map(entry).collect();
    let mut clusters = Vec::new();
    for &g in &GATEWAYS {
        let first = cluster_owned_by(&initial, g, 100);
        clusters.push(first);
        clusters.push(cluster_owned_by(&initial, g, first + 1));
    }

    // Each client's stream drifts at `shift_at`: the tail is the exact
    // Bias shift of `orco_datasets::drift`, applied row-deterministically
    // (the same transform `loadgen --drift` replays against live TCP
    // gateways).
    let input_dim = codec_cfg.input_dim;
    let mut clients: Vec<ClientActor> = clusters
        .iter()
        .enumerate()
        .map(|(i, &cluster)| {
            let mut rng = OrcoRng::from_seed_u64(seed ^ (0xFEE7 + i as u64));
            let mut frames =
                Matrix::from_fn(frames_per_client, input_dim, |_, _| rng.uniform(0.0, 1.0));
            let mut tail = frames.view_rows(shift_at..frames_per_client).to_matrix();
            let mut drift_rng = OrcoRng::from_seed_u64(seed ^ 0xD21F7);
            apply_matrix(&mut tail, Drift::Bias, 1.0, &mut drift_rng);
            for r in 0..tail.rows() {
                let dst = shift_at + r;
                for c in 0..input_dim {
                    frames.set(dst, c, tail.get(r, c).expect("in-bounds copy"));
                }
            }
            let dir_conn = net.connect_to(DIRECTORY_EP);
            push_role(&mut roles, dir_conn, Role::ClientDir(i));
            ClientActor {
                cluster,
                frames,
                hold_at,
                offset: 0,
                acked: 0,
                pulled: Vec::new(),
                pulled_versions: Vec::new(),
                pulled_rows: 0,
                state: CState::Boot,
                pending: None,
                dir_conn,
                data_conn: None,
                data_ep: 0,
                released: false,
                backoff: Backoff::new(
                    Duration::from_millis(2),
                    Duration::from_millis(64),
                    seed.wrapping_mul(GOLDEN) ^ i as u64,
                ),
                gave_ups: 0,
                reconnects: 0,
            }
        })
        .collect();
    let total = clients.len() * frames_per_client;

    // The version being rolled out: a differently-seeded encoder of the
    // same geometry, standing in for a drift-adapted retrain. The
    // reference codecs pin what every version's rows must decode to.
    let donor = AsymmetricAutoencoder::new(&codec_config(99)).expect("valid codec config");
    let ckpt = donor.checkpoint().expect("autoencoder codecs checkpoint");
    let version = ModelVersion {
        id: 1,
        label: "retrain-99".into(),
        frame_dim: input_dim as u32,
        code_dim: codec_cfg.latent_dim as u32,
    };

    let mut ctrl = Controller {
        conns: GATEWAYS.iter().map(|&g| net.connect_to(g as usize)).collect(),
        state: RState::WaitDrift,
        pending: None,
        probe_next: 0,
        nonce_seq: seed,
        skipped: Vec::new(),
    };
    for (gi, &conn) in ctrl.conns.clone().iter().enumerate() {
        push_role(&mut roles, conn, Role::Ctrl(gi));
    }

    // Kick off: gateways register at t=0, clients boot staggered, the
    // controller starts probing for drift.
    for a in agents.iter() {
        let addr = format!("des:{}", a.ep);
        let nonce = a.id.wrapping_mul(GOLDEN) ^ 0x666C_6565;
        let mac = auth::register_mac(SECRET, a.id, &addr, nonce);
        net.submit(a.conn, &Message::Register { gateway_id: a.id, addr, nonce, mac });
    }
    for i in 0..clients.len() {
        net.schedule_wakeup(Duration::from_millis(10 + i as u64), i as u64);
    }
    net.schedule_wakeup(PROBE_EVERY, TOKEN_CTRL);

    let mut killed = false;
    let mut drift_seen_at_offset: Option<usize> = None;

    let mut events = 0u64;
    const EVENT_CAP: u64 = 5_000_000;
    while clients.iter().any(|c| !c.done()) {
        events += 1;
        if events > EVENT_CAP {
            return Err(fail(
                format!(
                    "no convergence after {EVENT_CAP} events: ctrl {:?}, {} of {} clients live",
                    ctrl.state,
                    clients.iter().filter(|c| !c.done()).count(),
                    clients.len()
                ),
                net.trace(),
            ));
        }
        match net.poll() {
            NetEvent::Reply { conn, seq } => {
                let reply = net.take_reply(conn, seq).expect("announced reply present");
                match roles[conn] {
                    Role::Agent(i) => {
                        if let Err(d) = on_agent_reply(&net, &mut agents[i], reply) {
                            return Err(fail(d, net.trace()));
                        }
                    }
                    Role::ClientDir(i) => {
                        if let Err(d) =
                            on_dir_reply(&net, &mut clients[i], i, seq, reply, &mut roles)
                        {
                            return Err(fail(d, net.trace()));
                        }
                    }
                    Role::ClientData(i) => {
                        if let Err(d) =
                            on_data_reply(&net, &mut clients[i], i, seq, reply, &mut roles)
                        {
                            return Err(fail(d, net.trace()));
                        }
                    }
                    Role::Ctrl(_) => {
                        let r = on_ctrl_reply(
                            &net,
                            &mut ctrl,
                            seq,
                            reply,
                            &version,
                            &ckpt,
                            &clients,
                            &mut agents,
                            &mut killed,
                            &mut drift_seen_at_offset,
                        );
                        if let Err(d) = r {
                            return Err(fail(d, net.trace()));
                        }
                    }
                }
            }
            NetEvent::GaveUp { conn, seq: _ } => match roles[conn] {
                Role::Agent(i) => {
                    if agents[i].alive {
                        agents[i].conn = net.reconnect(conn);
                        push_role(&mut roles, agents[i].conn, Role::Agent(i));
                    }
                }
                Role::ClientDir(i) => {
                    clients[i].dir_conn = net.reconnect(conn);
                    push_role(&mut roles, clients[i].dir_conn, Role::ClientDir(i));
                }
                Role::ClientData(i) => {
                    let c = &mut clients[i];
                    c.gave_ups += 1;
                    if net.endpoint_alive(c.data_ep) {
                        // Transient loss streak: resume the session on the
                        // same gateway; dedup state survives, the
                        // re-offered request executes at most once.
                        c.reconnects += 1;
                        let new = net.reconnect(conn);
                        c.data_conn = Some(new);
                        push_role(&mut roles, new, Role::ClientData(i));
                    } else {
                        // Owner died mid-swap. Rewind to the delivered
                        // watermark and find the new owner.
                        net.cancel_outstanding(conn);
                        c.pending = None;
                        c.acked = c.pulled_rows;
                        c.offset = c.pulled_rows;
                        c.state = CState::AwaitDir;
                        let seq = net.submit(c.dir_conn, &Message::DirectoryQuery);
                        c.pending = Some((seq, CKind::Query));
                    }
                }
                Role::Ctrl(gi) => {
                    let ep = GATEWAYS[gi] as usize;
                    if net.endpoint_alive(ep) {
                        // Loss streak on a live gateway: resume; the ARQ
                        // re-offers the in-flight rollout message.
                        ctrl.conns[gi] = net.reconnect(conn);
                        push_role(&mut roles, ctrl.conns[gi], Role::Ctrl(gi));
                    } else {
                        // The gateway died under our in-flight activate —
                        // the mid-swap kill. Skip it and keep walking.
                        net.cancel_outstanding(conn);
                        ctrl.pending = None;
                        ctrl.skipped.push(GATEWAYS[gi]);
                        if let Err(d) = ctrl_advance(&net, &mut ctrl, gi, &version, &ckpt) {
                            return Err(fail(d, net.trace()));
                        }
                    }
                }
            },
            NetEvent::Wakeup { token } => {
                if token == TOKEN_RELEASE {
                    for c in clients.iter_mut() {
                        c.released = true;
                        if c.state == CState::Held {
                            c.state = CState::Stream;
                            if c.pending.is_none() {
                                advance(&net, c);
                            }
                        }
                    }
                } else if token == TOKEN_CTRL {
                    if ctrl.state == RState::WaitDrift && ctrl.pending.is_none() {
                        let gi = ctrl.probe_next;
                        let seq = net.submit(ctrl.conns[gi], &Message::VersionQuery);
                        ctrl.pending = Some((seq, CtrlKind::Probe));
                    } else if ctrl.state == RState::WaitDrift {
                        net.schedule_wakeup(PROBE_EVERY, TOKEN_CTRL);
                    }
                } else if token >= TOKEN_AGENT {
                    let i = (token - TOKEN_AGENT) as usize;
                    let a = &agents[i];
                    if a.alive {
                        net.submit(
                            a.conn,
                            &Message::Heartbeat {
                                gateway_id: a.id,
                                epoch: a.epoch,
                                stats: Some(a.gateway.stats()),
                            },
                        );
                    }
                } else {
                    let i = token as usize;
                    let c = &mut clients[i];
                    if c.pending.is_some() {
                        continue;
                    }
                    match c.state {
                        CState::Boot | CState::AwaitDir => {
                            let seq = net.submit(c.dir_conn, &Message::DirectoryQuery);
                            c.pending = Some((seq, CKind::Query));
                        }
                        CState::Stream => advance(&net, c),
                        CState::Greet | CState::Held | CState::Done => {}
                    }
                }
            }
            NetEvent::Idle => {
                let stuck: Vec<usize> =
                    clients.iter().enumerate().filter(|(_, c)| !c.done()).map(|(i, _)| i).collect();
                return Err(fail(
                    format!(
                        "event queue drained with ctrl {:?} and clients {stuck:?} unfinished — \
                         a request or timer was lost (liveness violation)",
                        ctrl.state
                    ),
                    net.trace(),
                ));
            }
        }
    }

    // ---- Contracts ----------------------------------------------------
    if !killed || ctrl.state != RState::Done {
        return Err(fail(
            format!(
                "the run finished without its chaos: killed={killed} ctrl={:?} (the \
                 stage-ack kill trigger never fired)",
                ctrl.state
            ),
            net.trace(),
        ));
    }
    if ctrl.skipped != [VICTIM] {
        return Err(fail(
            format!("expected exactly the victim skipped mid-swap, got {:?}", ctrl.skipped),
            net.trace(),
        ));
    }
    let Some(drift_offset) = drift_seen_at_offset else {
        return Err(fail("rollout ran without ever observing the drift flag".into(), net.trace()));
    };
    if drift_offset < shift_at {
        return Err(fail(
            format!(
                "drift flagged while the furthest client had pushed only {drift_offset} rows \
                 (shift starts at {shift_at}) — the monitor tripped on the base distribution"
            ),
            net.trace(),
        ));
    }
    let delivered_rows: usize = clients.iter().map(|c| c.pulled_rows).sum();
    if delivered_rows != total {
        return Err(fail(
            format!(
                "delivered {delivered_rows} rows for {total} pushed — {} (exactly-once \
                 violated across the mid-swap kill)",
                if delivered_rows < total { "frames lost" } else { "frames duplicated" }
            ),
            net.trace(),
        ));
    }

    // Version-pure, bit-identical delivery: per client the version tape
    // is non-decreasing and every row equals the reference codec of its
    // producing version run over the same stream.
    let mut ref_v0 = AsymmetricAutoencoder::new(&codec_cfg).expect("valid codec config");
    let mut ref_v1 = ref_v0.with_encoder(&ckpt).expect("same geometry");
    let mut v0_rows = 0usize;
    let mut v1_rows = 0usize;
    for (i, c) in clients.iter().enumerate() {
        if c.pulled_versions.windows(2).any(|w| w[0] > w[1]) {
            return Err(fail(
                format!("client {i}: version tape {:?} regressed", c.pulled_versions),
                net.trace(),
            ));
        }
        let mut codes = Matrix::zeros(0, 0);
        let mut recon0 = Matrix::zeros(0, 0);
        let mut recon1 = Matrix::zeros(0, 0);
        ref_v0.encode_batch(c.frames.as_view(), &mut codes).expect("geometry fits");
        ref_v0.decode_batch(codes.as_view(), &mut recon0).expect("geometry fits");
        ref_v1.encode_batch(c.frames.as_view(), &mut codes).expect("geometry fits");
        ref_v1.decode_batch(codes.as_view(), &mut recon1).expect("geometry fits");
        for (r, &v) in c.pulled_versions.iter().enumerate() {
            let expect = match v {
                0 => recon0.row(r),
                1 => recon1.row(r),
                other => {
                    return Err(fail(
                        format!("client {i}: row {r} claims unknown version {other}"),
                        net.trace(),
                    ));
                }
            };
            if c.pulled[r * input_dim..(r + 1) * input_dim] != *expect {
                return Err(fail(
                    format!(
                        "client {i}: row {r} (version {v}) diverges from the direct \
                         codec path of that version"
                    ),
                    net.trace(),
                ));
            }
            if v == 0 {
                v0_rows += 1;
            } else {
                v1_rows += 1;
            }
        }
    }
    if v1_rows == 0 {
        return Err(fail(
            "no row was ever served by the rolled-out version — the swap went unexercised".into(),
            net.trace(),
        ));
    }

    // The mid-swap kill left the victim serving version 0 with the new
    // version staged-but-never-activated; survivors finished the walk.
    let victim = agents.iter().find(|a| a.id == VICTIM).expect("cast");
    match victim.gateway.handle(Message::VersionQuery) {
        Message::VersionReply { active, staged, .. } => {
            if active.id != 0 || staged.as_ref().map(|v| v.id) != Some(version.id) {
                return Err(fail(
                    format!(
                        "victim died in the wrong phase: active {} staged {:?} (want active 0, \
                         staged Some({}))",
                        active.id,
                        staged.map(|v| v.id),
                        version.id
                    ),
                    net.trace(),
                ));
            }
        }
        other => {
            return Err(fail(format!("victim version query drew {}", other.kind()), net.trace()))
        }
    }

    let mut drift_trips = 0u64;
    let mut swaps_total = 0u64;
    let mut stats_frames = Vec::new();
    let mut trace_export = String::new();
    for a in &agents {
        if a.id == VICTIM {
            continue;
        }
        let snap = a.gateway.stats();
        if snap.active_version != version.id || snap.swaps != 1 {
            return Err(fail(
                format!(
                    "gateway {}: active_version {} swaps {} after the rollout (want {}, 1)",
                    a.id, snap.active_version, snap.swaps, version.id
                ),
                net.trace(),
            ));
        }
        if snap.queue_depth != 0 || snap.stored_codes != 0 {
            return Err(fail(
                format!(
                    "gateway {} not drained: queue_depth {} stored_codes {}",
                    a.id, snap.queue_depth, snap.stored_codes
                ),
                net.trace(),
            ));
        }
        drift_trips += snap.drift_trips;
        swaps_total += snap.swaps;
        let mut frame = Vec::new();
        Message::StatsReply(snap).encode_into(&mut frame);
        stats_frames.push(frame);
        trace_export.push_str(&format!("gateway {}\n", a.id));
        trace_export.push_str(&a.gateway.trace_export());
    }
    let _ = swaps_total;
    if drift_trips == 0 {
        return Err(fail(
            "no surviving gateway ever tripped its drift monitor".into(),
            net.trace(),
        ));
    }
    let (_, evictions, _) = directory.fleet_stats();
    if evictions == 0 {
        return Err(fail(
            "the directory never recorded an eviction despite the kill".into(),
            net.trace(),
        ));
    }

    let mut digest_bytes = Vec::with_capacity(delivered_rows * (input_dim * 4 + 8));
    for c in &clients {
        for (r, &v) in c.pulled_versions.iter().enumerate() {
            digest_bytes.extend_from_slice(&v.to_le_bytes());
            for val in &c.pulled[r * input_dim..(r + 1) * input_dim] {
                digest_bytes.extend_from_slice(&val.to_le_bytes());
            }
        }
    }
    Ok(RolloutOutcome {
        name: name.to_string(),
        seed,
        clients: clients.len(),
        frames_per_client,
        delivered_rows,
        v0_rows,
        v1_rows,
        drift_trips,
        gave_ups: clients.iter().map(|c| c.gave_ups).sum(),
        reconnects: clients.iter().map(|c| c.reconnects).sum(),
        final_epoch: directory.epoch(),
        stats_frames,
        trace_export,
        decoded_fnv: fnv1a64(&digest_bytes),
        trace: net.trace(),
    })
}

/// Advances the controller's fleet walk past gateway index `gi`:
/// proposes to the next gateway, or completes the rollout and schedules
/// the clients' release.
fn ctrl_advance(
    net: &DesNet,
    ctrl: &mut Controller,
    gi: usize,
    version: &ModelVersion,
    ckpt: &EncoderCheckpoint,
) -> Result<(), String> {
    let next = gi + 1;
    if next < GATEWAYS.len() {
        ctrl.state = RState::Rolling { gi: next };
        ctrl.submit_propose(net, next, version, ckpt);
    } else {
        ctrl.state = RState::Done;
        // Release the held clients: their tails now race the fresh swap
        // (and, for the victim's clients, the corpse).
        net.schedule_wakeup(Duration::from_millis(10), TOKEN_RELEASE);
    }
    Ok(())
}

/// Handles a reply on one of the controller's gateway connections.
#[allow(clippy::too_many_arguments)]
fn on_ctrl_reply(
    net: &DesNet,
    ctrl: &mut Controller,
    seq: u64,
    reply: Message,
    version: &ModelVersion,
    ckpt: &EncoderCheckpoint,
    clients: &[ClientActor],
    agents: &mut [Agent],
    killed: &mut bool,
    drift_seen_at_offset: &mut Option<usize>,
) -> Result<(), String> {
    let Some((want, kind)) = ctrl.pending.take() else {
        return Ok(()); // a straggler reply from a connection we failed away from
    };
    if want != seq {
        return Err(format!("controller: expected reply seq {want}, got {seq}"));
    }
    match (kind, reply) {
        (CtrlKind::Probe, Message::VersionReply { drift, .. }) => {
            if drift && ctrl.state == RState::WaitDrift {
                // Record how far the furthest client had pushed when the
                // flag was first seen: the drift-before-rollout contract.
                *drift_seen_at_offset = Some(clients.iter().map(|c| c.offset).max().unwrap_or(0));
                ctrl.state = RState::Rolling { gi: 0 };
                ctrl.submit_propose(net, 0, version, ckpt);
            } else {
                ctrl.probe_next = (ctrl.probe_next + 1) % GATEWAYS.len();
                net.schedule_wakeup(PROBE_EVERY, TOKEN_CTRL);
            }
            Ok(())
        }
        (CtrlKind::Propose { gi }, Message::RolloutAck { version_id, accepted, detail }) => {
            if version_id != version.id || !accepted {
                return Err(format!(
                    "gateway {} refused to stage version {version_id}: {detail}",
                    GATEWAYS[gi]
                ));
            }
            if GATEWAYS[gi] == VICTIM {
                // The mid-swap kill: the victim acked the stage; it dies
                // before the activate can land.
                *killed = true;
                net.kill_endpoint(VICTIM as usize);
                let victim = agents.iter_mut().find(|a| a.id == VICTIM).expect("cast");
                victim.alive = false;
            }
            ctrl.submit_activate(net, gi, version.id);
            Ok(())
        }
        (CtrlKind::Activate { gi }, Message::RolloutAck { version_id, accepted, detail }) => {
            if version_id != version.id || !accepted {
                return Err(format!(
                    "gateway {} refused to activate version {version_id}: {detail}",
                    GATEWAYS[gi]
                ));
            }
            ctrl_advance(net, ctrl, gi, version, ckpt)
        }
        (kind, Message::ErrorReply { code, detail }) => {
            Err(format!("controller: {kind:?} drew {code:?}: {detail}"))
        }
        (kind, other) => Err(format!("controller: {kind:?} drew unexpected {}", other.kind())),
    }
}

/// Handles a reply on an agent's directory connection and schedules its
/// next beat.
fn on_agent_reply(net: &DesNet, a: &mut Agent, reply: Message) -> Result<(), String> {
    if !a.alive {
        return Ok(()); // a straggler reply to a gateway that died meanwhile
    }
    match reply {
        Message::RegisterAck { epoch, members } | Message::HeartbeatAck { epoch, members } => {
            if epoch != a.epoch || a.gateway.fleet_view().is_none() {
                a.epoch = epoch;
                a.install_view(epoch, members);
            }
        }
        Message::ErrorReply { .. } => {
            // Evicted (a heartbeat outlasted the timeout): re-register.
            let addr = format!("des:{}", a.ep);
            let nonce = a.id.wrapping_mul(GOLDEN) ^ 0x666C_6565;
            let mac = auth::register_mac(SECRET, a.id, &addr, nonce);
            net.submit(a.conn, &Message::Register { gateway_id: a.id, addr, nonce, mac });
            return Ok(());
        }
        other => return Err(format!("agent {}: unexpected {}", a.id, other.kind())),
    }
    net.schedule_wakeup(BEAT_EVERY, TOKEN_AGENT + (a.id - 1));
    Ok(())
}

/// Handles a reply on a client's directory connection: adopt the view
/// and (re)greet the owner.
fn on_dir_reply(
    net: &DesNet,
    c: &mut ClientActor,
    i: usize,
    seq: u64,
    reply: Message,
    roles: &mut Vec<Role>,
) -> Result<(), String> {
    let Some((want, CKind::Query)) = c.pending.take() else {
        return Err(format!("client {i}: directory reply with no query pending"));
    };
    if want != seq {
        return Err(format!("client {i}: expected dir reply seq {want}, got {seq}"));
    }
    let Message::DirectoryReply { epoch: _, members } = reply else {
        return Err(format!("client {i}: expected DirectoryReply, got {}", reply.kind()));
    };
    let Some(owner) = owner_of(&members, c.cluster).cloned() else {
        net.schedule_wakeup(c.backoff.next_delay(), i as u64);
        return Ok(());
    };
    let owner_ep = ep_of_addr(&owner.addr);
    if !net.endpoint_alive(owner_ep) {
        // The directory has not noticed the death yet: requery after a
        // backoff.
        c.state = CState::AwaitDir;
        net.schedule_wakeup(c.backoff.next_delay(), i as u64);
        return Ok(());
    }
    greet(net, c, i, owner_ep, roles);
    Ok(())
}

/// Dials (or fails over the existing data session to) `owner_ep` and
/// submits the MAC'd `Hello`.
fn greet(net: &DesNet, c: &mut ClientActor, i: usize, owner_ep: usize, roles: &mut Vec<Role>) {
    let conn = match c.data_conn {
        Some(old) => {
            c.reconnects += 1;
            net.reconnect_to(old, owner_ep)
        }
        None => net.connect_to(owner_ep),
    };
    assert_eq!(conn, roles.len(), "connection ids must stay dense");
    roles.push(Role::ClientData(i));
    c.data_conn = Some(conn);
    c.data_ep = owner_ep;
    c.state = CState::Greet;
    let client_id = c.cluster;
    let nonce = client_id.wrapping_mul(GOLDEN) ^ 0x6F72_636F;
    let mac = auth::hello_mac(SECRET, client_id, nonce);
    let seq = net.submit(conn, &Message::Hello { client_id, nonce, mac });
    c.pending = Some((seq, CKind::Hello));
}

/// Drives the window loop: drain the last window, push the next, park
/// at the hold point, or finish. Only valid in `Stream` with nothing
/// pending.
fn advance(net: &DesNet, c: &mut ClientActor) {
    debug_assert_eq!(c.state, CState::Stream);
    debug_assert!(c.pending.is_none());
    let conn = c.data_conn.expect("streaming requires a data connection");
    if c.pulled_rows < c.offset {
        let seq = net.submit(
            conn,
            &Message::PullDecoded { cluster_id: c.cluster, max_frames: PULL_CHUNK, trace: 0 },
        );
        c.pending = Some((seq, CKind::Pull));
    } else if c.offset < c.frames.rows() {
        if !c.released && c.offset >= c.hold_at {
            // Park: the tail is released only once the rollout walk
            // completes, so every stream's last quarter races the swap.
            c.state = CState::Held;
            return;
        }
        let (lo, hi) = (c.offset, (c.offset + ROWS_PER_PUSH).min(c.frames.rows()));
        let seq = net.submit(
            conn,
            &Message::PushFrames {
                cluster_id: c.cluster,
                trace: (c.cluster << 20) | (lo as u64 + 1),
                frames: c.frames.view_rows(lo..hi).to_matrix(),
            },
        );
        c.pending = Some((seq, CKind::Push { lo, hi }));
    } else {
        c.state = CState::Done;
    }
}

/// Handles a reply on a client's data connection.
fn on_data_reply(
    net: &DesNet,
    c: &mut ClientActor,
    i: usize,
    seq: u64,
    reply: Message,
    roles: &mut Vec<Role>,
) -> Result<(), String> {
    let Some((want, kind)) = c.pending.take() else {
        return Ok(()); // a straggler from a failed-away connection
    };
    if want != seq {
        return Err(format!("client {i}: expected data reply seq {want}, got {seq}"));
    }
    match (kind, reply) {
        (CKind::Hello, Message::HelloAck { .. }) => {
            c.state = CState::Stream;
            advance(net, c);
            Ok(())
        }
        (CKind::Push { lo, hi }, Message::PushAck { accepted }) => {
            if accepted as usize != hi - lo {
                return Err(format!(
                    "client {i}: partial ack {accepted} for a {}-row push",
                    hi - lo
                ));
            }
            c.offset = hi;
            c.acked += accepted as usize;
            c.backoff.reset();
            advance(net, c);
            Ok(())
        }
        (CKind::Push { .. }, Message::Redirect { cluster_id, epoch: _, addr }) => {
            if cluster_id != c.cluster {
                return Err(format!(
                    "client {i}: redirect for cluster {cluster_id}, pushed {}",
                    c.cluster
                ));
            }
            debug_assert_eq!(c.pulled_rows, c.offset);
            let owner_ep = ep_of_addr(&addr);
            if !net.endpoint_alive(owner_ep) {
                return Err(format!("client {i}: redirected to dead {addr}"));
            }
            greet(net, c, i, owner_ep, roles);
            Ok(())
        }
        (CKind::Pull, Message::Decoded { cluster_id, version, frames }) => {
            if cluster_id != c.cluster {
                return Err(format!(
                    "client {i}: pulled cluster {} got cluster {cluster_id}",
                    c.cluster
                ));
            }
            if frames.rows() == 0 {
                net.schedule_wakeup(c.backoff.next_delay(), i as u64);
                return Ok(());
            }
            c.pulled.extend_from_slice(frames.as_slice());
            c.pulled_versions.extend(std::iter::repeat_n(version, frames.rows()));
            c.pulled_rows += frames.rows();
            if c.pulled_rows > c.acked {
                return Err(format!(
                    "client {i}: pulled {} rows with only {} acked (duplication)",
                    c.pulled_rows, c.acked
                ));
            }
            c.backoff.reset();
            advance(net, c);
            Ok(())
        }
        (kind, Message::Busy { .. }) => Err(format!(
            "client {i}: {kind:?} drew Busy — the gauntlet sizes queues to never backpressure"
        )),
        (kind, Message::ErrorReply { code, detail }) => {
            Err(format!("client {i}: {kind:?} drew {code:?}: {detail}"))
        }
        (kind, other) => Err(format!("client {i}: {kind:?} drew unexpected {}", other.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the empirical basis for [`DRIFT_THRESHOLD`]: the gauntlet
    /// codec reconstructs uniform frames strictly below it and
    /// Bias-shifted frames strictly above it, windowed-mean-wise.
    #[test]
    fn drift_threshold_separates_bands() {
        let mut codec = AsymmetricAutoencoder::new(&codec_config(11)).expect("valid config");
        let mut rng = OrcoRng::from_seed_u64(0xFEE7);
        let base = Matrix::from_fn(64, 32, |_, _| rng.uniform(0.0, 1.0));
        let mut shifted = base.clone();
        let mut drift_rng = OrcoRng::from_seed_u64(1);
        apply_matrix(&mut shifted, Drift::Bias, 1.0, &mut drift_rng);
        let mean = |codec: &mut AsymmetricAutoencoder, x: &Matrix| {
            let mut codes = Matrix::zeros(0, 0);
            let mut recon = Matrix::zeros(0, 0);
            codec.encode_batch(x.as_view(), &mut codes).unwrap();
            codec.decode_batch(codes.as_view(), &mut recon).unwrap();
            let mut sum = 0.0f32;
            for (a, b) in x.as_slice().iter().zip(recon.as_slice()) {
                sum += (a - b) * (a - b);
            }
            sum / x.as_slice().len() as f32
        };
        let base_mean = mean(&mut codec, &base);
        let shifted_mean = mean(&mut codec, &shifted);
        assert!(
            base_mean < DRIFT_THRESHOLD - 0.02,
            "base band {base_mean} too close to the threshold {DRIFT_THRESHOLD}"
        );
        assert!(
            shifted_mean > DRIFT_THRESHOLD + 0.02,
            "shifted band {shifted_mean} too close to the threshold {DRIFT_THRESHOLD}"
        );
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let err = run_rollout_scenario("nope", 1, true).unwrap_err();
        assert!(err.detail.contains("unknown rollout scenario"), "{}", err.detail);
    }

    #[test]
    fn rollout_storm_quick_runs_and_replays() {
        let outcome = run_rollout_scenario("rollout_storm", 0xC4A05, true)
            .unwrap_or_else(|e| panic!("storm failed: {e}"));
        assert_eq!(outcome.delivered_rows, outcome.clients * outcome.frames_per_client);
        assert!(outcome.v1_rows > 0);
        let log = RunLog {
            name: outcome.name.clone(),
            seed: outcome.seed,
            quick: true,
            trace: outcome.trace.clone(),
        };
        let replayed =
            replay_rollout_scenario(&log).unwrap_or_else(|e| panic!("replay failed: {e}"));
        assert_eq!(replayed.decoded_fnv, outcome.decoded_fnv);
        assert_eq!(replayed.stats_frames, outcome.stats_frames);
        assert_eq!(replayed.trace_export, outcome.trace_export);
        assert_eq!(replayed.v0_rows, outcome.v0_rows);
        assert_eq!(replayed.v1_rows, outcome.v1_rows);
    }
}
