//! # orco-rollout
//!
//! Drift-aware **live model rollout** for the OrcoDCS serving layer: the
//! control plane that notices a drifting field distribution, ships a
//! retrained encoder to a running gateway fleet, and cuts it over
//! **without dropping or reordering a single frame**.
//!
//! The paper motivates online adaptation (§I, §III-D): sensing
//! distributions drift, and an offline-trained codec quietly degrades.
//! The serving layer already detects this — gateways sample decoded
//! reconstructions through a [`orcodcs::FineTuneMonitor`]
//! ([`orco_serve::GatewayConfig::drift_sample_every`]) and surface trips
//! as the `drift` flag on [`orco_serve::StatsSnapshot`] and on
//! [`orco_serve::Message::VersionReply`]. This crate closes the loop:
//!
//! * **Staging** — [`rollout_one`] ships an [`orcodcs::EncoderCheckpoint`]
//!   as a [`orco_serve::ModelVersion`] via the MAC'd
//!   `RolloutPropose`/`ActivateVersion` wire lifecycle. Version ids are
//!   monotonic, so replayed or reordered proposals can never regress a
//!   gateway.
//! * **Zero-drop cutover** — the gateway swaps codecs only at a flush
//!   boundary: pending rows flush under the old codec first, stored rows
//!   drain through the codec that encoded them, and every delivery is
//!   tagged with its producing version. No flush ever mixes versions.
//! * **Rollback guard** — a gateway configured with
//!   [`orco_serve::GatewayConfig::rollback_guard`] watches the post-swap
//!   windowed reconstruction error and reverts to the prior codec on
//!   regression; [`rollout_one`] surfaces the final state in the
//!   returned [`orco_serve::VersionInfo`].
//! * **Staged fleets** — [`rollout_staged`] walks a fleet one gateway at
//!   a time, aborting on the first refusal so a bad version never
//!   reaches the whole fleet.
//!
//! The [`scenarios`] module adds `rollout_storm` to the chaos gauntlet:
//! a 3-gateway fleet over impaired DES links, drift injected mid-run, a
//! staged rollout racing it, one gateway killed mid-swap — and the whole
//! run replayable bit-identically from its tape (`cargo run -p
//! orco-rollout --bin chaos -- --scenario rollout_storm`).
//!
//! ## Quickstart (in-process loopback)
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use orco_rollout::rollout_one;
//! use orco_serve::{Clock, Client, Gateway, GatewayConfig, Loopback, ModelVersion, PushOutcome};
//! use orcodcs::{AsymmetricAutoencoder, Codec, OrcoConfig};
//! use orco_tensor::Matrix;
//!
//! let config = OrcoConfig::for_dataset(orco_datasets::DatasetKind::MnistLike)
//!     .with_latent_dim(16);
//! let gateway = Arc::new(Gateway::new(
//!     GatewayConfig { shards: 2, batch_max_frames: 8, ..GatewayConfig::default() },
//!     Clock::manual(Duration::from_micros(100)),
//!     |_| Box::new(AsymmetricAutoencoder::new(&config).expect("valid config")) as Box<dyn Codec>,
//! )?);
//! let mut client = Client::connect(&Loopback::new(Arc::clone(&gateway)))?;
//! let info = client.hello(1)?;
//! assert_eq!(info.active_version, 0); // the boot model
//!
//! // Rows pushed before the swap are served by the boot model ...
//! client.push(7, Matrix::zeros(4, 784).as_view())?;
//!
//! // ... even when a new encoder (here: a freshly seeded one standing in
//! // for a retrain) is rolled out while they are still in flight.
//! let donor = AsymmetricAutoencoder::new(&config.clone().with_seed(99))?;
//! let ckpt = donor.checkpoint().expect("autoencoder codecs checkpoint");
//! let version = ModelVersion { id: 1, label: "retrain".into(), frame_dim: 784, code_dim: 16 };
//! let state = rollout_one(&mut client, version, &ckpt)?;
//! assert_eq!(state.active.id, 1);
//!
//! let (served_by, frames) = client.pull_versioned(7, 64)?;
//! assert_eq!((served_by, frames.rows()), (0, 4)); // zero-drop: old rows, old codec
//! # Ok::<(), orcodcs::OrcoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenarios;

use orco_serve::{Client, Connection, ModelVersion, VersionInfo};
use orcodcs::{EncoderCheckpoint, OrcoError};

pub use scenarios::{
    replay_rollout_scenario, run_rollout_scenario, RolloutOutcome, ROLLOUT_GAUNTLET,
};

/// Stages `checkpoint` as `version` on the gateway behind `client` and
/// activates it, returning the gateway's post-swap version state.
///
/// The two-step wire lifecycle (`RolloutPropose` → `ActivateVersion`) is
/// driven back to back; the gateway still cuts over only at a flush
/// boundary, so in-flight rows are never dropped or re-encoded. The
/// client must carry the gateway's auth secret
/// ([`Client::set_auth_secret`]) when the gateway is authenticated.
///
/// # Errors
///
/// Propagates transport errors; surfaces a gateway refusal (geometry
/// mismatch, stale version id, bad MAC) as [`OrcoError::Config`]. Also
/// errors when the gateway reports a different active version after the
/// swap — the rollback guard may already have reverted it.
pub fn rollout_one<C: Connection>(
    client: &mut Client<C>,
    version: ModelVersion,
    checkpoint: &EncoderCheckpoint,
) -> Result<VersionInfo, OrcoError> {
    let id = version.id;
    client.propose_rollout(version, checkpoint)?;
    client.activate_version(id)?;
    let info = client.version_info()?;
    if info.active.id != id {
        return Err(OrcoError::Config {
            detail: format!(
                "gateway activated version {id} but now serves {} (rollbacks: {})",
                info.active.id, info.rollbacks
            ),
        });
    }
    Ok(info)
}

/// Rolls `version` out across a fleet **one gateway at a time**, in
/// slice order, aborting on the first gateway that refuses or rolls
/// back — a bad version stops at the first canary instead of reaching
/// the whole fleet.
///
/// Returns the per-gateway [`VersionInfo`] in rollout order on success.
///
/// # Errors
///
/// As [`rollout_one`]; the error names the gateway index it stopped at,
/// and earlier gateways are left serving the new version (roll forward
/// or rely on their rollback guards — this helper never auto-reverts).
pub fn rollout_staged<C: Connection>(
    clients: &mut [Client<C>],
    version: &ModelVersion,
    checkpoint: &EncoderCheckpoint,
) -> Result<Vec<VersionInfo>, OrcoError> {
    let mut states = Vec::with_capacity(clients.len());
    for (i, client) in clients.iter_mut().enumerate() {
        match rollout_one(client, version.clone(), checkpoint) {
            Ok(info) => states.push(info),
            Err(e) => {
                return Err(OrcoError::Config {
                    detail: format!(
                        "staged rollout of version {} halted at gateway {i}/{}: {e}",
                        version.id,
                        clients.len()
                    ),
                });
            }
        }
    }
    Ok(states)
}
