//! Deterministic gradient-check units: finite differences vs analytic
//! backward passes for the dense layer, the convolutional layer, and the
//! Huber losses, at fixed seeds. These complement the randomized sweeps in
//! `gradient_properties.rs` with stable, debuggable cases wired straight to
//! `orco_nn::gradcheck`.
//!
//! On tolerances: `check_layer` uses f32 central differences with
//! `eps = 1e-2`. For a coordinate with a small gradient the difference
//! `L(+ε) − L(−ε)` cancels down to f32 rounding noise, which puts the
//! method's floor near 1e-3 relative error even for perfectly correct
//! analytic gradients. The tests therefore assert 1e-3 where the
//! construction keeps every checked coordinate well-conditioned, and a
//! documented small multiple of it where the layer mixes coordinate scales.

use orco_nn::gradcheck::check_layer;
use orco_nn::{Activation, Conv2d, Dense, Layer, Loss};
use orco_tensor::{Matrix, OrcoRng};

/// Tolerance for well-conditioned checks (the method's floor).
const TOL: f32 = 1e-3;

/// Tolerance for layers whose parameter scales spread the FD conditioning
/// (sigmoid/tanh saturation, conv weight sharing): a small multiple of the
/// floor, still far below any real backward-pass bug (which shows up at
/// 1e-1 to 1e0).
const TOL_MIXED: f32 = 5e-3;

fn input_for(layer: &dyn Layer, batch: usize, rng: &mut OrcoRng) -> (Matrix, Matrix) {
    let x = Matrix::from_fn(batch, layer.input_dim(), |_, _| rng.uniform(-1.0, 1.0));
    let t = Matrix::from_fn(batch, layer.output_dim(), |_, _| rng.uniform(-0.8, 0.8));
    (x, t)
}

#[test]
fn dense_identity_l2_gradients() {
    let mut rng = OrcoRng::from_label("gc-dense-id", 0);
    let mut layer = Dense::new(6, 4, Activation::Identity, &mut rng);
    let (x, t) = input_for(&layer, 3, &mut rng);
    let report = check_layer(&mut layer, &x, &t, &Loss::L2, 50);
    assert!(report.passes(TOL), "{report:?}");
}

#[test]
fn dense_sigmoid_l2_gradients() {
    let mut rng = OrcoRng::from_label("gc-dense-sig", 0);
    let mut layer = Dense::new(8, 5, Activation::Sigmoid, &mut rng);
    let (x, t) = input_for(&layer, 2, &mut rng);
    let report = check_layer(&mut layer, &x, &t, &Loss::L2, 50);
    assert!(report.passes(TOL_MIXED), "{report:?}");
}

#[test]
fn dense_tanh_huber_gradients() {
    let mut rng = OrcoRng::from_label("gc-dense-huber", 0);
    let mut layer = Dense::new(5, 3, Activation::Tanh, &mut rng);
    let (x, t) = input_for(&layer, 2, &mut rng);
    // δ = 4: every residual stays in the quadratic (smooth) Huber regime,
    // so finite differences never straddle the δ kink.
    let report = check_layer(&mut layer, &x, &t, &Loss::Huber { delta: 4.0 }, 40);
    assert!(report.passes(TOL_MIXED), "{report:?}");
}

#[test]
fn dense_huber_linear_regime_gradients() {
    let mut rng = OrcoRng::from_label("gc-dense-huber-lin", 0);
    let mut layer = Dense::new(5, 3, Activation::Identity, &mut rng);
    let x = Matrix::from_fn(2, 5, |_, _| rng.uniform(-1.0, 1.0));
    // Targets far from any reachable output: residuals sit deep in the
    // linear Huber branch, away from both kinks.
    let t = Matrix::from_fn(2, 3, |_, _| 10.0 + rng.uniform(0.0, 1.0));
    let report = check_layer(&mut layer, &x, &t, &Loss::Huber { delta: 0.5 }, 40);
    assert!(report.passes(TOL_MIXED), "{report:?}");
}

#[test]
fn dense_vector_huber_gradients() {
    let mut rng = OrcoRng::from_label("gc-dense-vhuber", 0);
    let mut layer = Dense::new(6, 4, Activation::Sigmoid, &mut rng);
    let (x, t) = input_for(&layer, 2, &mut rng);
    // δ large enough that each sample's L1 residual stays quadratic.
    let report = check_layer(&mut layer, &x, &t, &Loss::VectorHuber { delta: 8.0 }, 40);
    assert!(report.passes(TOL_MIXED), "{report:?}");
}

#[test]
fn conv_identity_l2_gradients() {
    let mut rng = OrcoRng::from_label("gc-conv-id", 0);
    let mut layer = Conv2d::new(1, 5, 5, 2, 3, 1, 1, Activation::Identity, &mut rng);
    let (x, t) = input_for(&layer, 2, &mut rng);
    let report = check_layer(&mut layer, &x, &t, &Loss::L2, 40);
    assert!(report.passes(TOL_MIXED), "{report:?}");
}

#[test]
fn conv_sigmoid_huber_gradients() {
    let mut rng = OrcoRng::from_label("gc-conv-huber", 0);
    let mut layer = Conv2d::new(2, 4, 4, 2, 3, 1, 1, Activation::Sigmoid, &mut rng);
    let (x, t) = input_for(&layer, 1, &mut rng);
    let report = check_layer(&mut layer, &x, &t, &Loss::Huber { delta: 4.0 }, 30);
    // Conv weight sharing sums contributions of opposite sign across
    // positions, so individual shared weights can have near-cancelled
    // gradients whose FD probes are noise-dominated; 2e-2 still separates
    // cleanly from real backward bugs (1e-1 and up).
    assert!(report.passes(2e-2), "{report:?}");
}

/// The Huber losses' own gradients, checked directly (no layer in between)
/// against central finite differences coordinate by coordinate at the
/// method-floor tolerance. Coordinates whose ±ε probe would straddle one of
/// the loss's kinks (element residual 0 or ±δ; per-sample L1 norm δ) are
/// skipped — finite differences are undefined across a kink — and the test
/// asserts that the vast majority of coordinates were actually checked.
#[test]
fn huber_loss_gradients_match_finite_differences() {
    let mut rng = OrcoRng::from_label("gc-loss-fd", 0);
    let eps = 1e-2f32;
    for loss in [Loss::Huber { delta: 0.6 }, Loss::VectorHuber { delta: 1.5 }, Loss::L2] {
        let pred = Matrix::from_fn(2, 7, |_, _| rng.uniform(-1.2, 1.2));
        let target = Matrix::from_fn(2, 7, |_, _| rng.uniform(-1.0, 1.0));
        let analytic = loss.grad(&pred, &target);
        let mut checked = 0usize;
        for flat in 0..pred.len() {
            if straddles_kink(&loss, &pred, &target, flat, eps) {
                continue;
            }
            let mut plus = pred.clone();
            plus.as_mut_slice()[flat] += eps;
            let mut minus = pred.clone();
            minus.as_mut_slice()[flat] -= eps;
            let numeric = (loss.value(&plus, &target) - loss.value(&minus, &target)) / (2.0 * eps);
            let a = analytic.as_slice()[flat];
            let denom = a.abs().max(numeric.abs()).max(1e-2);
            assert!(
                (a - numeric).abs() / denom < TOL,
                "{loss:?} coord {flat}: analytic {a} vs numeric {numeric}"
            );
            checked += 1;
        }
        assert!(
            checked >= pred.len() * 3 / 4,
            "{loss:?}: only {checked}/{} coords checked",
            pred.len()
        );
    }
}

/// Whether perturbing coordinate `flat` by ±ε crosses a non-smooth point
/// of `loss`.
fn straddles_kink(loss: &Loss, pred: &Matrix, target: &Matrix, flat: usize, eps: f32) -> bool {
    let margin = 2.0 * eps;
    let r = pred.as_slice()[flat] - target.as_slice()[flat];
    match *loss {
        Loss::Huber { delta } => (r.abs() - delta).abs() < margin || r.abs() < margin,
        Loss::VectorHuber { delta } => {
            if r.abs() < margin {
                return true; // |r_i| kink of the L1 norm itself.
            }
            let cols = pred.cols();
            let row = flat / cols;
            let l1: f32 =
                pred.row(row).iter().zip(target.row(row)).map(|(a, b)| (a - b).abs()).sum();
            (l1 - delta).abs() < margin // branch switch on the sample norm.
        }
        _ => false,
    }
}
