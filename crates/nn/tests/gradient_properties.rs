//! Property-based gradient checks: every layer's analytic backward pass is
//! validated against central finite differences over randomized shapes,
//! activations, and inputs. This is the safety net under the entire
//! reproduction — a wrong gradient anywhere silently corrupts every figure.

use orco_nn::gradcheck::check_layer;
use orco_nn::{Activation, Conv2d, Dense, Loss, MaxPool2d};
use orco_tensor::{Matrix, OrcoRng};
use proptest::prelude::*;

// Only smooth activations: finite differences straddling the ReLU-family
// kink at 0 produce spurious mismatches (the kinked layers have dedicated
// deterministic unit tests in `orco_nn::gradcheck`).
fn activation_strategy() -> impl Strategy<Value = Activation> {
    prop_oneof![Just(Activation::Identity), Just(Activation::Sigmoid), Just(Activation::Tanh),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_gradients_are_correct(
        in_dim in 2usize..10,
        out_dim in 1usize..8,
        batch in 1usize..4,
        act in activation_strategy(),
        seed in 0u64..10_000,
    ) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let mut layer = Dense::new(in_dim, out_dim, act, &mut rng);
        let x = Matrix::from_fn(batch, in_dim, |_, _| rng.uniform(-1.0, 1.0));
        let t = Matrix::from_fn(batch, out_dim, |_, _| rng.uniform(-0.8, 0.8));
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 30);
        prop_assert!(report.passes(0.08), "{report:?} for {act:?} {in_dim}->{out_dim}");
    }

    #[test]
    fn dense_gradients_under_huber(
        in_dim in 2usize..8,
        out_dim in 1usize..6,
        delta in 0.2f32..2.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let mut layer = Dense::new(in_dim, out_dim, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(2, in_dim, |_, _| rng.uniform(-1.0, 1.0));
        let t = Matrix::from_fn(2, out_dim, |_, _| rng.uniform(0.0, 1.0));
        let report = check_layer(&mut layer, &x, &t, &Loss::Huber { delta }, 25);
        prop_assert!(report.passes(0.1), "{report:?} at delta {delta}");
    }

    #[test]
    fn conv_gradients_are_correct(
        in_c in 1usize..3,
        side in 3usize..6,
        out_c in 1usize..3,
        kernel in 1usize..4,
        act in activation_strategy(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(kernel <= side);
        let mut rng = OrcoRng::from_seed_u64(seed);
        let mut layer = Conv2d::new(in_c, side, side, out_c, kernel, 1, kernel / 2, act, &mut rng);
        use orco_nn::Layer;
        let x = Matrix::from_fn(2, layer.input_dim(), |_, _| rng.uniform(-1.0, 1.0));
        let t = Matrix::from_fn(2, layer.output_dim(), |_, _| rng.uniform(-0.5, 0.5));
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 25);
        prop_assert!(report.passes(0.1), "{report:?} conv {in_c}x{side} k{kernel} -> {out_c}");
    }

    #[test]
    fn maxpool_input_gradients_are_correct(
        c in 1usize..3,
        half in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let side = half * 2;
        let mut rng = OrcoRng::from_seed_u64(seed);
        let mut layer = MaxPool2d::new(c, side, side, 2);
        use orco_nn::Layer;
        // Well-separated values so ±eps never flips a winner.
        let mut order: Vec<usize> = (0..layer.input_dim()).collect();
        rng.shuffle(&mut order);
        let x = Matrix::from_vec(
            1,
            layer.input_dim(),
            order.iter().map(|&v| v as f32 * 0.5).collect(),
        ).unwrap();
        let t = Matrix::from_fn(1, layer.output_dim(), |_, _| rng.uniform(-1.0, 1.0));
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 20);
        prop_assert!(report.max_input_rel_err < 0.08, "{report:?}");
    }

    /// Loss gradients themselves: directional-derivative consistency.
    #[test]
    fn loss_gradients_match_directional_derivative(
        cols in 2usize..10,
        seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let mut rng = OrcoRng::from_seed_u64(seed);
        let loss = match which {
            0 => Loss::L2,
            1 => Loss::Huber { delta: 0.5 },
            2 => Loss::VectorHuber { delta: 0.4 * cols as f32 },
            _ => Loss::L1,
        };
        let pred = Matrix::from_fn(2, cols, |_, _| rng.uniform(-1.0, 1.0));
        let target = Matrix::from_fn(2, cols, |_, _| rng.uniform(-1.0, 1.0));
        let dir = Matrix::from_fn(2, cols, |_, _| rng.uniform(-1.0, 1.0));
        let eps = 1e-2f32;
        let plus = &pred + &dir.scale(eps);
        let minus = &pred - &dir.scale(eps);
        let numeric = (loss.value(&plus, &target) - loss.value(&minus, &target)) / (2.0 * eps);
        let analytic = loss.grad(&pred, &target).dot(&dir);
        // L1/Huber kinks can make single points disagree; allow slack
        // proportional to the direction's magnitude.
        let tol = 0.05 * (1.0 + dir.norm_l1() / dir.len() as f32);
        prop_assert!((numeric - analytic).abs() < tol,
            "{loss:?}: numeric {numeric} vs analytic {analytic}");
    }
}
