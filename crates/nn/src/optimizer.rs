use orco_tensor::Matrix;

use crate::layer::Param;

/// A first-order gradient optimizer with per-parameter state.
///
/// The paper trains the asymmetric autoencoder with stochastic gradient
/// descent (eq. 5); Adam and momentum variants are provided because the
/// baselines and sensitivity sweeps converge noticeably faster with them and
/// the choice is orthogonal to the framework design.
///
/// State (momentum/second-moment buffers) is keyed by the *position* of each
/// parameter in the `Vec<Param>` handed to [`Optimizer::step`], so a given
/// optimizer instance must always be used with the same model.
///
/// # Examples
///
/// ```
/// use orco_nn::Optimizer;
///
/// let opt = Optimizer::adam(1e-3);
/// assert!(format!("{opt:?}").contains("Adam"));
/// ```
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: Kind,
    slots: Vec<Slot>,
    step_count: u64,
    grad_clip: Option<f32>,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Sgd { lr: f32 },
    Momentum { lr: f32, mu: f32 },
    RmsProp { lr: f32, rho: f32, eps: f32 },
    Adam { lr: f32, beta1: f32, beta2: f32, eps: f32 },
}

#[derive(Debug, Clone, Default)]
struct Slot {
    first: Option<Matrix>,  // momentum / first moment
    second: Option<Matrix>, // second moment
}

impl Optimizer {
    /// Plain stochastic gradient descent.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    #[must_use]
    pub fn sgd(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "sgd: lr must be positive");
        Self::with_kind(Kind::Sgd { lr })
    }

    /// SGD with classical momentum `mu`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `mu` is outside `[0, 1)`.
    #[must_use]
    pub fn momentum(lr: f32, mu: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "momentum: lr must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum: mu must be in [0, 1)");
        Self::with_kind(Kind::Momentum { lr, mu })
    }

    /// RMSProp with decay 0.9 and epsilon 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    #[must_use]
    pub fn rmsprop(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "rmsprop: lr must be positive");
        Self::with_kind(Kind::RmsProp { lr, rho: 0.9, eps: 1e-8 })
    }

    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    #[must_use]
    pub fn adam(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "adam: lr must be positive");
        Self::with_kind(Kind::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 })
    }

    fn with_kind(kind: Kind) -> Self {
        Self { kind, slots: Vec::new(), step_count: 0, grad_clip: None }
    }

    /// Enables global gradient-norm clipping at `max_norm`.
    ///
    /// Clipping guards the online training loop against the occasional
    /// exploding batch when the fine-tuning monitor relaunches training on
    /// shifted data.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    #[must_use]
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "grad clip must be positive");
        self.grad_clip = Some(max_norm);
        self
    }

    /// The current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        match self.kind {
            Kind::Sgd { lr }
            | Kind::Momentum { lr, .. }
            | Kind::RmsProp { lr, .. }
            | Kind::Adam { lr, .. } => lr,
        }
    }

    /// Replaces the learning rate (used by decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "set_learning_rate: lr must be positive");
        match &mut self.kind {
            Kind::Sgd { lr: l }
            | Kind::Momentum { lr: l, .. }
            | Kind::RmsProp { lr: l, .. }
            | Kind::Adam { lr: l, .. } => *l = lr,
        }
    }

    /// Number of optimization steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one update to every parameter given its accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between calls (the
    /// optimizer would silently mis-associate its state otherwise).
    pub fn step(&mut self, mut params: Vec<Param<'_>>) {
        if self.slots.is_empty() {
            self.slots = params.iter().map(|_| Slot::default()).collect();
        }
        assert_eq!(
            self.slots.len(),
            params.len(),
            "Optimizer::step: parameter count changed ({} -> {})",
            self.slots.len(),
            params.len()
        );
        self.step_count += 1;

        // Optional global gradient-norm clipping.
        let clip_scale = self.grad_clip.map(|max_norm| {
            let total_sq: f32 =
                params.iter().map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f32>()).sum();
            let norm = total_sq.sqrt();
            if norm > max_norm {
                max_norm / norm
            } else {
                1.0
            }
        });

        for (slot, param) in self.slots.iter_mut().zip(params.iter_mut()) {
            let mut grad = param.grad.clone();
            if let Some(scale) = clip_scale {
                if scale != 1.0 {
                    grad *= scale;
                }
            }
            match self.kind {
                Kind::Sgd { lr } => {
                    param.value.add_scaled_inplace(&grad, -lr);
                }
                Kind::Momentum { lr, mu } => {
                    let vel =
                        slot.first.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    // v = mu*v + g;  w -= lr*v
                    *vel *= mu;
                    *vel += &grad;
                    param.value.add_scaled_inplace(vel, -lr);
                }
                Kind::RmsProp { lr, rho, eps } => {
                    let sq =
                        slot.second.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    for (s, &g) in sq.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                        *s = rho * *s + (1.0 - rho) * g * g;
                    }
                    for ((w, &g), &s) in param
                        .value
                        .as_mut_slice()
                        .iter_mut()
                        .zip(grad.as_slice())
                        .zip(sq.as_slice())
                    {
                        *w -= lr * g / (s.sqrt() + eps);
                    }
                }
                Kind::Adam { lr, beta1, beta2, eps } => {
                    let t = self.step_count as f32;
                    let m =
                        slot.first.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    for (mv, &g) in m.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                        *mv = beta1 * *mv + (1.0 - beta1) * g;
                    }
                    let v =
                        slot.second.get_or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    for (vv, &g) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                        *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                    }
                    let bc1 = 1.0 - beta1.powf(t);
                    let bc2 = 1.0 - beta2.powf(t);
                    for ((w, &mv), &vv) in
                        param.value.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice())
                    {
                        let m_hat = mv / bc1;
                        let v_hat = vv / bc2;
                        *w -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = ½‖w − target‖² with each optimizer; all must converge.
    fn run(opt: &mut Optimizer, iters: usize) -> f32 {
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]).unwrap();
        let mut w = Matrix::zeros(1, 3);
        let mut g = Matrix::zeros(1, 3);
        for _ in 0..iters {
            for ((gi, &wi), &ti) in
                g.as_mut_slice().iter_mut().zip(w.as_slice()).zip(target.as_slice())
            {
                *gi = wi - ti;
            }
            opt.step(vec![Param { value: &mut w, grad: &mut g }]);
        }
        (&w - &target).norm_l2()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(&mut Optimizer::sgd(0.1), 200) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(run(&mut Optimizer::momentum(0.05, 0.9), 200) < 1e-3);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        assert!(run(&mut Optimizer::rmsprop(0.05), 400) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(&mut Optimizer::adam(0.05), 400) < 1e-2);
    }

    #[test]
    fn sgd_single_step_is_exact() {
        let mut opt = Optimizer::sgd(0.5);
        let mut w = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let mut g = Matrix::from_vec(1, 2, vec![0.2, -0.4]).unwrap();
        opt.step(vec![Param { value: &mut w, grad: &mut g }]);
        assert!(w.approx_eq(&Matrix::from_vec(1, 2, vec![0.9, 2.2]).unwrap(), 1e-6));
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn grad_clip_limits_update() {
        let mut opt = Optimizer::sgd(1.0).with_grad_clip(1.0);
        let mut w = Matrix::zeros(1, 2);
        let mut g = Matrix::from_vec(1, 2, vec![30.0, 40.0]).unwrap(); // norm 50
        opt.step(vec![Param { value: &mut w, grad: &mut g }]);
        // Clipped to norm 1 → w = -(0.6, 0.8)
        assert!(w.approx_eq(&Matrix::from_vec(1, 2, vec![-0.6, -0.8]).unwrap(), 1e-5));
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn param_count_change_is_detected() {
        let mut opt = Optimizer::sgd(0.1);
        let mut w = Matrix::zeros(1, 2);
        let mut g = Matrix::zeros(1, 2);
        opt.step(vec![Param { value: &mut w, grad: &mut g }]);
        let mut w2 = Matrix::zeros(1, 2);
        let mut g2 = Matrix::zeros(1, 2);
        opt.step(vec![
            Param { value: &mut w, grad: &mut g },
            Param { value: &mut w2, grad: &mut g2 },
        ]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Optimizer::adam(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
        opt.set_learning_rate(0.001);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn rejects_zero_lr() {
        let _ = Optimizer::sgd(0.0);
    }
}
