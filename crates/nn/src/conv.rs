use orco_tensor::{col2im, im2col, init::Init, Conv2dGeom, Matrix, OrcoRng};

use crate::activation::Activation;
use crate::layer::{Layer, Param};

/// A 2-D convolutional layer lowered to GEMM via im2col.
///
/// Inputs and outputs are [`Matrix`] batches with one flattened
/// `(C, H, W)` sample per row; the layer carries its own geometry so it can
/// be composed inside a [`crate::Sequential`] next to dense layers. DCSNet's
/// 4-convolutional-layer decoder and the follow-up 2-layer CNN classifier
/// are built from this type.
///
/// Kernels are stored as a `(out_c, in_c·k·k)` matrix so the forward pass on
/// one sample is a single `kernels × patches` product.
///
/// # Examples
///
/// ```
/// use orco_nn::{Activation, Conv2d, Layer};
/// use orco_tensor::{Matrix, OrcoRng};
///
/// let mut rng = OrcoRng::from_label("conv-doc", 0);
/// // 1×28×28 input, 8 filters of 3×3, stride 1, pad 1 → 8×28×28 output.
/// let mut conv = Conv2d::new(1, 28, 28, 8, 3, 1, 1, Activation::Relu, &mut rng);
/// let x = Matrix::zeros(2, 784);
/// let y = conv.forward(&x, true);
/// assert_eq!(y.shape(), (2, 8 * 28 * 28));
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    geom: Conv2dGeom,
    out_c: usize,
    kernels: Matrix, // (out_c, in_c*k*k)
    bias: Matrix,    // (1, out_c)
    grad_kernels: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    cached_patches: Vec<Matrix>, // one per sample
    cached_pre: Option<Matrix>,  // (batch, out_c*out_h*out_w)
}

impl Conv2d {
    /// Creates a convolutional layer.
    ///
    /// `in_c`, `in_h`, `in_w` describe the incoming feature map; `out_c`
    /// filters of size `kernel`×`kernel` are applied with the given `stride`
    /// and zero `pad`.
    ///
    /// # Panics
    ///
    /// Panics if `out_c == 0` or the geometry is invalid (see
    /// [`Conv2dGeom::new`]).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        activation: Activation,
        rng: &mut OrcoRng,
    ) -> Self {
        assert!(out_c > 0, "Conv2d: out_c must be non-zero");
        let geom = Conv2dGeom::new(in_c, in_h, in_w, kernel, stride, pad);
        let fan_in = geom.patch_len();
        let fan_out = out_c * kernel * kernel;
        let init = match activation {
            Activation::Relu | Activation::LeakyRelu(_) => Init::HeNormal,
            _ => Init::XavierUniform,
        };
        Self {
            kernels: init.matrix_with_fans(out_c, geom.patch_len(), fan_in, fan_out, rng),
            bias: Matrix::zeros(1, out_c),
            grad_kernels: Matrix::zeros(out_c, geom.patch_len()),
            grad_bias: Matrix::zeros(1, out_c),
            geom,
            out_c,
            activation,
            cached_patches: Vec::new(),
            cached_pre: None,
        }
    }

    /// The convolution geometry.
    #[must_use]
    pub fn geom(&self) -> &Conv2dGeom {
        &self.geom
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Output spatial shape `(out_c, out_h, out_w)`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize, usize) {
        (self.out_c, self.geom.out_h(), self.geom.out_w())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.geom.input_len(),
            "Conv2d::forward: input features {} != expected {}",
            input.cols(),
            self.geom.input_len()
        );
        let positions = self.geom.out_positions();
        let mut pre = Matrix::zeros(input.rows(), self.out_c * positions);
        self.cached_patches.clear();
        for (i, sample) in input.iter_rows().enumerate() {
            let patches = im2col(sample, &self.geom); // (patch_len, positions)
            let conv = self.kernels.matmul(&patches); // (out_c, positions)
            let row = pre.row_mut(i);
            for c in 0..self.out_c {
                let b = self.bias.row(0)[c];
                for (p, &v) in conv.row(c).iter().enumerate() {
                    row[c * positions + p] = v + b;
                }
            }
            self.cached_patches.push(patches);
        }
        let out = self.activation.apply_matrix(&pre);
        self.cached_pre = Some(pre);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let pre = self.cached_pre.as_ref().expect("Conv2d::backward called before forward");
        assert_eq!(grad_output.shape(), pre.shape(), "Conv2d::backward: grad shape mismatch");
        let positions = self.geom.out_positions();
        let batch = grad_output.rows();
        assert_eq!(self.cached_patches.len(), batch, "Conv2d::backward: stale forward cache");

        let delta_all = grad_output.hadamard(&self.activation.derivative_matrix(pre));
        let mut grad_input = Matrix::zeros(batch, self.geom.input_len());

        for i in 0..batch {
            // δ for this sample as (out_c, positions)
            let delta = Matrix::from_vec(self.out_c, positions, delta_all.row(i).to_vec())
                .expect("delta reshape is consistent");
            let patches = &self.cached_patches[i];
            // ∂L/∂K = δ · patchesᵀ   (out_c, patch_len)
            self.grad_kernels += &delta.matmul_t(patches);
            // ∂L/∂b = per-channel sums of δ
            let bias_grad = Matrix::row_vector(&delta.row_sums());
            self.grad_bias += &bias_grad;
            // ∂L/∂patches = Kᵀ · δ  (patch_len, positions), then scatter.
            let grad_patches = self.kernels.t_matmul(&delta);
            let img = col2im(&grad_patches, &self.geom);
            grad_input.row_mut(i).copy_from_slice(&img);
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { value: &mut self.kernels, grad: &mut self.grad_kernels },
            Param { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_kernels.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn input_dim(&self) -> usize {
        self.geom.input_len()
    }

    fn output_dim(&self) -> usize {
        self.out_c * self.geom.out_positions()
    }

    fn param_count(&self) -> usize {
        self.kernels.len() + self.bias.len()
    }

    fn flops_forward(&self) -> u64 {
        // GEMM: out_c × patch_len × positions MACs, ×2 flops each.
        let gemm = 2 * (self.out_c * self.geom.patch_len() * self.geom.out_positions()) as u64;
        let act = self.activation.flops() * self.output_dim() as u64;
        gemm + act
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_padding() {
        let mut rng = OrcoRng::from_label("conv-shape", 0);
        let mut conv = Conv2d::new(3, 8, 8, 4, 3, 1, 1, Activation::Identity, &mut rng);
        let x = Matrix::zeros(2, 3 * 8 * 8);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), (2, 4 * 8 * 8));
        assert_eq!(conv.output_shape(), (4, 8, 8));
    }

    #[test]
    fn stride_halves_resolution() {
        let mut rng = OrcoRng::from_label("conv-stride", 0);
        let conv = Conv2d::new(1, 8, 8, 2, 2, 2, 0, Activation::Relu, &mut rng);
        assert_eq!(conv.output_shape(), (2, 4, 4));
        assert_eq!(conv.output_dim(), 32);
    }

    #[test]
    fn known_convolution_values() {
        let mut rng = OrcoRng::from_label("conv-known", 0);
        let mut conv = Conv2d::new(1, 3, 3, 1, 2, 1, 0, Activation::Identity, &mut rng);
        // Overwrite kernel with an averaging filter via params().
        {
            let mut params = conv.params();
            *params[0].value = Matrix::from_vec(1, 4, vec![0.25; 4]).unwrap();
            *params[1].value = Matrix::zeros(1, 1);
        }
        let x = Matrix::from_vec(1, 9, (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = conv.forward(&x, true);
        // 2x2 means over the four quadrants of the 3x3 image.
        assert!(y.approx_eq(&Matrix::from_vec(1, 4, vec![3.0, 4.0, 6.0, 7.0]).unwrap(), 1e-5));
    }

    #[test]
    fn backward_shapes_and_accumulation() {
        let mut rng = OrcoRng::from_label("conv-back", 0);
        let mut conv = Conv2d::new(2, 5, 5, 3, 3, 1, 1, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(2, 2 * 25, |r, c| ((r * 7 + c) as f32 * 0.01).sin());
        let y = conv.forward(&x, true);
        let gi = conv.backward(&Matrix::ones(2, y.cols()));
        assert_eq!(gi.shape(), x.shape());
        let g1 = conv.grad_kernels.clone();
        let _ = conv.forward(&x, true);
        let _ = conv.backward(&Matrix::ones(2, y.cols()));
        assert!(conv.grad_kernels.approx_eq(&g1.scale(2.0), 1e-4));
    }

    #[test]
    fn param_count() {
        let mut rng = OrcoRng::from_label("conv-count", 0);
        let conv = Conv2d::new(3, 32, 32, 16, 5, 1, 2, Activation::Relu, &mut rng);
        assert_eq!(conv.param_count(), 16 * 75 + 16);
    }
}
