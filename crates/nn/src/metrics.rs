//! Classification metrics for the follow-up application experiments.

use orco_tensor::Matrix;

/// Fraction of rows whose argmax prediction matches the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or the batch is empty.
#[must_use]
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "accuracy: batch size mismatch");
    assert!(!labels.is_empty(), "accuracy: empty batch");
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// One-hot encodes labels into a `(batch, classes)` matrix.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
#[must_use]
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), classes);
    for (r, &l) in labels.iter().enumerate() {
        assert!(l < classes, "one_hot: label {l} >= classes {classes}");
        m[(r, l)] = 1.0;
    }
    m
}

/// A `classes × classes` confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "ConfusionMatrix: classes must be non-zero");
        Self { classes, counts: vec![0; classes * classes] }
    }

    /// Records one `(actual, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(
            actual < self.classes && predicted < self.classes,
            "ConfusionMatrix: class out of range"
        );
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Records a whole batch from logits and labels.
    pub fn record_batch(&mut self, logits: &Matrix, labels: &[usize]) {
        for (pred, &actual) in logits.argmax_rows().iter().zip(labels) {
            self.record(actual, *pred);
        }
    }

    /// Count at `(actual, predicted)`.
    #[must_use]
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    #[must_use]
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall: `diag / row-sum` (`None` when the class was never
    /// observed).
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Per-class precision: `diag / column-sum` (`None` when the class was
    /// never predicted).
    #[must_use]
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / col as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn one_hot_rows() {
        let m = one_hot(&[2, 0], 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "one_hot")]
    fn one_hot_rejects_out_of_range() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn confusion_matrix_accuracy_and_recall() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(cm.recall(1), Some(1.0));
        assert!((cm.precision(1).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn confusion_batch_recording() {
        let logits = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.1, 0.9]).unwrap();
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&logits, &[0, 0]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.recall(1), None);
    }
}
