//! Finite-difference gradient checking.
//!
//! The whole reproduction rests on hand-written backward passes; this module
//! verifies them numerically. Every layer's analytic parameter and input
//! gradients are compared against central differences of the loss. Used by
//! the test suites of `orco-nn`, `orcodcs`, and `orco-baselines`.

use orco_tensor::Matrix;

use crate::layer::Layer;
use crate::loss::Loss;

/// Result of a gradient check: worst relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Worst relative error over all checked parameter coordinates.
    pub max_param_rel_err: f32,
    /// Worst relative error over all checked input coordinates.
    pub max_input_rel_err: f32,
    /// Number of coordinates compared.
    pub coords_checked: usize,
}

impl GradCheckReport {
    /// Whether all errors are below `tol`.
    #[must_use]
    pub fn passes(&self, tol: f32) -> bool {
        self.max_param_rel_err < tol && self.max_input_rel_err < tol
    }
}

fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-4);
    (analytic - numeric).abs() / denom
}

/// Checks one layer's backward pass against central finite differences.
///
/// Evaluates `loss(layer(x), target)` while perturbing every parameter
/// coordinate (subsampled to at most `max_coords` per tensor, deterministic
/// stride) and a sample of input coordinates.
///
/// # Panics
///
/// Panics if `target` width differs from the layer's output width.
pub fn check_layer(
    layer: &mut dyn Layer,
    input: &Matrix,
    target: &Matrix,
    loss: &Loss,
    max_coords: usize,
) -> GradCheckReport {
    let eps = 1e-2f32; // f32 arithmetic: large-ish eps, central differences

    // Analytic gradients.
    layer.zero_grad();
    let out = layer.forward(input, false);
    assert_eq!(out.shape(), target.shape(), "gradcheck: target shape mismatch");
    let grad_out = loss.grad(&out, target);
    let grad_input = layer.backward(&grad_out);

    let analytic_params: Vec<Matrix> = layer.params().iter().map(|p| p.grad.clone()).collect();

    let mut max_param_rel_err = 0.0f32;
    let mut coords_checked = 0usize;

    let n_params = analytic_params.len();
    for pi in 0..n_params {
        let len = analytic_params[pi].len();
        let stride = (len / max_coords).max(1);
        for flat in (0..len).step_by(stride) {
            let numeric = {
                let perturb = |layer: &mut dyn Layer, delta: f32| -> f32 {
                    {
                        let mut params = layer.params();
                        params[pi].value.as_mut_slice()[flat] += delta;
                    }
                    let out = layer.forward(input, false);
                    let v = loss.value(&out, target);
                    {
                        let mut params = layer.params();
                        params[pi].value.as_mut_slice()[flat] -= delta;
                    }
                    v
                };
                let plus = perturb(layer, eps);
                let minus = perturb(layer, -eps);
                (plus - minus) / (2.0 * eps)
            };
            let analytic = analytic_params[pi].as_slice()[flat];
            max_param_rel_err = max_param_rel_err.max(rel_err(analytic, numeric));
            coords_checked += 1;
        }
    }

    // Input gradient.
    let mut max_input_rel_err = 0.0f32;
    let len = input.len();
    let stride = (len / max_coords).max(1);
    for flat in (0..len).step_by(stride) {
        let mut plus = input.clone();
        plus.as_mut_slice()[flat] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[flat] -= eps;
        let vp = loss.value(&layer.forward(&plus, false), target);
        let vm = loss.value(&layer.forward(&minus, false), target);
        let numeric = (vp - vm) / (2.0 * eps);
        let analytic = grad_input.as_slice()[flat];
        max_input_rel_err = max_input_rel_err.max(rel_err(analytic, numeric));
        coords_checked += 1;
    }

    GradCheckReport { max_param_rel_err, max_input_rel_err, coords_checked }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Conv2d, Dense, MaxPool2d};
    use orco_tensor::OrcoRng;

    #[test]
    fn dense_identity_gradients() {
        let mut rng = OrcoRng::from_label("gc-dense-id", 0);
        let mut layer = Dense::new(6, 4, Activation::Identity, &mut rng);
        let x = Matrix::from_fn(3, 6, |r, c| ((r * 13 + c * 7) as f32 * 0.1).sin());
        let t = Matrix::from_fn(3, 4, |r, c| ((r + c) as f32 * 0.2).cos());
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 50);
        assert!(report.passes(0.05), "{report:?}");
    }

    #[test]
    fn dense_sigmoid_gradients() {
        let mut rng = OrcoRng::from_label("gc-dense-sig", 0);
        let mut layer = Dense::new(5, 5, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(2, 5, |r, c| ((r * 3 + c) as f32 * 0.3).sin());
        let t = Matrix::from_fn(2, 5, |_, _| 0.5);
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 50);
        assert!(report.passes(0.05), "{report:?}");
    }

    #[test]
    fn dense_tanh_with_huber_gradients() {
        let mut rng = OrcoRng::from_label("gc-dense-tanh", 0);
        let mut layer = Dense::new(4, 3, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| ((r + 2 * c) as f32 * 0.25).cos());
        let t = Matrix::from_fn(2, 3, |r, c| ((r * c) as f32 * 0.1).sin());
        let report = check_layer(&mut layer, &x, &t, &Loss::Huber { delta: 0.4 }, 40);
        assert!(report.passes(0.08), "{report:?}");
    }

    #[test]
    fn conv_gradients() {
        let mut rng = OrcoRng::from_label("gc-conv", 0);
        let mut layer = Conv2d::new(1, 5, 5, 2, 3, 1, 1, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(2, 25, |r, c| ((r * 25 + c) as f32 * 0.07).sin());
        let t = Matrix::from_fn(2, 50, |_, _| 0.4);
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 40);
        assert!(report.passes(0.08), "{report:?}");
    }

    #[test]
    fn maxpool_input_gradients() {
        let mut layer = MaxPool2d::new(1, 4, 4, 2);
        // Distinct values so argmax is stable under ±eps perturbations.
        let x = Matrix::from_fn(1, 16, |_, c| c as f32 * 0.37 + ((c * 7 % 5) as f32) * 0.01);
        let t = Matrix::from_fn(1, 4, |_, _| 1.0);
        let report = check_layer(&mut layer, &x, &t, &Loss::L2, 30);
        assert!(report.max_input_rel_err < 0.05, "{report:?}");
    }
}
