use orco_tensor::{Matrix, OrcoRng};

use crate::layer::{Layer, Param};

/// Additive Gaussian-noise layer, active only during training.
///
/// This implements eq. (2) of the paper: `Ŷ = Y + N(0, σ²)`. OrcoDCS
/// injects zero-mean Gaussian noise into the latent vectors between the
/// encoder (on the data aggregator) and the decoder (on the edge server) to
/// widen the decoder's learning space and make reconstructions more robust.
/// At inference the layer is the identity.
///
/// The backward pass is the identity: additive noise has unit Jacobian.
///
/// # Examples
///
/// ```
/// use orco_nn::{GaussianNoise, Layer};
/// use orco_tensor::{Matrix, OrcoRng};
///
/// let rng = OrcoRng::from_label("noise-doc", 0);
/// let mut layer = GaussianNoise::new(128, 0.1, rng);
/// let x = Matrix::zeros(4, 128);
/// let noisy = layer.forward(&x, true);
/// assert!(noisy.norm_l2() > 0.0);       // training: noise added
/// let clean = layer.forward(&x, false);
/// assert_eq!(clean.norm_l2(), 0.0);     // inference: identity
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    dim: usize,
    variance: f32,
    rng: OrcoRng,
}

impl GaussianNoise {
    /// Creates a noise layer over `dim`-feature batches with the given
    /// noise **variance** σ² (the paper parameterizes by variance).
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or not finite.
    #[must_use]
    pub fn new(dim: usize, variance: f32, rng: OrcoRng) -> Self {
        assert!(variance.is_finite() && variance >= 0.0, "GaussianNoise: variance must be ≥ 0");
        Self { dim, variance, rng }
    }

    /// The configured noise variance σ².
    #[must_use]
    pub fn variance(&self) -> f32 {
        self.variance
    }

    /// Changes the noise variance (used by sensitivity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or not finite.
    pub fn set_variance(&mut self, variance: f32) {
        assert!(variance.is_finite() && variance >= 0.0, "GaussianNoise: variance must be ≥ 0");
        self.variance = variance;
    }
}

impl Layer for GaussianNoise {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        assert_eq!(input.cols(), self.dim, "GaussianNoise::forward: width mismatch");
        if !train || self.variance == 0.0 {
            return input.clone();
        }
        let std = self.variance.sqrt();
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v += self.rng.normal(0.0, std);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        grad_output.clone()
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn flops_forward(&self) -> u64 {
        self.dim as u64 * 4 // one normal sample + add per element
    }

    fn name(&self) -> &'static str {
        "gaussian_noise"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_statistics_match_variance() {
        let rng = OrcoRng::from_label("noise-stats", 0);
        let mut layer = GaussianNoise::new(1000, 0.25, rng);
        let x = Matrix::zeros(20, 1000);
        let noisy = layer.forward(&x, true);
        let m = noisy.mean();
        let var =
            noisy.as_slice().iter().map(|v| (v - m).powi(2)).sum::<f32>() / noisy.len() as f32;
        assert!(m.abs() < 0.01, "mean {m} should be ~0");
        assert!((var - 0.25).abs() < 0.02, "variance {var} should be ~0.25");
    }

    #[test]
    fn inference_is_identity() {
        let rng = OrcoRng::from_label("noise-id", 0);
        let mut layer = GaussianNoise::new(8, 0.5, rng);
        let x = Matrix::from_fn(3, 8, |r, c| (r * 8 + c) as f32);
        assert_eq!(layer.forward(&x, false), x);
    }

    #[test]
    fn zero_variance_is_identity_even_training() {
        let rng = OrcoRng::from_label("noise-zero", 0);
        let mut layer = GaussianNoise::new(8, 0.0, rng);
        let x = Matrix::ones(2, 8);
        assert_eq!(layer.forward(&x, true), x);
    }

    #[test]
    fn backward_passes_through() {
        let rng = OrcoRng::from_label("noise-bwd", 0);
        let mut layer = GaussianNoise::new(4, 0.3, rng);
        let g = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        assert_eq!(layer.backward(&g), g);
    }

    #[test]
    #[should_panic(expected = "variance")]
    fn rejects_negative_variance() {
        let rng = OrcoRng::from_label("noise-neg", 0);
        let _ = GaussianNoise::new(4, -0.1, rng);
    }
}
