use orco_tensor::{init::Init, MatView, Matrix, OrcoRng};

use crate::activation::Activation;
use crate::layer::{Layer, Param};

/// A fully-connected layer computing `σ(x·Wᵀ + b)` over a batch.
///
/// This is the building block of the OrcoDCS asymmetric autoencoder: the
/// paper's encoder (eq. 1) is a single `Dense(N, M, Sigmoid)` and the
/// decoder (eq. 3) is one or more `Dense(M, N, Sigmoid)` layers.
///
/// Weights are stored as `(out, in)`, so row `j` holds the weights of output
/// unit `j` — which is also the layout the OrcoDCS encoder distribution
/// (§III-C of the paper) slices into per-device columns.
///
/// # Examples
///
/// ```
/// use orco_nn::{Activation, Dense, Layer};
/// use orco_tensor::{Matrix, OrcoRng};
///
/// let mut rng = OrcoRng::from_label("dense-doc", 0);
/// let mut layer = Dense::new(784, 128, Activation::Sigmoid, &mut rng);
/// let batch = Matrix::zeros(16, 784);
/// let latent = layer.forward(&batch, true);
/// assert_eq!(latent.shape(), (16, 128));
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix, // (out, in)
    bias: Matrix,   // (1, out)
    grad_weight: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    cached_input: Option<Matrix>,
    cached_pre: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with the default initialization for its
    /// activation (Xavier for sigmoid/tanh/identity, He for ReLU family).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `output_dim` is zero.
    #[must_use]
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut OrcoRng,
    ) -> Self {
        let init = match activation {
            Activation::Relu | Activation::LeakyRelu(_) => Init::HeNormal,
            _ => Init::XavierUniform,
        };
        Self::with_init(input_dim, output_dim, activation, init, rng)
    }

    /// Creates a dense layer with an explicit weight initializer.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` or `output_dim` is zero.
    #[must_use]
    pub fn with_init(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        init: Init,
        rng: &mut OrcoRng,
    ) -> Self {
        assert!(input_dim > 0, "Dense: input_dim must be non-zero");
        assert!(output_dim > 0, "Dense: output_dim must be non-zero");
        Self {
            weight: init.matrix(output_dim, input_dim, rng),
            bias: Matrix::zeros(1, output_dim),
            grad_weight: Matrix::zeros(output_dim, input_dim),
            grad_bias: Matrix::zeros(1, output_dim),
            activation,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// Creates a dense layer from explicit weights and bias.
    ///
    /// Used by the OrcoDCS protocol when reassembling an encoder from
    /// distributed per-device columns.
    ///
    /// # Panics
    ///
    /// Panics if `bias.cols() != weight.rows()` or `bias.rows() != 1`.
    #[must_use]
    pub fn from_parts(weight: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "Dense: bias must be a row vector");
        assert_eq!(bias.cols(), weight.rows(), "Dense: bias length must equal output dim");
        let (out, inp) = weight.shape();
        Self {
            grad_weight: Matrix::zeros(out, inp),
            grad_bias: Matrix::zeros(1, out),
            weight,
            bias,
            activation,
            cached_input: None,
            cached_pre: None,
        }
    }

    /// The weight matrix, shaped `(output_dim, input_dim)`.
    #[must_use]
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias row vector, shaped `(1, output_dim)`.
    #[must_use]
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// The layer's activation function.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Inference-mode forward over a borrowed batch into a caller-owned
    /// buffer: `out = σ(x·Wᵀ + b)` as one blocked GEMM, a bias broadcast,
    /// and an in-place activation.
    ///
    /// Unlike [`Layer::forward`] this caches nothing for backprop and
    /// allocates nothing once the two caller-owned buffers have grown to
    /// size: `wt_scratch` holds the transposed weight (materialized per
    /// call so the row-streaming [`Matrix::matmul`] kernel — much faster
    /// than per-row dot products on large batches — can be used) and
    /// `out` receives the result. Bit-identical to `forward(x, false)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the layer's input dimension.
    // orco-lint: region(no-alloc)
    pub fn forward_into(&self, x: MatView<'_>, wt_scratch: &mut Matrix, out: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.weight.cols(),
            "Dense::forward_into: input features {} != layer input_dim {}",
            x.cols(),
            self.weight.cols()
        );
        self.weight.transpose_into(wt_scratch);
        out.reset(x.rows(), self.weight.rows());
        x.matmul_into(wt_scratch.as_view(), out.as_view_mut());
        let bias = self.bias.row(0);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        self.activation.apply_inplace(out);
    }
    // orco-lint: endregion

    /// Overwrites weights and bias (e.g. when applying a model update
    /// received over the network).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer's dimensions.
    pub fn set_parts(&mut self, weight: Matrix, bias: Matrix) {
        assert_eq!(weight.shape(), self.weight.shape(), "Dense::set_parts: weight shape mismatch");
        assert_eq!(bias.shape(), self.bias.shape(), "Dense::set_parts: bias shape mismatch");
        self.weight = weight;
        self.bias = bias;
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weight.cols(),
            "Dense::forward: input features {} != layer input_dim {}",
            input.cols(),
            self.weight.cols()
        );
        // pre = x · Wᵀ + b  → (batch, out)
        let pre = input.matmul_t(&self.weight).add_row_broadcast(self.bias.row(0));
        let out = self.activation.apply_matrix(&pre);
        self.cached_input = Some(input.clone());
        self.cached_pre = Some(pre);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        let pre = self.cached_pre.as_ref().expect("Dense::backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (input.rows(), self.weight.rows()),
            "Dense::backward: grad_output shape mismatch"
        );

        // δ = grad_output ⊙ σ'(pre)         (batch, out)
        let delta = grad_output.hadamard(&self.activation.derivative_matrix(pre));
        // ∂L/∂W = δᵀ · x                    (out, in)
        self.grad_weight += &delta.t_matmul(input);
        // ∂L/∂b = column sums of δ          (1, out)
        let bias_grad = Matrix::row_vector(&delta.col_sums());
        self.grad_bias += &bias_grad;
        // ∂L/∂x = δ · W                     (batch, in)
        delta.matmul(&self.weight)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { value: &mut self.weight, grad: &mut self.grad_weight },
            Param { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }

    fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn input_dim(&self) -> usize {
        self.weight.cols()
    }

    fn output_dim(&self) -> usize {
        self.weight.rows()
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn flops_forward(&self) -> u64 {
        let mac = 2 * self.weight.len() as u64; // multiply-accumulate
        let act = self.activation.flops() * self.weight.rows() as u64;
        mac + act
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let w = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![0.1, -0.1]).unwrap();
        let mut layer = Dense::from_parts(w, b, Activation::Identity);
        let x = Matrix::from_vec(1, 3, vec![2.0, 4.0, 6.0]).unwrap();
        let y = layer.forward(&x, true);
        // [2-6+0.1, 1+2+3-0.1] = [-3.9, 5.9]
        assert!(y.approx_eq(&Matrix::from_vec(1, 2, vec![-3.9, 5.9]).unwrap(), 1e-5));
    }

    #[test]
    fn backward_shapes() {
        let mut rng = OrcoRng::from_label("dense-shapes", 0);
        let mut layer = Dense::new(5, 3, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(4, 5, |r, c| (r + c) as f32 * 0.1);
        let _ = layer.forward(&x, true);
        let grad_in = layer.backward(&Matrix::ones(4, 3));
        assert_eq!(grad_in.shape(), (4, 5));
        let params = layer.params();
        assert_eq!(params[0].grad.shape(), (3, 5));
        assert_eq!(params[1].grad.shape(), (1, 3));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = OrcoRng::from_label("dense-acc", 0);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        let x = Matrix::ones(1, 2);
        let g = Matrix::ones(1, 2);
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        let after_one = layer.grad_weight.clone();
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        assert!(layer.grad_weight.approx_eq(&after_one.scale(2.0), 1e-5));
        layer.zero_grad();
        assert_eq!(layer.grad_weight.sum(), 0.0);
    }

    #[test]
    fn param_count_and_flops() {
        let mut rng = OrcoRng::from_label("dense-count", 0);
        let layer = Dense::new(784, 128, Activation::Sigmoid, &mut rng);
        assert_eq!(layer.param_count(), 784 * 128 + 128);
        assert!(layer.flops_forward() >= 2 * 784 * 128);
    }

    #[test]
    fn forward_into_bit_identical_to_forward() {
        let mut rng = OrcoRng::from_label("dense-into", 0);
        for activation in [Activation::Sigmoid, Activation::Relu, Activation::Identity] {
            let mut layer = Dense::new(7, 4, activation, &mut rng);
            let x = Matrix::from_fn(9, 7, |r, c| ((r * 11 + c) as f32 * 0.13).sin());
            let reference = layer.forward(&x, false);
            let mut wt = Matrix::zeros(0, 0);
            let mut out = Matrix::filled(1, 1, f32::NAN); // dirty reused buffer
            layer.forward_into(x.as_view(), &mut wt, &mut out);
            assert_eq!(out, reference, "{activation:?} batched forward diverged");
            // Per-row views must reproduce the batch rows exactly.
            for r in 0..x.rows() {
                layer.forward_into(MatView::from_row(x.row(r)), &mut wt, &mut out);
                assert_eq!(out.row(0), reference.row(r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn forward_rejects_wrong_width() {
        let mut rng = OrcoRng::from_label("dense-bad", 0);
        let mut layer = Dense::new(4, 2, Activation::Identity, &mut rng);
        let _ = layer.forward(&Matrix::zeros(1, 5), true);
    }

    #[test]
    fn set_parts_replaces_weights() {
        let mut rng = OrcoRng::from_label("dense-set", 0);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        let w = Matrix::identity(2);
        let b = Matrix::zeros(1, 2);
        layer.set_parts(w.clone(), b);
        let x = Matrix::from_vec(1, 2, vec![3.0, -4.0]).unwrap();
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }
}
