use orco_tensor::Matrix;

/// A training loss over a batch of predictions and targets.
///
/// The paper's reconstruction error (eq. 4) is a **per-sample vector Huber
/// loss**: it switches between ½‖X − Xr‖₂² and δ‖X − Xr‖₁ − ½δ² depending on
/// whether the *whole residual vector's* L1 norm is within δ — this is
/// [`Loss::VectorHuber`]. The conventional element-wise Huber
/// ([`Loss::Huber`]) is provided for ablation, along with plain L1/L2 and
/// softmax cross-entropy for the follow-up classifier.
///
/// All losses report the **mean over samples** so values are comparable
/// across batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loss {
    /// Mean absolute error.
    L1,
    /// Mean squared error, scaled by ½ per element so the gradient is the
    /// plain residual.
    L2,
    /// Element-wise Huber with threshold δ.
    Huber {
        /// Transition point between the quadratic and linear regimes.
        delta: f32,
    },
    /// The paper's per-sample vector-norm Huber (eq. 4) with threshold δ.
    VectorHuber {
        /// Transition point on the per-sample L1 residual norm.
        delta: f32,
    },
    /// Softmax cross-entropy; targets are one-hot rows.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Mean loss over the batch.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    #[must_use]
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(pred.shape(), target.shape(), "Loss::value: shape mismatch");
        assert!(pred.rows() > 0, "Loss::value: empty batch");
        let n = pred.rows() as f32;
        match *self {
            Loss::L1 => {
                let diff = pred - target;
                diff.norm_l1() / (n * pred.cols() as f32)
            }
            Loss::L2 => {
                let diff = pred - target;
                0.5 * diff.as_slice().iter().map(|v| v * v).sum::<f32>() / (n * pred.cols() as f32)
            }
            Loss::Huber { delta } => {
                assert!(delta > 0.0, "Huber: delta must be positive");
                let mut total = 0.0f32;
                for (p, t) in pred.as_slice().iter().zip(target.as_slice()) {
                    let d = (p - t).abs();
                    total += if d <= delta { 0.5 * d * d } else { delta * d - 0.5 * delta * delta };
                }
                total / (n * pred.cols() as f32)
            }
            Loss::VectorHuber { delta } => {
                assert!(delta > 0.0, "VectorHuber: delta must be positive");
                let mut total = 0.0f32;
                for (p, t) in pred.iter_rows().zip(target.iter_rows()) {
                    let l1: f32 = p.iter().zip(t).map(|(a, b)| (a - b).abs()).sum();
                    if l1 <= delta {
                        let l2sq: f32 = p.iter().zip(t).map(|(a, b)| (a - b).powi(2)).sum();
                        total += 0.5 * l2sq;
                    } else {
                        total += delta * l1 - 0.5 * delta * delta;
                    }
                }
                // Normalize by feature count too, keeping magnitudes
                // comparable with the other reconstruction losses.
                total / (n * pred.cols() as f32)
            }
            Loss::SoftmaxCrossEntropy => {
                let probs = softmax_rows(pred);
                let mut total = 0.0f32;
                for (p, t) in probs.iter_rows().zip(target.iter_rows()) {
                    for (pi, ti) in p.iter().zip(t) {
                        if *ti > 0.0 {
                            total -= ti * pi.max(1e-12).ln();
                        }
                    }
                }
                total / n
            }
        }
    }

    /// Gradient of the mean loss with respect to `pred`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or the batch is empty.
    #[must_use]
    pub fn grad(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape(), "Loss::grad: shape mismatch");
        assert!(pred.rows() > 0, "Loss::grad: empty batch");
        let scale = 1.0 / (pred.rows() as f32 * pred.cols() as f32);
        match *self {
            Loss::L1 => pred.zip_map(target, |p, t| sign(p - t)).scale(scale),
            Loss::L2 => pred.zip_map(target, |p, t| p - t).scale(scale),
            Loss::Huber { delta } => {
                assert!(delta > 0.0, "Huber: delta must be positive");
                pred.zip_map(target, |p, t| {
                    let d = p - t;
                    if d.abs() <= delta {
                        d
                    } else {
                        delta * sign(d)
                    }
                })
                .scale(scale)
            }
            Loss::VectorHuber { delta } => {
                assert!(delta > 0.0, "VectorHuber: delta must be positive");
                let mut out = Matrix::zeros(pred.rows(), pred.cols());
                for r in 0..pred.rows() {
                    let p = pred.row(r);
                    let t = target.row(r);
                    let l1: f32 = p.iter().zip(t).map(|(a, b)| (a - b).abs()).sum();
                    let row = out.row_mut(r);
                    if l1 <= delta {
                        for (o, (a, b)) in row.iter_mut().zip(p.iter().zip(t)) {
                            *o = a - b;
                        }
                    } else {
                        for (o, (a, b)) in row.iter_mut().zip(p.iter().zip(t)) {
                            *o = delta * sign(a - b);
                        }
                    }
                }
                out.scale(scale)
            }
            Loss::SoftmaxCrossEntropy => {
                // d/dz of mean CE with softmax: (softmax(z) - target) / n
                let probs = softmax_rows(pred);
                (&probs - target).scale(1.0 / pred.rows() as f32)
            }
        }
    }

    /// Approximate FLOPs per sample to evaluate this loss on `features`
    /// features (feeds the simulated-compute model).
    #[must_use]
    pub fn flops(&self, features: usize) -> u64 {
        let f = features as u64;
        match self {
            Loss::L1 | Loss::L2 => 3 * f,
            Loss::Huber { .. } | Loss::VectorHuber { .. } => 5 * f,
            Loss::SoftmaxCrossEntropy => 8 * f,
        }
    }
}

fn sign(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Row-wise numerically-stable softmax.
#[must_use]
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_grad(loss: &Loss, pred: &Matrix, target: &Matrix) -> Matrix {
        let eps = 1e-3f32;
        let mut g = Matrix::zeros(pred.rows(), pred.cols());
        for r in 0..pred.rows() {
            for c in 0..pred.cols() {
                let mut plus = pred.clone();
                plus[(r, c)] += eps;
                let mut minus = pred.clone();
                minus[(r, c)] -= eps;
                g[(r, c)] = (loss.value(&plus, target) - loss.value(&minus, target)) / (2.0 * eps);
            }
        }
        g
    }

    #[test]
    fn l2_zero_at_perfect_prediction() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        assert_eq!(Loss::L2.value(&m, &m), 0.0);
        assert_eq!(Loss::L1.value(&m, &m), 0.0);
        assert_eq!(Loss::Huber { delta: 1.0 }.value(&m, &m), 0.0);
        assert_eq!(Loss::VectorHuber { delta: 1.0 }.value(&m, &m), 0.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let pred = Matrix::from_vec(2, 3, vec![0.3, -0.8, 1.2, 0.05, 0.4, -0.15]).unwrap();
        let target = Matrix::from_vec(2, 3, vec![0.1, 0.1, 1.0, 0.0, 0.5, 0.0]).unwrap();
        for loss in [Loss::L2, Loss::Huber { delta: 0.5 }, Loss::VectorHuber { delta: 0.7 }] {
            let analytic = loss.grad(&pred, &target);
            let numeric = fd_grad(&loss, &pred, &target);
            assert!(
                analytic.approx_eq(&numeric, 2e-2),
                "{loss:?}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn softmax_ce_gradient_matches_fd() {
        let pred = Matrix::from_vec(2, 4, vec![1.0, 2.0, -1.0, 0.5, 0.0, 0.1, 0.2, 0.3]).unwrap();
        let mut target = Matrix::zeros(2, 4);
        target[(0, 1)] = 1.0;
        target[(1, 3)] = 1.0;
        let loss = Loss::SoftmaxCrossEntropy;
        let analytic = loss.grad(&pred, &target);
        let numeric = fd_grad(&loss, &pred, &target);
        assert!(analytic.approx_eq(&numeric, 2e-2));
    }

    #[test]
    fn huber_between_l1_and_l2_regimes() {
        // Small residual → behaves quadratically; large → linearly.
        let target = Matrix::zeros(1, 1);
        let small = Matrix::from_vec(1, 1, vec![0.1]).unwrap();
        let large = Matrix::from_vec(1, 1, vec![10.0]).unwrap();
        let h = Loss::Huber { delta: 1.0 };
        assert!((h.value(&small, &target) - 0.005).abs() < 1e-6);
        assert!((h.value(&large, &target) - 9.5).abs() < 1e-4);
    }

    #[test]
    fn huber_is_continuous_at_delta() {
        let target = Matrix::zeros(1, 1);
        let delta = 0.37f32;
        let at = Matrix::from_vec(1, 1, vec![delta]).unwrap();
        let just_above = Matrix::from_vec(1, 1, vec![delta + 1e-5]).unwrap();
        let h = Loss::Huber { delta };
        assert!((h.value(&at, &target) - h.value(&just_above, &target)).abs() < 1e-4);
        let vh = Loss::VectorHuber { delta };
        assert!((vh.value(&at, &target) - vh.value(&just_above, &target)).abs() < 1e-4);
    }

    #[test]
    fn vector_huber_switches_on_row_norm() {
        // Each element is below delta but the row L1 norm is above it →
        // linear regime must engage (unlike element-wise Huber).
        let target = Matrix::zeros(1, 4);
        let pred = Matrix::from_vec(1, 4, vec![0.4, 0.4, 0.4, 0.4]).unwrap();
        let delta = 1.0f32;
        let vh = Loss::VectorHuber { delta }.value(&pred, &target);
        // linear branch: delta*1.6 - 0.5 = 1.1, /4 features = 0.275
        assert!((vh - 0.275).abs() < 1e-5, "got {vh}");
        let h = Loss::Huber { delta }.value(&pred, &target);
        // element-wise: each 0.5*0.16 = 0.08, mean = 0.08
        assert!((h - 0.08).abs() < 1e-5, "got {h}");
    }

    #[test]
    fn softmax_rows_is_a_distribution() {
        let logits = Matrix::from_vec(2, 3, vec![5.0, 1.0, -2.0, 100.0, 100.0, 100.0]).unwrap();
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Stability: equal large logits → uniform.
        assert!((p[(1, 0)] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn ce_lower_for_correct_prediction() {
        let mut target = Matrix::zeros(1, 3);
        target[(0, 0)] = 1.0;
        let good = Matrix::from_vec(1, 3, vec![5.0, 0.0, 0.0]).unwrap();
        let bad = Matrix::from_vec(1, 3, vec![0.0, 5.0, 0.0]).unwrap();
        let ce = Loss::SoftmaxCrossEntropy;
        assert!(ce.value(&good, &target) < ce.value(&bad, &target));
    }
}
