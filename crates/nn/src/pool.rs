use orco_tensor::Matrix;

use crate::layer::{Layer, Param};

/// A 2-D max-pooling layer over non-overlapping windows.
///
/// Used between the classifier's convolution stages. Inputs are batches of
/// flattened `(C, H, W)` samples; the layer remembers which element won each
/// window so the backward pass can route gradients.
///
/// # Examples
///
/// ```
/// use orco_nn::{Layer, MaxPool2d};
/// use orco_tensor::Matrix;
///
/// let mut pool = MaxPool2d::new(1, 4, 4, 2);
/// let x = Matrix::from_fn(1, 16, |_, c| c as f32);
/// let y = pool.forward(&x, true);
/// assert_eq!(y.shape(), (1, 4));
/// assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    window: usize,
    argmax: Vec<Vec<usize>>, // per sample: winning flat input index per output element
}

impl MaxPool2d {
    /// Creates a max-pool layer over `(c, h, w)` inputs with square windows.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or does not divide `h` and `w` evenly.
    #[must_use]
    pub fn new(c: usize, h: usize, w: usize, window: usize) -> Self {
        assert!(window > 0, "MaxPool2d: window must be non-zero");
        assert!(
            h.is_multiple_of(window) && w.is_multiple_of(window),
            "MaxPool2d: window {window} must divide input {h}x{w}"
        );
        Self { c, h, w, window, argmax: Vec::new() }
    }

    /// Output spatial shape `(c, h/window, w/window)`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize, usize) {
        (self.c, self.h / self.window, self.w / self.window)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.c * self.h * self.w,
            "MaxPool2d::forward: input features {} != expected {}",
            input.cols(),
            self.c * self.h * self.w
        );
        let (oc, oh, ow) = self.output_shape();
        let mut out = Matrix::zeros(input.rows(), oc * oh * ow);
        self.argmax.clear();
        for (i, sample) in input.iter_rows().enumerate() {
            let mut winners = vec![0usize; oc * oh * ow];
            let row = out.row_mut(i);
            for c in 0..self.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for wy in 0..self.window {
                            for wx in 0..self.window {
                                let iy = oy * self.window + wy;
                                let ix = ox * self.window + wx;
                                let idx = (c * self.h + iy) * self.w + ix;
                                if sample[idx] > best {
                                    best = sample[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = (c * oh + oy) * ow + ox;
                        row[oidx] = best;
                        winners[oidx] = best_idx;
                    }
                }
            }
            self.argmax.push(winners);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        assert_eq!(
            self.argmax.len(),
            grad_output.rows(),
            "MaxPool2d::backward called before forward or with wrong batch"
        );
        let mut grad_input = Matrix::zeros(grad_output.rows(), self.c * self.h * self.w);
        for (i, winners) in self.argmax.iter().enumerate() {
            let go = grad_output.row(i);
            assert_eq!(go.len(), winners.len(), "MaxPool2d::backward: grad width mismatch");
            let gi = grad_input.row_mut(i);
            for (o, &widx) in winners.iter().enumerate() {
                gi[widx] += go[o];
            }
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn input_dim(&self) -> usize {
        self.c * self.h * self.w
    }

    fn output_dim(&self) -> usize {
        let (oc, oh, ow) = self.output_shape();
        oc * oh * ow
    }

    fn flops_forward(&self) -> u64 {
        (self.c * self.h * self.w) as u64 // one comparison per input element
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_known_values() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2);
        let x = Matrix::from_vec(1, 8, vec![1.0, 2.0, 3.0, 4.0, -1.0, -2.0, -3.0, -4.0]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0, -1.0]);
    }

    #[test]
    fn backward_routes_to_winner() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2);
        let x = Matrix::from_vec(1, 4, vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let _ = pool.forward(&x, true);
        let gi = pool.backward(&Matrix::from_vec(1, 1, vec![5.0]).unwrap());
        assert_eq!(gi.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_window() {
        let _ = MaxPool2d::new(1, 5, 4, 2);
    }

    #[test]
    fn no_params() {
        let mut pool = MaxPool2d::new(1, 4, 4, 2);
        assert!(pool.params().is_empty());
        assert_eq!(pool.param_count(), 0);
    }
}
