use orco_tensor::Matrix;

/// Element-wise activation function.
///
/// The paper's encoder/decoder mappings (eqs. 1 and 3) are written as
/// `σ(W·x + b)`; the evaluation uses sigmoid for the autoencoder (outputs
/// are pixel intensities in `[0, 1]`) and ReLU inside the conv stacks of
/// DCSNet and the classifier.
///
/// # Examples
///
/// ```
/// use orco_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-3.0), 0.0);
/// assert_eq!(Activation::Identity.apply(-3.0), -3.0);
/// assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with the given negative-side slope.
    LeakyRelu(f32),
}

impl Activation {
    /// Applies the activation to a scalar.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
        }
    }

    /// Derivative expressed in terms of the **pre-activation** input `x`.
    #[must_use]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    1.0
                } else {
                    slope
                }
            }
        }
    }

    /// Applies the activation element-wise to a matrix.
    #[must_use]
    pub fn apply_matrix(self, m: &Matrix) -> Matrix {
        m.map(|v| self.apply(v))
    }

    /// Applies the activation element-wise in place — the allocation-free
    /// twin of [`Activation::apply_matrix`] (same per-element function,
    /// bit-identical results), used by the batched inference paths.
    pub fn apply_inplace(self, m: &mut Matrix) {
        m.map_inplace(|v| self.apply(v));
    }

    /// Element-wise derivative matrix from the pre-activation matrix.
    #[must_use]
    pub fn derivative_matrix(self, pre: &Matrix) -> Matrix {
        pre.map(|v| self.derivative(v))
    }

    /// Approximate FLOPs to evaluate this activation once (used by the
    /// simulated-compute model; exact constants do not matter, relative
    /// magnitudes do).
    #[must_use]
    pub fn flops(self) -> u64 {
        match self {
            Activation::Identity => 0,
            Activation::Relu | Activation::LeakyRelu(_) => 1,
            Activation::Sigmoid => 4,
            Activation::Tanh => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        let s = Activation::Sigmoid;
        for x in [-10.0, -1.0, 0.0, 1.0, 10.0] {
            let v = s.apply(x);
            assert!((0.0..=1.0).contains(&v));
            assert!((s.apply(-x) - (1.0 - v)).abs() < 1e-6);
        }
    }

    #[test]
    fn relu_and_leaky() {
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::LeakyRelu(0.1).apply(-3.0), -0.3);
        assert_eq!(Activation::LeakyRelu(0.1).derivative(-3.0), 0.1);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3_f32;
        for act in [
            Activation::Identity,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::LeakyRelu(0.2),
        ] {
            for x in [-2.0f32, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn matrix_application() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        let r = Activation::Relu.apply_matrix(&m);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
        let d = Activation::Relu.derivative_matrix(&m);
        assert_eq!(d.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_derivative_at_zero_is_one() {
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-6);
    }
}
