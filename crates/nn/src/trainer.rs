//! Epoch-driven training utilities: mini-batching, shuffling, loss history
//! and early stopping.
//!
//! The OrcoDCS orchestrator implements its own distributed round loop (the
//! encoder and decoder live on different simulated machines); this module
//! serves the *centralized* models — DCSNet offline training and the
//! follow-up classifier — and any quick local experiment.

use orco_tensor::{Matrix, OrcoRng};

use crate::loss::Loss;
use crate::model::Sequential;
use crate::optimizer::Optimizer;

/// Configuration for [`fit`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Whether to reshuffle sample order each epoch.
    pub shuffle: bool,
    /// Stop early when the epoch loss falls below this value.
    pub target_loss: Option<f32>,
    /// Multiply the learning rate by this factor after every epoch.
    pub lr_decay: Option<f32>,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, shuffle: true, target_loss: None, lr_decay: None }
    }
}

/// Record of one completed epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f32,
    /// Number of batches processed.
    pub batches: usize,
}

/// History returned by [`fit`].
#[derive(Debug, Clone, Default)]
pub struct FitHistory {
    /// One entry per completed epoch.
    pub epochs: Vec<EpochStats>,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

impl FitHistory {
    /// Final epoch's training loss, if any epoch ran.
    #[must_use]
    pub fn final_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.train_loss)
    }
}

/// Trains `model` on `(x, y)` with mini-batch gradient descent.
///
/// # Panics
///
/// Panics if `x` and `y` have different row counts, the dataset is empty,
/// or `batch_size` is zero.
pub fn fit(
    model: &mut Sequential,
    x: &Matrix,
    y: &Matrix,
    loss: &Loss,
    optimizer: &mut Optimizer,
    config: &FitConfig,
    rng: &mut OrcoRng,
) -> FitHistory {
    assert_eq!(x.rows(), y.rows(), "fit: x and y row counts differ");
    assert!(x.rows() > 0, "fit: empty dataset");
    assert!(config.batch_size > 0, "fit: batch_size must be non-zero");

    let n = x.rows();
    let bs = config.batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = FitHistory::default();

    for epoch in 0..config.epochs {
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(bs) {
            let xb = x.select_rows(chunk);
            let yb = y.select_rows(chunk);
            total += f64::from(model.train_batch(&xb, &yb, loss, optimizer));
            batches += 1;
        }
        let train_loss = (total / batches as f64) as f32;
        history.epochs.push(EpochStats { epoch, train_loss, batches });
        if let Some(decay) = config.lr_decay {
            optimizer.set_learning_rate(optimizer.learning_rate() * decay);
        }
        if let Some(target) = config.target_loss {
            if train_loss <= target {
                history.early_stopped = true;
                break;
            }
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense};

    fn toy_regression(rng: &mut OrcoRng) -> (Matrix, Matrix) {
        // y = 0.5*x0 - 0.25*x1 + 0.1, squashed by sigmoid-friendly range.
        let x = Matrix::from_fn(64, 2, |_, _| rng.uniform(-1.0, 1.0));
        let y = Matrix::from_fn(64, 1, |r, _| 0.5 * x[(r, 0)] - 0.25 * x[(r, 1)] + 0.1);
        (x, y)
    }

    #[test]
    fn fit_reduces_loss_and_records_history() {
        let mut rng = OrcoRng::from_label("fit", 0);
        let (x, y) = toy_regression(&mut rng);
        let mut model = Sequential::new().with(Dense::new(2, 1, Activation::Identity, &mut rng));
        let mut opt = Optimizer::sgd(0.5);
        let history = fit(
            &mut model,
            &x,
            &y,
            &Loss::L2,
            &mut opt,
            &FitConfig { epochs: 20, batch_size: 16, ..Default::default() },
            &mut rng,
        );
        assert_eq!(history.epochs.len(), 20);
        assert!(history.final_loss().unwrap() < history.epochs[0].train_loss * 0.2);
    }

    #[test]
    fn early_stopping_triggers() {
        let mut rng = OrcoRng::from_label("fit-early", 0);
        let (x, y) = toy_regression(&mut rng);
        let mut model = Sequential::new().with(Dense::new(2, 1, Activation::Identity, &mut rng));
        let mut opt = Optimizer::sgd(0.5);
        let history = fit(
            &mut model,
            &x,
            &y,
            &Loss::L2,
            &mut opt,
            &FitConfig {
                epochs: 500,
                batch_size: 64,
                target_loss: Some(1e-3),
                ..Default::default()
            },
            &mut rng,
        );
        assert!(history.early_stopped);
        assert!(history.epochs.len() < 500);
    }

    #[test]
    fn lr_decay_applies() {
        let mut rng = OrcoRng::from_label("fit-decay", 0);
        let (x, y) = toy_regression(&mut rng);
        let mut model = Sequential::new().with(Dense::new(2, 1, Activation::Identity, &mut rng));
        let mut opt = Optimizer::sgd(1.0);
        let _ = fit(
            &mut model,
            &x,
            &y,
            &Loss::L2,
            &mut opt,
            &FitConfig { epochs: 3, batch_size: 64, lr_decay: Some(0.5), ..Default::default() },
            &mut rng,
        );
        assert!((opt.learning_rate() - 0.125).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "row counts differ")]
    fn fit_rejects_mismatched_rows() {
        let mut rng = OrcoRng::from_label("fit-bad", 0);
        let mut model = Sequential::new().with(Dense::new(2, 1, Activation::Identity, &mut rng));
        let mut opt = Optimizer::sgd(0.1);
        let _ = fit(
            &mut model,
            &Matrix::zeros(4, 2),
            &Matrix::zeros(3, 1),
            &Loss::L2,
            &mut opt,
            &FitConfig::default(),
            &mut rng,
        );
    }
}
