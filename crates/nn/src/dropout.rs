use orco_tensor::{Matrix, OrcoRng};

use crate::layer::{Layer, Param};

/// Inverted dropout: during training each feature is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference is
/// the identity with no rescaling.
///
/// Not used by the paper's models, but provided for the follow-up
/// classifier experiments — small CNNs on reconstructed data overfit
/// quickly, and dropout is the standard counter-measure a downstream user
/// would reach for.
///
/// # Examples
///
/// ```
/// use orco_nn::{Dropout, Layer};
/// use orco_tensor::{Matrix, OrcoRng};
///
/// let rng = OrcoRng::from_label("dropout-doc", 0);
/// let mut layer = Dropout::new(64, 0.5, rng);
/// let x = Matrix::ones(4, 64);
/// let train = layer.forward(&x, true);
/// assert!(train.as_slice().iter().any(|&v| v == 0.0)); // some dropped
/// let infer = layer.forward(&x, false);
/// assert_eq!(infer, x); // identity at inference
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    dim: usize,
    p: f32,
    rng: OrcoRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer over `dim`-feature batches.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn new(dim: usize, p: f32, rng: OrcoRng) -> Self {
        assert!((0.0..1.0).contains(&p), "Dropout: p must be in [0, 1)");
        Self { dim, p, rng, mask: None }
    }

    /// The drop probability.
    #[must_use]
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        assert_eq!(input.cols(), self.dim, "Dropout::forward: width mismatch");
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.bernoulli(keep) {
                scale
            } else {
                0.0
            }
        });
        let out = input.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => {
                assert_eq!(grad_output.shape(), mask.shape(), "Dropout::backward: shape mismatch");
                grad_output.hadamard(mask)
            }
            None => grad_output.clone(),
        }
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    fn zero_grad(&mut self) {}

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn flops_forward(&self) -> u64 {
        self.dim as u64 * 2
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rate_is_respected() {
        let rng = OrcoRng::from_label("dropout-rate", 0);
        let mut layer = Dropout::new(1000, 0.3, rng);
        let x = Matrix::ones(20, 1000);
        let out = layer.forward(&x, true);
        let dropped = out.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = dropped as f32 / out.len() as f32;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn expectation_is_preserved() {
        let rng = OrcoRng::from_label("dropout-exp", 0);
        let mut layer = Dropout::new(2000, 0.5, rng);
        let x = Matrix::ones(10, 2000);
        let out = layer.forward(&x, true);
        assert!((out.mean() - 1.0).abs() < 0.05, "mean {}", out.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let rng = OrcoRng::from_label("dropout-mask", 0);
        let mut layer = Dropout::new(50, 0.5, rng);
        let x = Matrix::ones(2, 50);
        let out = layer.forward(&x, true);
        let grad = layer.backward(&Matrix::ones(2, 50));
        // Exactly the surviving positions carry gradient.
        for (o, g) in out.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn inference_identity_and_zero_p() {
        let rng = OrcoRng::from_label("dropout-id", 0);
        let mut layer = Dropout::new(8, 0.0, rng);
        let x = Matrix::from_fn(2, 8, |r, c| (r + c) as f32);
        assert_eq!(layer.forward(&x, true), x);
        assert_eq!(layer.forward(&x, false), x);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_p_of_one() {
        let rng = OrcoRng::from_label("dropout-bad", 0);
        let _ = Dropout::new(4, 1.0, rng);
    }
}
