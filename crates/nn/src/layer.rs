//! The [`Layer`] abstraction shared by every trainable component.

use orco_tensor::Matrix;

/// A mutable view over one parameter tensor and its accumulated gradient.
///
/// [`crate::Optimizer`]s receive the parameters of a model as a flat
/// `Vec<Param>` in a stable order (layer by layer), so per-parameter
/// optimizer state can be indexed positionally.
#[derive(Debug)]
pub struct Param<'a> {
    /// The parameter values, updated in place by the optimizer.
    pub value: &'a mut Matrix,
    /// The gradient accumulated by the latest backward pass.
    pub grad: &'a mut Matrix,
}

/// A differentiable, trainable network layer.
///
/// ### Contract
///
/// * [`forward`](Layer::forward) consumes a batch (one flattened sample per
///   row) and caches whatever the backward pass needs. `train` distinguishes
///   training from inference (e.g. [`crate::GaussianNoise`] is inactive at
///   inference).
/// * [`backward`](Layer::backward) receives `∂L/∂output`, **accumulates**
///   `∂L/∂params` into the layer's gradient buffers, and returns
///   `∂L/∂input`. It must be called after a `forward` with matching batch
///   size.
/// * [`zero_grad`](Layer::zero_grad) clears accumulated gradients; called by
///   the model before each training step.
/// * [`flops_forward`](Layer::flops_forward) /
///   [`flops_backward`](Layer::flops_backward) report *per-sample* floating
///   point operation estimates. The WSN simulator multiplies these by batch
///   sizes and divides by device FLOPS rates to obtain the simulated
///   training times plotted in the paper's Figures 4 and 6–8.
pub trait Layer: std::fmt::Debug + Send {
    /// Runs the layer on a batch, caching state for backward.
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix;

    /// Backpropagates `grad_output`, accumulating parameter gradients, and
    /// returns the gradient with respect to the layer's input.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Mutable views of all parameters with their gradients (may be empty).
    fn params(&mut self) -> Vec<Param<'_>>;

    /// Clears the accumulated gradients.
    fn zero_grad(&mut self);

    /// Number of input features per sample.
    fn input_dim(&self) -> usize;

    /// Number of output features per sample.
    fn output_dim(&self) -> usize;

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Estimated floating-point operations per sample for `forward`.
    fn flops_forward(&self) -> u64;

    /// Estimated floating-point operations per sample for `backward`.
    fn flops_backward(&self) -> u64 {
        2 * self.flops_forward()
    }

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Clones the layer into a fresh boxed trait object, including its
    /// parameters and any RNG/cache state — the hook that makes
    /// [`crate::Sequential`] cloneable even though its layers are
    /// type-erased (used to stage a model copy for hot-swap or rollback).
    fn clone_box(&self) -> Box<dyn Layer>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense};
    use orco_tensor::OrcoRng;

    #[test]
    fn layer_is_object_safe() {
        let mut rng = OrcoRng::from_label("layer-obj", 0);
        let boxed: Box<dyn Layer> = Box::new(Dense::new(3, 2, Activation::Identity, &mut rng));
        assert_eq!(boxed.input_dim(), 3);
        assert_eq!(boxed.output_dim(), 2);
    }

    #[test]
    fn default_backward_flops_double_forward() {
        let mut rng = OrcoRng::from_label("layer-flops", 0);
        let d = Dense::new(4, 4, Activation::Identity, &mut rng);
        assert!(d.flops_backward() >= d.flops_forward());
    }
}
