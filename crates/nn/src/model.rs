use orco_tensor::Matrix;

use crate::layer::{Layer, Param};
use crate::loss::Loss;
use crate::optimizer::Optimizer;

/// An ordered stack of [`Layer`]s trained end-to-end.
///
/// `Sequential` is the model container used by every network in the
/// reproduction: the OrcoDCS encoder and decoder are each a `Sequential`
/// living on a different simulated machine, DCSNet is one `Sequential`, and
/// the follow-up classifier is another.
///
/// # Examples
///
/// ```
/// use orco_nn::{Activation, Dense, Sequential};
/// use orco_tensor::{Matrix, OrcoRng};
///
/// let mut rng = OrcoRng::from_label("seq-doc", 0);
/// let mut ae = Sequential::new()
///     .with(Dense::new(784, 128, Activation::Sigmoid, &mut rng))
///     .with(Dense::new(128, 784, Activation::Sigmoid, &mut rng));
/// assert_eq!(ae.input_dim(), Some(784));
/// assert_eq!(ae.output_dim(), Some(784));
/// let out = ae.forward(&Matrix::zeros(2, 784), false);
/// assert_eq!(out.shape(), (2, 784));
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self { layers: self.layers.iter().map(|l| l.clone_box()).collect() }
    }
}

impl Sequential {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the layer's input width does not match the previous
    /// layer's output width.
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.push(layer);
        self
    }

    /// Appends a layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer's input width does not match the previous
    /// layer's output width.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        if let Some(last) = self.layers.last() {
            assert_eq!(
                last.output_dim(),
                layer.input_dim(),
                "Sequential: layer `{}` expects {} inputs but previous layer `{}` outputs {}",
                layer.name(),
                layer.input_dim(),
                last.name(),
                last.output_dim()
            );
        }
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Input width of the first layer, if any.
    #[must_use]
    pub fn input_dim(&self) -> Option<usize> {
        self.layers.first().map(|l| l.input_dim())
    }

    /// Output width of the last layer, if any.
    #[must_use]
    pub fn output_dim(&self) -> Option<usize> {
        self.layers.last().map(|l| l.output_dim())
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Per-sample forward FLOPs, summed over layers.
    #[must_use]
    pub fn flops_forward(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_forward()).sum()
    }

    /// Per-sample backward FLOPs, summed over layers.
    #[must_use]
    pub fn flops_backward(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_backward()).sum()
    }

    /// Immutable access to the layer stack.
    #[must_use]
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to one layer (for surgical updates, e.g. swapping
    /// noise variance mid-experiment).
    #[must_use]
    pub fn layer_mut(&mut self, index: usize) -> Option<&mut (dyn Layer + 'static)> {
        self.layers.get_mut(index).map(|b| &mut **b as _)
    }

    /// Runs the batch through every layer.
    ///
    /// `train` enables training-only behaviour (noise injection).
    ///
    /// # Panics
    ///
    /// Panics if the model is empty.
    pub fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        assert!(!self.layers.is_empty(), "Sequential::forward on empty model");
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Backpropagates a gradient through every layer (reverse order),
    /// accumulating parameter gradients, and returns `∂L/∂input`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Collects parameter views from every layer in a stable order.
    pub fn params(&mut self) -> Vec<Param<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// One optimization step on a batch; returns the batch loss before the
    /// update.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        loss: &Loss,
        optimizer: &mut Optimizer,
    ) -> f32 {
        self.zero_grad();
        let pred = self.forward(input, true);
        let value = loss.value(&pred, target);
        let grad = loss.grad(&pred, target);
        let _ = self.backward(&grad);
        optimizer.step(self.params());
        value
    }

    /// Mean loss on a batch without updating parameters (inference mode).
    pub fn evaluate(&mut self, input: &Matrix, target: &Matrix, loss: &Loss) -> f32 {
        let pred = self.forward(input, false);
        loss.value(&pred, target)
    }

    /// Inference-mode forward pass (alias conveying intent).
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        self.forward(input, false)
    }

    /// A human-readable architecture summary, one line per layer.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "{i:2}: {:<14} {:>8} -> {:<8} params={:<10} flops/sample={}\n",
                layer.name(),
                layer.input_dim(),
                layer.output_dim(),
                layer.param_count(),
                layer.flops_forward(),
            ));
        }
        s.push_str(&format!(
            "total params={} forward flops/sample={}",
            self.param_count(),
            self.flops_forward()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense};
    use orco_tensor::OrcoRng;

    fn xor_data() -> (Matrix, Matrix) {
        (
            Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap(),
            Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]).unwrap(),
        )
    }

    #[test]
    fn learns_xor() {
        let mut rng = OrcoRng::from_label("xor", 3);
        let mut model = Sequential::new()
            .with(Dense::new(2, 8, Activation::Tanh, &mut rng))
            .with(Dense::new(8, 1, Activation::Sigmoid, &mut rng));
        let (x, y) = xor_data();
        let mut opt = Optimizer::adam(0.05);
        for _ in 0..500 {
            model.train_batch(&x, &y, &Loss::L2, &mut opt);
        }
        let pred = model.predict(&x);
        for (p, t) in pred.as_slice().iter().zip(y.as_slice()) {
            assert!((p - t).abs() < 0.2, "xor not learned: pred {p} target {t}");
        }
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn rejects_incompatible_layers() {
        let mut rng = OrcoRng::from_label("bad-stack", 0);
        let _ = Sequential::new()
            .with(Dense::new(4, 8, Activation::Relu, &mut rng))
            .with(Dense::new(9, 2, Activation::Relu, &mut rng));
    }

    #[test]
    fn train_reduces_loss() {
        let mut rng = OrcoRng::from_label("reduce", 0);
        let mut model = Sequential::new()
            .with(Dense::new(8, 4, Activation::Sigmoid, &mut rng))
            .with(Dense::new(4, 8, Activation::Sigmoid, &mut rng));
        let x = Matrix::from_fn(16, 8, |r, c| if (r + c) % 3 == 0 { 0.9 } else { 0.1 });
        let mut opt = Optimizer::adam(0.01);
        let before = model.evaluate(&x, &x, &Loss::L2);
        for _ in 0..100 {
            model.train_batch(&x, &x, &Loss::L2, &mut opt);
        }
        let after = model.evaluate(&x, &x, &Loss::L2);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn summary_mentions_every_layer() {
        let mut rng = OrcoRng::from_label("summary", 0);
        let model = Sequential::new()
            .with(Dense::new(4, 3, Activation::Relu, &mut rng))
            .with(Dense::new(3, 2, Activation::Identity, &mut rng));
        let s = model.summary();
        assert_eq!(s.matches("dense").count(), 2);
        assert!(s.contains("total params=23"));
    }

    #[test]
    fn flops_sum_over_layers() {
        let mut rng = OrcoRng::from_label("flops", 0);
        let a = Dense::new(10, 5, Activation::Identity, &mut rng);
        let fa = a.flops_forward();
        let b = Dense::new(5, 2, Activation::Identity, &mut rng);
        let fb = b.flops_forward();
        let model = Sequential::new().with(a).with(b);
        assert_eq!(model.flops_forward(), fa + fb);
    }

    #[test]
    #[should_panic(expected = "empty model")]
    fn forward_on_empty_model_panics() {
        let mut m = Sequential::new();
        let _ = m.forward(&Matrix::zeros(1, 1), false);
    }
}
