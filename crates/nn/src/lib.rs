//! # orco-nn
//!
//! A small, self-contained neural-network library with manual
//! backpropagation, written for the OrcoDCS reproduction.
//!
//! The paper's systems need exactly four model families, all of which this
//! crate supports from scratch on top of [`orco_tensor`]:
//!
//! * the **OrcoDCS asymmetric autoencoder** — a one-dense-layer encoder and
//!   a configurable stack of dense decoder layers with sigmoid activations;
//! * the **DCSNet baseline** — a dense measurement layer plus a
//!   4-convolutional-layer decoder;
//! * the **follow-up classifier** — a 2-conv-layer CNN with a dense head
//!   and softmax cross-entropy;
//! * **ablations** — arbitrary [`Sequential`] stacks of the above layers.
//!
//! Design choices:
//!
//! * Data flows as [`orco_tensor::Matrix`] batches, one flattened sample per
//!   row; conv layers carry their own `(C, H, W)` geometry.
//! * Every layer caches what its backward pass needs; gradients accumulate
//!   inside the layer and are exposed to [`Optimizer`]s through
//!   [`layer::Param`] views.
//! * Every layer reports per-sample forward/backward FLOP counts, which the
//!   WSN simulator converts into simulated training time (the paper's
//!   time-to-loss axis).
//! * All randomness is injected via [`orco_tensor::OrcoRng`].
//!
//! ## Quick start
//!
//! ```
//! use orco_nn::{Activation, Dense, Loss, Optimizer, Sequential};
//! use orco_tensor::{Matrix, OrcoRng};
//!
//! let mut rng = OrcoRng::from_label("doc-xor", 0);
//! let mut model = Sequential::new()
//!     .with(Dense::new(2, 8, Activation::Tanh, &mut rng))
//!     .with(Dense::new(8, 1, Activation::Sigmoid, &mut rng));
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.])?;
//! let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.])?;
//! let mut opt = Optimizer::sgd(0.5);
//! let before = model.evaluate(&x, &y, &Loss::L2);
//! for _ in 0..200 {
//!     model.train_batch(&x, &y, &Loss::L2, &mut opt);
//! }
//! assert!(model.evaluate(&x, &y, &Loss::L2) < before);
//! # Ok::<(), orco_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv;
mod dense;
mod dropout;
mod loss;
mod model;
mod noise;
mod optimizer;
mod pool;

pub mod gradcheck;
pub mod layer;
pub mod metrics;
pub mod trainer;

pub use activation::Activation;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use layer::{Layer, Param};
pub use loss::Loss;
pub use model::Sequential;
pub use noise::GaussianNoise;
pub use optimizer::Optimizer;
pub use pool::MaxPool2d;
